"""Run-time injection controller.

Binds *fault descriptions* to a *live design*: given a simulator, a
hierarchy root and a fault instance, the controller picks the right
mechanism — mutant deposit for bit-flips, signal force for SETs and
stuck-ats, saboteur current for analog transients, attribute rewrite
for parametric faults — and schedules it.  This is the run-time half of
the paper's "fault injection set-up" box (Figures 2 and 3).
"""

from __future__ import annotations

from ..core.errors import InjectionError
from ..core.logic import flip as flip_level
from ..core.logic import logic
from ..core.units import format_quantity, parse_quantity
from ..faults.bitflip import BitFlip, MultipleBitUpset
from ..faults.models import AnalogTransient, FaultModel
from ..faults.parametric import ParametricFault
from ..faults.set_pulse import SETPulse
from ..faults.stuckat import StuckAt
from .mutant import MutantInjector
from .saboteur import CurrentPulseSaboteur


class CurrentInjection(FaultModel):
    """A complete analog fault instance: *what*, *where* and *when*.

    The transient shapes (:class:`TrapezoidPulse`,
    :class:`DoubleExponentialPulse`) describe only the waveform; this
    wrapper adds the target node and the injection time — the extra
    information the designer supplies during campaign definition
    ("(1) the range of the parameters for the pulse specification and
    (2) the injection times", Section 4.1).

    :param transient: an :class:`AnalogTransient` waveform.
    :param node: target current-node name.
    :param time: injection time in seconds.
    """

    family = "analog-injection"

    def __init__(self, transient, node, time):
        if not isinstance(transient, AnalogTransient):
            raise InjectionError(
                f"{transient!r} is not an analog transient fault model"
            )
        if not isinstance(node, str) or not node:
            raise InjectionError(f"invalid node name {node!r}")
        self.transient = transient
        self.node = node
        self.time = parse_quantity(time, expect_unit="s")
        if self.time < 0:
            raise InjectionError("injection time must be >= 0")

    def describe(self):
        return (
            f"{self.transient.describe()} @ "
            f"{format_quantity(self.time, 's')} on {self.node}"
        )

    def __repr__(self):
        return (
            f"CurrentInjection({self.transient!r}, {self.node!r}, "
            f"{self.time!r})"
        )


class InjectionController:
    """Applies any supported fault model to a live design.

    :param sim: the simulator.
    :param root: hierarchy root (for mutant state lookup and
        parametric component lookup).
    :param saboteurs: optional mapping of node name ->
        :class:`CurrentPulseSaboteur`; missing saboteurs are created
        on demand when an analog injection names a current node.
    """

    def __init__(self, sim, root, saboteurs=None):
        self.sim = sim
        self.root = root
        self.mutants = MutantInjector(sim, root)
        self.saboteurs = dict(saboteurs or {})
        self.applied = []

    # -- saboteur management ---------------------------------------------------

    def saboteur_for(self, node_name):
        """The saboteur on ``node_name``, creating one if needed.

        :raises InjectionError: when the node does not exist or is not
            a current node.
        """
        if node_name in self.saboteurs:
            return self.saboteurs[node_name]
        node = self.sim.nodes.get(node_name)
        if node is None:
            known = ", ".join(sorted(self.sim.nodes)[:8])
            raise InjectionError(
                f"unknown node {node_name!r}; known nodes start with: "
                f"{known} ..."
            )
        saboteur = CurrentPulseSaboteur(
            self.sim, f"saboteur@{node_name.replace('/', '.')}", node
        )
        self.saboteurs[node_name] = saboteur
        return saboteur

    # -- application -------------------------------------------------------------

    def apply(self, fault):
        """Arm one fault instance; returns the fault.

        :raises InjectionError: for unsupported fault types.
        """
        if isinstance(fault, (BitFlip, MultipleBitUpset)):
            self.mutants.apply(fault)
        elif isinstance(fault, SETPulse):
            self._apply_set(fault)
        elif isinstance(fault, StuckAt):
            self._apply_stuck(fault)
        elif isinstance(fault, CurrentInjection):
            self.saboteur_for(fault.node).schedule(fault.transient, fault.time)
        elif isinstance(fault, ParametricFault):
            self._apply_parametric(fault)
        else:
            raise InjectionError(
                f"no injection mechanism for {type(fault).__name__}"
            )
        self.applied.append(fault)
        return fault

    def apply_all(self, faults):
        """Arm several fault instances."""
        for fault in faults:
            self.apply(fault)
        return list(faults)

    # -- mechanisms ------------------------------------------------------------

    def _signal(self, name):
        sig = self.sim.signals.get(name)
        if sig is None:
            # Qualified state names also name wires for convenience.
            try:
                return self.mutants.signal_for(name)
            except InjectionError:
                pass
            known = ", ".join(sorted(self.sim.signals)[:8])
            raise InjectionError(
                f"unknown signal {name!r}; known signals start with: "
                f"{known} ..."
            )
        return sig

    def _apply_set(self, fault):
        sig = self._signal(fault.target)

        def start():
            value = (
                flip_level(sig.value)
                if fault.value is None
                else logic(fault.value)
            )
            sig.force(value)

        self.sim.at(fault.time, start)
        self.sim.at(fault.time + fault.width, sig.release)

    def _apply_stuck(self, fault):
        sig = self._signal(fault.target)
        self.sim.at(fault.t_start, lambda: sig.force(fault.value))
        if fault.t_end is not None:
            self.sim.at(fault.t_end, sig.release)

    def _apply_parametric(self, fault):
        component = self.sim.find_component(fault.component)
        if not hasattr(component, fault.attribute):
            raise InjectionError(
                f"component {fault.component} has no attribute "
                f"{fault.attribute!r}"
            )
        nominal = getattr(component, fault.attribute)
        if not isinstance(nominal, (int, float)) or isinstance(nominal, bool):
            raise InjectionError(
                f"attribute {fault.attribute!r} of {fault.component} is "
                "not numeric"
            )

        def activate():
            setattr(component, fault.attribute, fault.faulty_value(nominal))

        def restore():
            setattr(component, fault.attribute, nominal)

        if fault.t_start <= self.sim.now:
            activate()
        else:
            self.sim.at(fault.t_start, activate)
        if fault.t_end is not None:
            self.sim.at(fault.t_end, restore)
