"""Tests for the behavioural VCO."""

import numpy as np
import pytest

from repro.analog import DCVoltage, PWLVoltage, VCO
from repro.core import Simulator
from repro.core.errors import SimulationError
from repro.analysis import clock_periods, mean_frequency


def run_vco(vctrl_volts, duration=2e-6, dt=1e-9, **kwargs):
    sim = Simulator(dt=dt)
    vc = sim.node("vc", init=vctrl_volts)
    out = sim.node("out")
    DCVoltage(sim, "src", vc, vctrl_volts)
    VCO(sim, "vco", vc, out, f0=50e6, kvco=10e6, vcenter=2.5, **kwargs)
    tr = sim.probe(out)
    sim.run(duration)
    return tr


class TestFrequency:
    def test_center_frequency(self):
        tr = run_vco(2.5)
        assert mean_frequency(tr, 2.5) == pytest.approx(50e6, rel=1e-3)

    def test_gain_shifts_frequency(self):
        tr = run_vco(2.6)  # +0.1 V * 10 MHz/V = +1 MHz
        assert mean_frequency(tr, 2.5) == pytest.approx(51e6, rel=1e-3)

    def test_negative_excursion(self):
        tr = run_vco(2.0)
        assert mean_frequency(tr, 2.5) == pytest.approx(45e6, rel=1e-3)

    def test_clamping_at_f_min(self):
        tr = run_vco(-100.0, duration=10e-6, f_min=1e6)
        assert mean_frequency(tr, 2.5) == pytest.approx(1e6, rel=1e-2)

    def test_periods_are_uniform(self):
        tr = run_vco(2.5)
        _edges, periods = clock_periods(tr, 2.5)
        assert np.std(periods) < 0.01 * np.mean(periods)

    def test_interpolated_period_resolution_below_dt(self):
        """Sine output + linear interpolation recovers periods far more
        precisely than the 1 ns solver step."""
        tr = run_vco(2.5, dt=1e-9)
        _edges, periods = clock_periods(tr, 2.5)
        # nominal 20 ns; measured scatter should be well under 1 ns
        assert abs(np.mean(periods) - 20e-9) < 0.2e-9
        assert np.std(periods) < 0.5e-9


class TestWaveform:
    def test_sine_swings_rail_to_rail(self):
        tr = run_vco(2.5, v_high=5.0)
        assert tr.maximum() == pytest.approx(5.0, abs=0.05)
        assert tr.minimum() == pytest.approx(0.0, abs=0.05)

    def test_square_waveform(self):
        tr = run_vco(2.5, waveform="square")
        values = np.unique(np.round(tr.values, 3))
        assert set(values) <= {0.0, 5.0}

    def test_unknown_waveform_rejected(self):
        sim = Simulator()
        vc = sim.node("vc")
        out = sim.node("out")
        with pytest.raises(SimulationError):
            VCO(sim, "vco", vc, out, f0=1e6, kvco=1e5, waveform="triangle")

    def test_negative_f0_rejected(self):
        sim = Simulator()
        vc = sim.node("vc")
        out = sim.node("out")
        with pytest.raises(SimulationError):
            VCO(sim, "vco", vc, out, f0=-1.0, kvco=1e5)


class TestDynamics:
    def test_tracks_control_ramp(self):
        """Frequency follows a slow control-voltage ramp."""
        sim = Simulator(dt=1e-9)
        vc = sim.node("vc", init=2.5)
        out = sim.node("out")
        PWLVoltage(sim, "src", vc, [(0.0, 2.5), (10e-6, 3.0)])
        VCO(sim, "vco", vc, out, f0=50e6, kvco=10e6, vcenter=2.5)
        tr = sim.probe(out)
        sim.run(10e-6)
        f_start = mean_frequency(tr, 2.5, t0=0, t1=1e-6)
        f_end = mean_frequency(tr, 2.5, t0=9e-6, t1=10e-6)
        assert f_end > f_start
        assert f_end == pytest.approx(50e6 + 10e6 * 0.475, rel=5e-3)

    def test_phase_accumulator_wraps_safely(self):
        sim = Simulator(dt=1e-9)
        vc = sim.node("vc", init=2.5)
        out = sim.node("out")
        DCVoltage(sim, "src", vc, 2.5)
        vco = VCO(sim, "vco", vc, out, f0=50e6, kvco=10e6)
        vco.phase = 1e6 + 0.25  # force a wrap
        sim.run(1e-6)
        assert vco.phase < 1e6 + 1.0
