"""Tests for LTI state-space integration, validated against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import signal as sp_signal

from repro.analog import LTISystem, integrator, single_pole
from repro.core.errors import SimulationError


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(SimulationError):
            LTISystem(a=[[1, 2]], b=[[1]], c=[[1]])  # A not square

    def test_c_width_validated(self):
        with pytest.raises(SimulationError):
            LTISystem(a=[[1]], b=[[1]], c=[[1, 2]])

    def test_x0_shape_validated(self):
        with pytest.raises(SimulationError):
            LTISystem(a=[[1]], b=[[1]], c=[[1]], x0=[1.0, 2.0])

    def test_default_d_is_zero(self):
        sys_ = single_pole(gain=2.0, pole_hz=1e3)
        assert np.all(sys_.d == 0.0)


class TestSinglePole:
    def test_step_response_time_constant(self):
        pole_hz = 1e6
        sys_ = single_pole(gain=1.0, pole_hz=pole_hz)
        tau = 1.0 / (2 * np.pi * pole_hz)
        y = sys_.step([1.0], tau)
        assert float(y[0]) == pytest.approx(1.0 - np.exp(-1.0), rel=1e-9)

    def test_dc_gain(self):
        sys_ = single_pole(gain=3.5, pole_hz=1e3)
        assert float(sys_.dc_gain()[0][0]) == pytest.approx(3.5)

    def test_many_small_steps_match_one_large(self):
        """Exact discretisation: subdividing the interval is lossless."""
        sys_a = single_pole(gain=1.0, pole_hz=1e5)
        sys_b = single_pole(gain=1.0, pole_hz=1e5)
        ya = sys_a.step([1.0], 1e-5)
        for _ in range(100):
            yb = sys_b.step([1.0], 1e-7)
        assert float(ya[0]) == pytest.approx(float(yb[0]), rel=1e-10)


class TestIntegrator:
    def test_ramp_accumulates(self):
        sys_ = integrator(gain=2.0)
        for _ in range(10):
            sys_.step([1.0], 0.1)
        assert float(sys_.output([1.0])[0]) == pytest.approx(2.0)

    def test_dc_gain_undefined(self):
        sys_ = integrator()
        with pytest.raises(SimulationError):
            sys_.dc_gain()

    def test_singular_a_discretizes(self):
        """The augmented-matrix expm handles pure integrators."""
        sys_ = integrator(gain=1.0)
        ad, bd = sys_.discretize(0.5)
        assert float(ad[0][0]) == pytest.approx(1.0)
        assert float(bd[0][0]) == pytest.approx(0.5)


class TestAgainstScipy:
    def test_second_order_step_matches_lsim(self):
        # Underdamped 2nd-order system.
        wn, zeta = 2 * np.pi * 1e4, 0.3
        a = [[0.0, 1.0], [-wn * wn, -2 * zeta * wn]]
        b = [[0.0], [wn * wn]]
        c = [[1.0, 0.0]]
        ours = LTISystem(a=a, b=b, c=c)
        dt = 1e-6
        n = 300
        y_ours = []
        for _ in range(n):
            y_ours.append(float(ours.step([1.0], dt)[0]))
        t = np.arange(1, n + 1) * dt
        _t, y_ref, _x = sp_signal.lsim((a, b, c, [[0.0]]), np.ones(n), t - dt,
                                       X0=[0, 0])
        # Compare at the final, settled point and mid-transient.
        assert y_ours[-1] == pytest.approx(float(y_ref[-1]), rel=1e-2)

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(min_value=1e2, max_value=1e6),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_single_pole_matches_analytic(self, pole_hz, gain):
        sys_ = single_pole(gain=gain, pole_hz=pole_hz)
        dt = 0.05 / pole_hz
        total = 0.0
        y = 0.0
        for _ in range(50):
            y = float(sys_.step([1.0], dt)[0])
            total += dt
        w = 2 * np.pi * pole_hz
        expected = gain * (1 - np.exp(-w * total))
        assert y == pytest.approx(expected, rel=1e-6)


class TestStateManagement:
    def test_reset_to_zero(self):
        sys_ = single_pole(1.0, 1e3)
        sys_.step([1.0], 1e-3)
        sys_.reset()
        assert np.all(sys_.x == 0.0)

    def test_reset_to_vector(self):
        sys_ = single_pole(1.0, 1e3)
        sys_.reset([0.7])
        assert float(sys_.output()[0]) == pytest.approx(0.7)

    def test_reset_bad_shape(self):
        sys_ = single_pole(1.0, 1e3)
        with pytest.raises(SimulationError):
            sys_.reset([1.0, 2.0])

    def test_zero_dt_does_not_advance(self):
        sys_ = single_pole(1.0, 1e3)
        y0 = float(sys_.step([1.0], 0.0)[0])
        assert y0 == 0.0
        assert np.all(sys_.x == 0.0)

    def test_cache_eviction(self):
        sys_ = single_pole(1.0, 1e3, x0=None)
        sys_._cache_size = 4
        for k in range(10):
            sys_.discretize(1e-6 * (k + 1))
        assert len(sys_._cache) <= 4

    def test_cache_reuse(self):
        sys_ = single_pole(1.0, 1e3)
        pair1 = sys_.discretize(1e-6)
        pair2 = sys_.discretize(1e-6)
        assert pair1 is pair2
