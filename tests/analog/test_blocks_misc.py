"""Tests for sources, charge pump, PFD, comparators, op-amp, S/H, DAC."""

import numpy as np
import pytest

from repro.analog import (
    AnalogComparator,
    ChargePump,
    DCVoltage,
    Digitizer,
    IdealDAC,
    OpAmp,
    PFD,
    PulseVoltage,
    PWLVoltage,
    ResistorLadder,
    SampleHold,
    SineVoltage,
    UnityBuffer,
    WindowComparator,
)
from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import SimulationError
from repro.digital import Bus, ClockGen


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


class TestSources:
    def test_dc(self, sim):
        n = sim.node("n")
        DCVoltage(sim, "s", n, 3.3)
        sim.run(5e-9)
        assert n.v == 3.3

    def test_sine(self, sim):
        n = sim.node("n")
        SineVoltage(sim, "s", n, amplitude=1.0, freq=1e6, offset=2.0)
        tr = sim.probe(n)
        sim.run(2e-6)
        assert tr.maximum() == pytest.approx(3.0, abs=0.01)
        assert tr.minimum() == pytest.approx(1.0, abs=0.01)
        assert tr.mean() == pytest.approx(2.0, abs=0.02)

    def test_pwl(self, sim):
        n = sim.node("n")
        PWLVoltage(sim, "s", n, [(0, 0.0), (10e-9, 1.0), (20e-9, 1.0)])
        sim.run(5e-9)
        assert n.v == pytest.approx(0.5, abs=0.11)
        sim.run(30e-9)
        assert n.v == 1.0

    def test_pwl_empty_rejected(self, sim):
        n = sim.node("n")
        with pytest.raises(SimulationError):
            PWLVoltage(sim, "s", n, [])

    def test_pulse_train(self, sim):
        n = sim.node("n")
        PulseVoltage(sim, "s", n, v1=0.0, v2=5.0, delay=10e-9, rise=1e-9,
                     fall=1e-9, width=5e-9, period=20e-9)
        tr = sim.probe(n)
        sim.run(60e-9)
        rises = tr.crossings(2.5, "rise")
        assert len(rises) == 3


class TestChargePump:
    def test_up_sources_current(self, sim):
        up = sim.signal("up", init=L1)
        down = sim.signal("down", init=L0)
        node = sim.current_node("icp")
        ChargePump(sim, "cp", up, down, node, i_pump=1e-4)
        sim.run(2e-9)
        assert node.i == pytest.approx(1e-4)

    def test_down_sinks_current(self, sim):
        up = sim.signal("up", init=L0)
        down = sim.signal("down", init=L1)
        node = sim.current_node("icp")
        ChargePump(sim, "cp", up, down, node, i_pump=1e-4)
        sim.run(2e-9)
        assert node.i == pytest.approx(-1e-4)

    def test_both_with_mismatch(self, sim):
        up = sim.signal("up", init=L1)
        down = sim.signal("down", init=L1)
        node = sim.current_node("icp")
        ChargePump(sim, "cp", up, down, node, i_pump=1e-4, mismatch=0.05)
        sim.run(2e-9)
        assert node.i == pytest.approx(5e-6)

    def test_invalid_current_rejected(self, sim):
        up = sim.signal("up", init=L0)
        down = sim.signal("down", init=L0)
        node = sim.current_node("icp")
        with pytest.raises(SimulationError):
            ChargePump(sim, "cp", up, down, node, i_pump=0.0)


class TestPFD:
    def test_ref_lead_asserts_up(self, sim):
        ref = sim.signal("ref", init=L0)
        fb = sim.signal("fb", init=L0)
        up = sim.signal("up")
        down = sim.signal("down")
        PFD(sim, "pfd", ref, fb, up, down)
        ref.drive(L1, 5e-9)
        fb.drive(L1, 8e-9)
        sim.run(6e-9)
        assert up.value is L1 and down.value is L0
        sim.run(9e-9)   # fb edge arrives -> both -> reset
        assert up.value is L0 and down.value is L0

    def test_fb_lead_asserts_down(self, sim):
        ref = sim.signal("ref", init=L0)
        fb = sim.signal("fb", init=L0)
        up = sim.signal("up")
        down = sim.signal("down")
        PFD(sim, "pfd", ref, fb, up, down)
        fb.drive(L1, 5e-9)
        sim.run(6e-9)
        assert down.value is L1 and up.value is L0

    def test_frequency_detector_behaviour(self, sim):
        """With ref much faster than fb, UP duty dominates."""
        ref = sim.signal("ref", init=L0)
        fb = sim.signal("fb", init=L0)
        up = sim.signal("up")
        down = sim.signal("down")
        PFD(sim, "pfd", ref, fb, up, down)
        ClockGen(sim, "ckr", ref, period=10e-9)
        ClockGen(sim, "ckf", fb, period=35e-9)
        tr_up = sim.probe(up)
        sim.run(400e-9)
        up_time = sum(
            b - a for a, b in zip(tr_up.edges("rise"), tr_up.edges("fall"))
        )
        assert up_time > 200e-9

    def test_state_signals(self, sim):
        ref = sim.signal("ref", init=L0)
        fb = sim.signal("fb", init=L0)
        up = sim.signal("up")
        down = sim.signal("down")
        pfd = PFD(sim, "pfd", ref, fb, up, down)
        assert set(pfd.state_signals()) == {"up", "down"}


class TestDigitizer:
    def test_threshold_crossing(self, sim):
        n = sim.node("n")
        SineVoltage(sim, "s", n, amplitude=2.5, freq=10e6, offset=2.5)
        out = sim.signal("out")
        Digitizer(sim, "dig", n, out, threshold=2.5)
        tr = sim.probe(out)
        sim.run(1e-6)
        # 10 MHz -> ~10 rising edges in 1 us
        assert 9 <= len(tr.edges("rise")) <= 11

    def test_hysteresis_suppresses_chatter(self, sim):
        n = sim.node("n")
        # Slow ramp with tiny ripple around the threshold.
        PWLVoltage(sim, "s", n, [(0, 2.4), (100e-9, 2.6)])
        out_plain = sim.signal("plain")
        out_hyst = sim.signal("hyst")
        d1 = Digitizer(sim, "d1", n, out_plain, threshold=2.5)
        d2 = Digitizer(sim, "d2", n, out_hyst, threshold=2.5,
                       hysteresis=0.05)
        sim.run(100e-9)
        assert d2.transitions <= d1.transitions

    def test_negative_hysteresis_rejected(self, sim):
        n = sim.node("n")
        out = sim.signal("out")
        with pytest.raises(SimulationError):
            Digitizer(sim, "d", n, out, hysteresis=-0.1)


class TestComparators:
    def test_analog_comparator(self, sim):
        p = sim.node("p", init=3.0)
        m = sim.node("m", init=2.0)
        out = sim.node("out")
        DCVoltage(sim, "sp", p, 3.0)
        DCVoltage(sim, "sm", m, 2.0)
        AnalogComparator(sim, "cmp", p, m, out)
        sim.run(2e-9)
        assert out.v == 5.0

    def test_comparator_offset(self, sim):
        p = sim.node("p", init=2.0)
        m = sim.node("m", init=2.05)
        out = sim.node("out")
        DCVoltage(sim, "sp", p, 2.0)
        DCVoltage(sim, "sm", m, 2.05)
        AnalogComparator(sim, "cmp", p, m, out, offset=0.1)
        sim.run(2e-9)
        assert out.v == 5.0  # offset flips the decision

    def test_window_comparator(self, sim):
        n = sim.node("n")
        PWLVoltage(sim, "s", n, [(0, 0.0), (100e-9, 5.0)])
        out = sim.signal("inwin")
        WindowComparator(sim, "wc", n, out, lo=2.0, hi=3.0)
        tr = sim.probe(out)
        sim.run(100e-9)
        assert len(tr.edges("rise")) == 1
        assert len(tr.edges("fall")) == 1


class TestOpAmp:
    def test_open_loop_saturates(self, sim):
        p = sim.node("p", init=2.6)
        m = sim.node("m", init=2.5)
        out = sim.node("out")
        DCVoltage(sim, "sp", p, 2.6)
        DCVoltage(sim, "sm", m, 2.5)
        OpAmp(sim, "op", p, m, out, gain=1e5, pole_hz=1e6)
        sim.run(20e-6)
        assert out.v == pytest.approx(5.0)

    def test_slew_limit(self, sim):
        p = sim.node("p", init=5.0)
        m = sim.node("m", init=0.0)
        out = sim.node("out")
        DCVoltage(sim, "sp", p, 5.0)
        DCVoltage(sim, "sm", m, 0.0)
        OpAmp(sim, "op", p, m, out, gain=1e5, pole_hz=1e8, slew=1e6,
              v_low=0.0, v_high=5.0)
        tr = sim.probe(out)
        sim.run(2e-6)
        # 1 V/us slew from 2.5 V start: at 1 us, at most ~3.5 V.
        assert tr.at(1e-6) <= 3.6

    def test_parameter_validation(self, sim):
        p = sim.node("p")
        m = sim.node("m")
        out = sim.node("out")
        with pytest.raises(SimulationError):
            OpAmp(sim, "op", p, m, out, gain=0.0)

    def test_unity_buffer_tracks(self, sim):
        src = sim.node("src")
        out = sim.node("out")
        SineVoltage(sim, "s", src, amplitude=1.0, freq=1e6, offset=2.5)
        UnityBuffer(sim, "buf", src, out, bandwidth_hz=1e9)
        sim.run(3e-6)
        assert out.v == pytest.approx(src.v, abs=0.02)


class TestSampleHold:
    def test_tracks_then_holds(self, sim):
        src = sim.node("src")
        clk = sim.signal("clk", init=L1)
        out = sim.node("out")
        PWLVoltage(sim, "s", src, [(0, 0.0), (100e-9, 5.0)])
        SampleHold(sim, "sh", src, clk, out)
        sim.run(50e-9)
        held = out.v
        clk.drive(L0)
        sim.run(100e-9)
        assert out.v == pytest.approx(held, abs=0.06)

    def test_injected_charge_droops_held_value(self, sim):
        from repro.faults import TrapezoidPulse
        from repro.injection import CurrentPulseSaboteur

        src = sim.node("src")
        clk = sim.signal("clk", init=L0)  # hold from the start
        out = sim.current_node("out")
        DCVoltage(sim, "s", src, 2.0)
        SampleHold(sim, "sh", src, clk, out, c_hold=1e-12)
        sab = CurrentPulseSaboteur(sim, "sab", out)
        pulse = TrapezoidPulse("1mA", "100ps", "100ps", "300ps")
        sab.schedule(pulse, 50e-9)
        sim.run(200e-9)
        dv_expected = pulse.charge() / 1e-12
        assert out.v - 2.0 == pytest.approx(dv_expected, rel=0.1)

    def test_bad_cap_rejected(self, sim):
        src = sim.node("src")
        clk = sim.signal("clk", init=L1)
        out = sim.node("out")
        with pytest.raises(SimulationError):
            SampleHold(sim, "sh", src, clk, out, c_hold=0.0)


class TestDAC:
    def test_code_to_voltage(self, sim):
        bus = Bus(sim, "code", 4, init=8)
        out = sim.node("out")
        IdealDAC(sim, "dac", bus, out, v_ref=5.0)
        sim.run(2e-9)
        assert out.v == pytest.approx(2.5)

    def test_undefined_bus_holds_last(self, sim):
        bus = Bus(sim, "code", 4, init=8)
        out = sim.node("out")
        IdealDAC(sim, "dac", bus, out, v_ref=5.0)
        sim.run(2e-9)
        bus.bits[0].deposit(Logic.X)
        sim.run(4e-9)
        assert out.v == pytest.approx(2.5)

    def test_settling_bandwidth(self, sim):
        bus = Bus(sim, "code", 4, init=0)
        out = sim.node("out")
        IdealDAC(sim, "dac", bus, out, v_ref=5.0, settle_hz=1e6)
        sim.run(2e-9)
        bus.drive_int(15)
        sim.run(50e-9)
        assert out.v < 2.0  # still settling


class TestLadder:
    def test_tap_voltages(self, sim):
        ladder = ResistorLadder(sim, "lad", n_taps=3, v_top=4.0, v_bottom=0.0)
        sim.run(2e-9)
        assert [tap.v for tap in ladder.taps] == pytest.approx([1.0, 2.0, 3.0])

    def test_deviations(self, sim):
        ladder = ResistorLadder(sim, "lad", n_taps=2, v_top=3.0,
                                deviations=[0.1, -0.1])
        sim.run(2e-9)
        assert ladder.taps[0].v == pytest.approx(1.1)
        assert ladder.taps[1].v == pytest.approx(1.9)

    def test_deviation_count_checked(self, sim):
        with pytest.raises(SimulationError):
            ResistorLadder(sim, "lad", n_taps=3, deviations=[0.0])
