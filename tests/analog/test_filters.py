"""Tests for transimpedance loop filters, including charge conservation."""

import numpy as np
import pytest

from repro.analog import (
    DCCurrent,
    TransimpedanceFilter,
    pi_loop_filter,
    rc_transimpedance,
)
from repro.core import Simulator
from repro.core.errors import SimulationError


class TestFactories:
    def test_rc_dc_gain_is_r(self):
        sys_ = rc_transimpedance(1e4, 1e-9)
        assert float(sys_.dc_gain()[0][0]) == pytest.approx(1e4)

    def test_rc_validates(self):
        with pytest.raises(SimulationError):
            rc_transimpedance(-1.0, 1e-9)

    def test_pi_validates(self):
        with pytest.raises(SimulationError):
            pi_loop_filter(1e4, 0.0, 1e-12)

    def test_pi_is_integrator(self):
        """DC current into the PI filter integrates without bound."""
        sys_ = pi_loop_filter(1e4, 1e-9, 1e-10)
        with pytest.raises(SimulationError):
            sys_.dc_gain()


class TestRCFilter:
    def test_dc_current_settles_to_ir(self):
        sim = Simulator(dt=10e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        DCCurrent(sim, "src", node, 1e-4)
        TransimpedanceFilter(sim, "filt", node, out,
                             rc_transimpedance(1e4, 1e-9))
        sim.run(100e-6)  # >> RC = 10 us
        assert out.v == pytest.approx(1e-4 * 1e4, rel=1e-3)

    def test_clamp_limits_output(self):
        sim = Simulator(dt=10e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        DCCurrent(sim, "src", node, 1e-3)  # would settle at 10 V
        TransimpedanceFilter(sim, "filt", node, out,
                             rc_transimpedance(1e4, 1e-9),
                             v_min=0.0, v_max=5.0)
        sim.run(100e-6)
        assert out.v == pytest.approx(5.0)

    def test_clamp_recovers_without_windup(self):
        sim = Simulator(dt=10e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        src = DCCurrent(sim, "src", node, 1e-3)
        TransimpedanceFilter(sim, "filt", node, out,
                             rc_transimpedance(1e4, 1e-9),
                             v_min=0.0, v_max=5.0)
        sim.run(50e-6)
        src.amps = 1e-4  # settles at 1 V
        sim.run(200e-6)  # 15 RC time constants after the change
        assert out.v == pytest.approx(1.0, rel=1e-2)


class TestPIFilter:
    def test_charge_conservation(self):
        """A current bolus of charge Q raises the (unloaded) filter to
        Q / (C1 + C2) at steady state — KCL on the two capacitors."""
        sim = Simulator(dt=1e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        c1, c2 = 1e-9, 1e-10
        src = DCCurrent(sim, "src", node, 1e-4)
        TransimpedanceFilter(sim, "filt", node, out,
                             pi_loop_filter(1e4, c1, c2))
        sim.run(10e-6)
        src.amps = 0.0
        sim.run(100e-6)  # let charge redistribute
        q = 1e-4 * 10e-6
        assert out.v == pytest.approx(q / (c1 + c2), rel=2e-2)

    def test_fast_pulse_hits_c2_first(self):
        """A sub-ns pulse lands (almost) entirely on C2: the immediate
        voltage step is ~ Q/C2, later relaxing to Q/(C1+C2)."""
        from repro.faults import TrapezoidPulse
        from repro.injection import CurrentPulseSaboteur

        sim = Simulator(dt=1e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        c1, c2 = 1.62e-9, 8e-11
        TransimpedanceFilter(sim, "filt", node, out,
                             pi_loop_filter(1.57e4, c1, c2))
        sab = CurrentPulseSaboteur(sim, "sab", node)
        pulse = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        sab.schedule(pulse, 1e-6)
        tr = sim.probe(out)
        sim.run(3e-6)
        q = pulse.charge()
        peak = tr.maximum(1e-6, 1.2e-6)
        assert peak == pytest.approx(q / c2, rel=0.1)

    def test_preset_sets_both_states(self):
        sim = Simulator(dt=1e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        filt = TransimpedanceFilter(sim, "filt", node, out,
                                    pi_loop_filter(1e4, 1e-9, 1e-10))
        filt.preset(2.5)
        sim.run(10e-6)  # no input current: output must hold
        assert out.v == pytest.approx(2.5, abs=1e-9)

    def test_multi_input_system_rejected(self):
        from repro.analog import LTISystem

        sim = Simulator(dt=1e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        two_input = LTISystem(a=[[-1.0]], b=[[1.0, 1.0]], c=[[1.0]])
        with pytest.raises(SimulationError):
            TransimpedanceFilter(sim, "filt", node, out, two_input)
