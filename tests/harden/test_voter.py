"""Tests for majority voters."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core import L0, L1, Logic, Simulator, X
from repro.core.errors import ElaborationError
from repro.digital import Bus
from repro.harden import (
    BusMajorityVoter,
    DisagreementMonitor,
    MajorityVoter,
    majority,
)

defined = st.sampled_from([L0, L1])
any_level = st.sampled_from(list(Logic))


class TestMajorityFunction:
    @pytest.mark.parametrize("a,b,c,expected", [
        (L0, L0, L0, L0),
        (L1, L1, L1, L1),
        (L0, L0, L1, L0),
        (L1, L0, L1, L1),
        (X, L1, L1, L1),
        (L0, X, L0, L0),
        (X, X, L1, X),
        (L0, L1, X, X),
    ])
    def test_table(self, a, b, c, expected):
        assert majority(a, b, c) is expected

    @given(defined, defined, defined)
    def test_matches_boolean_majority(self, a, b, c):
        ones = sum(1 for v in (a, b, c) if v.is_high())
        assert majority(a, b, c) is (L1 if ones >= 2 else L0)

    @given(any_level, defined)
    def test_single_corruption_masked(self, bad, good):
        """Any single corrupted input is out-voted by two good ones."""
        assert majority(bad, good, good) is good.to_x01()
        assert majority(good, bad, good) is good.to_x01()
        assert majority(good, good, bad) is good.to_x01()

    @given(any_level, any_level, any_level)
    def test_symmetric(self, a, b, c):
        results = {
            majority(*perm) for perm in itertools.permutations((a, b, c))
        }
        assert len(results) == 1


class TestVoterComponents:
    def test_majority_voter_masks_flip(self):
        sim = Simulator()
        ins = [sim.signal(f"i{k}", init=L1) for k in range(3)]
        y = sim.signal("y")
        MajorityVoter(sim, "v", *ins, y)
        sim.run(1e-9)
        assert y.value is L1
        ins[1].deposit(L0)
        sim.run(2e-9)
        assert y.value is L1  # masked

    def test_double_flip_defeats_voter(self):
        sim = Simulator()
        ins = [sim.signal(f"i{k}", init=L1) for k in range(3)]
        y = sim.signal("y")
        MajorityVoter(sim, "v", *ins, y)
        sim.run(1e-9)
        ins[0].deposit(L0)
        ins[2].deposit(L0)
        sim.run(2e-9)
        assert y.value is L0

    def test_bus_voter(self):
        sim = Simulator()
        buses = [Bus(sim, f"b{k}", 4, init=9) for k in range(3)]
        y = Bus(sim, "y", 4)
        BusMajorityVoter(sim, "v", *buses, y)
        sim.run(1e-9)
        assert y.to_int() == 9
        buses[0].bits[3].deposit(L0)  # one copy corrupted
        sim.run(2e-9)
        assert y.to_int() == 9

    def test_bus_voter_width_check(self):
        sim = Simulator()
        a = Bus(sim, "a", 4)
        b = Bus(sim, "b", 4)
        c = Bus(sim, "c", 3)
        y = Bus(sim, "y", 4)
        with pytest.raises(ElaborationError):
            BusMajorityVoter(sim, "v", a, b, c, y)

    def test_disagreement_monitor(self):
        sim = Simulator()
        ins = [sim.signal(f"i{k}", init=L1) for k in range(3)]
        flag = sim.signal("flag")
        mon = DisagreementMonitor(sim, "m", *ins, flag)
        sim.run(1e-9)
        assert flag.value is L0
        ins[1].deposit(L0)
        sim.run(2e-9)
        assert flag.value is L1
        assert mon.events == 1
        ins[1].deposit(L1)
        sim.run(3e-9)
        assert flag.value is L0
