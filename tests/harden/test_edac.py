"""Tests for parity and Hamming protected registers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import L0, L1, Logic, Simulator
from repro.digital import Bus, ClockGen
from repro.harden import (
    HammingProtectedRegister,
    ParityProtectedRegister,
    hamming_decode,
    hamming_encode,
    hamming_widths,
)


class TestHammingCode:
    @pytest.mark.parametrize("k,r", [(4, 3), (8, 4), (11, 4), (16, 5)])
    def test_check_bit_count(self, k, r):
        assert hamming_widths(k) == r

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip_clean(self, value):
        data = [(value >> i) & 1 for i in range(8)]
        code = hamming_encode(data)
        decoded, syndrome = hamming_decode(code)
        assert decoded == data
        assert syndrome == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=11))
    def test_single_error_corrected(self, value, position):
        data = [(value >> i) & 1 for i in range(8)]
        code = hamming_encode(data)
        code[position] ^= 1
        decoded, syndrome = hamming_decode(code)
        assert decoded == data
        assert syndrome != 0

    def test_double_error_not_guaranteed(self):
        data = [1, 0, 1, 0, 1, 0, 1, 0]
        code = hamming_encode(data)
        code[0] ^= 1
        code[5] ^= 1
        decoded, _syndrome = hamming_decode(code)
        # SEC code: two errors at least decode to *something*; they
        # are not guaranteed corrected (usually miscorrected).
        assert decoded != data


def add_clock(sim, period=10e-9):
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=period)
    return clk


class TestParityRegister:
    def test_stores_and_reads(self):
        sim = Simulator()
        clk = add_clock(sim)
        d = Bus(sim, "d", 8, init=0xA5)
        q = Bus(sim, "q", 8)
        err = sim.signal("err")
        ParityProtectedRegister(sim, "reg", d, clk, q, err)
        sim.run(3e-9)
        assert q.to_int() == 0xA5
        assert err.value is L0

    def test_detects_single_upset(self):
        sim = Simulator()
        clk = add_clock(sim)
        d = Bus(sim, "d", 8, init=0xA5)
        q = Bus(sim, "q", 8)
        err = sim.signal("err")
        reg = ParityProtectedRegister(sim, "reg", d, clk, q, err)
        sim.run(3e-9)
        reg._q_ext.bits[2].deposit(
            L0 if reg._q_ext.bits[2].value.is_high() else L1
        )
        sim.run(4e-9)
        assert err.value is L1
        assert q.to_int() != 0xA5  # detected, not corrected

    def test_misses_double_upset(self):
        sim = Simulator()
        clk = add_clock(sim)
        d = Bus(sim, "d", 8, init=0xA5)
        q = Bus(sim, "q", 8)
        err = sim.signal("err")
        reg = ParityProtectedRegister(sim, "reg", d, clk, q, err)
        sim.run(3e-9)
        for i in (1, 6):
            reg._q_ext.bits[i].deposit(
                L0 if reg._q_ext.bits[i].value.is_high() else L1
            )
        sim.run(4e-9)
        assert err.value is L0  # even number of flips escapes parity


class TestHammingRegister:
    def build(self, value=0xA5):
        sim = Simulator()
        clk = add_clock(sim)
        d = Bus(sim, "d", 8, init=value)
        q = Bus(sim, "q", 8)
        corrected = sim.signal("corr")
        reg = HammingProtectedRegister(sim, "reg", d, clk, q,
                                       corrected=corrected)
        return sim, reg, q, corrected

    def test_stores_and_reads(self):
        sim, _reg, q, corrected = self.build()
        sim.run(3e-9)
        assert q.to_int() == 0xA5
        assert corrected.value is L0

    @pytest.mark.parametrize("bit", [0, 3, 7, 11])
    def test_corrects_any_single_stored_bit(self, bit):
        sim, reg, q, corrected = self.build()
        sim.run(3e-9)
        target = reg._code_q.bits[bit]
        target.deposit(L0 if target.value.is_high() else L1)
        sim.run(4e-9)
        assert q.to_int() == 0xA5  # transparently corrected
        assert corrected.value is L1
        assert reg.corrections >= 1

    def test_next_write_clears_correction_flag(self):
        sim, reg, q, corrected = self.build()
        sim.run(3e-9)
        reg._code_q.bits[4].deposit(
            L0 if reg._code_q.bits[4].value.is_high() else L1
        )
        sim.run(4e-9)
        assert corrected.value is L1
        sim.run(12e-9)  # next clock edge rewrites the clean codeword
        assert corrected.value is L0
        assert q.to_int() == 0xA5

    def test_x_input_poisons(self):
        sim, reg, q, _corr = self.build()
        sim.run(3e-9)
        reg._code_q.bits[0].deposit(Logic.X)
        sim.run(4e-9)
        assert q.to_int_or_none() is None
