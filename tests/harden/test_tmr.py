"""Tests for TMR wrappers: masking, residual failures, scrubbing."""

import pytest

from repro.core import L0, L1, Simulator
from repro.core.hierarchy import collect_state_signals
from repro.digital import Bus, ClockGen
from repro.harden import TMRCounter, TMRDFF, TMRRegister
from repro.injection import MutantInjector


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def add_clock(sim, period=10e-9):
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=period)
    return clk


class TestTMRDFF:
    def test_functions_as_dff(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        TMRDFF(sim, "ff", d, clk, q)
        sim.run(1e-9)
        assert q.value is L1

    def test_masks_single_copy_upset(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        ff = TMRDFF(sim, "ff", d, clk, q)
        sim.run(3e-9)
        ff.copies[1].q.deposit(L0)  # SEU in one copy
        sim.run(4e-9)
        assert q.value is L1  # masked

    def test_mismatch_monitor_counts_masked_events(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        mismatch = sim.signal("mm")
        ff = TMRDFF(sim, "ff", d, clk, q, mismatch=mismatch)
        sim.run(3e-9)
        ff.copies[0].q.deposit(L0)
        sim.run(4e-9)
        assert mismatch.value is L1
        assert ff.monitor.events == 1
        sim.run(12e-9)  # next clock edge reloads all copies from d
        assert mismatch.value is L0

    def test_copies_are_injectable_targets(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        ff = TMRDFF(sim, "ff", d, clk, q)
        targets = [n for n, _s in collect_state_signals(ff)]
        assert len(targets) == 3

    def test_mutant_campaign_on_copies(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        ff = TMRDFF(sim, "ff", d, clk, q)
        injector = MutantInjector(sim, ff)
        sim.run(3e-9)
        injector.flip_now(injector.targets()[0])
        sim.run(4e-9)
        assert q.value is L1  # still masked through the real flow


class TestTMRRegister:
    def test_masks_single_upset(self, sim):
        clk = add_clock(sim)
        d = Bus(sim, "d", 4, init=9)
        q = Bus(sim, "q", 4)
        reg = TMRRegister(sim, "reg", d, clk, q)
        sim.run(3e-9)
        assert q.to_int() == 9
        reg.copies[2].q.bits[0].deposit(L0)
        sim.run(4e-9)
        assert q.to_int() == 9

    def test_double_upset_same_bit_fails(self, sim):
        clk = add_clock(sim)
        d = Bus(sim, "d", 4, init=9)
        q = Bus(sim, "q", 4)
        reg = TMRRegister(sim, "reg", d, clk, q)
        sim.run(3e-9)
        reg.copies[0].q.bits[0].deposit(L0)
        reg.copies[1].q.bits[0].deposit(L0)
        sim.run(4e-9)
        assert q.to_int() == 8  # voter out-voted


class TestTMRCounter:
    def test_counts_like_plain_counter(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        TMRCounter(sim, "cnt", clk, q)
        sim.run(55e-9)
        assert q.to_int() == 6

    def test_free_running_upset_is_latent(self, sim):
        """Without scrubbing a masked upset persists in the struck
        copy: the output is right but the redundancy is spent."""
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        cnt = TMRCounter(sim, "cnt", clk, q, resync=False)
        sim.run(25e-9)
        cnt.copy_buses[0].bits[3].deposit(L1)
        sim.run(95e-9)
        assert q.to_int() == 10  # output still correct
        values = [bus.to_int() for bus in cnt.copy_buses]
        assert values[0] != values[1]  # copy 0 still out of step

    def test_scrubbing_self_heals(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        cnt = TMRCounter(sim, "cnt", clk, q, resync=True)
        sim.run(25e-9)
        cnt.copy_buses[0].bits[3].deposit(L1)
        sim.run(95e-9)
        values = [bus.to_int() for bus in cnt.copy_buses]
        assert values[0] == values[1] == values[2] == q.to_int() == 10
