"""Counter/histogram metrics and the global registry."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5


class TestHistogram:
    def test_summary_over_samples(self):
        histogram = Histogram("h")
        for value in (2.0, 4.0, 9.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 2.0
        assert summary["max"] == 9.0
        assert summary["mean"] == pytest.approx(5.0)

    def test_empty_histogram_has_no_mean(self):
        assert Histogram("h").mean is None


class TestRegistry:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_enabled_registry_records(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("a", 3)
        registry.observe("b", 2.5)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["histograms"]["b"]["count"] == 1

    def test_instruments_are_reused_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("")
        with pytest.raises(MetricsError):
            registry.histogram(None)

    def test_reset_drops_instruments_but_not_flag(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("a")
        registry.reset()
        assert registry.enabled
        assert registry.snapshot()["counters"] == {}

    def test_disable_keeps_values(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("a", 7)
        registry.disable()
        assert registry.snapshot()["counters"]["a"] == 7


class TestGlobalRegistry:
    def test_module_helpers_hit_the_global_registry(self):
        metrics.enable()
        metrics.inc("g.count", 2)
        metrics.observe("g.hist", 1.0)
        snap = metrics.snapshot()
        assert snap["counters"]["g.count"] == 2
        assert snap["histograms"]["g.hist"]["count"] == 1
        assert metrics.enabled()

    def test_global_helpers_noop_while_disabled(self):
        metrics.inc("never")
        assert "never" not in metrics.snapshot()["counters"]
