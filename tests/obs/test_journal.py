"""Event journal: envelope, tolerance to interrupts, tailing."""

import json

import pytest

from repro.obs import journal
from repro.obs.journal import (
    EVENT_TYPES,
    JOURNAL_SCHEMA_VERSION,
    Journal,
    JournalError,
    read_journal,
    tail_journal,
)


class TestJournalLifecycle:
    def test_disabled_emit_is_noop(self):
        j = Journal()
        j.emit("run_finished", index=0)  # must not raise or write
        assert not j.enabled
        assert j.path is None

    def test_open_enables_and_close_disables(self, tmp_path):
        j = Journal()
        path = tmp_path / "j.jsonl"
        offset = j.open(path)
        assert offset == 0
        assert j.enabled
        assert j.path == str(path)
        j.close()
        assert not j.enabled
        assert j.path is None
        j.close()  # idempotent

    def test_append_reports_session_offset(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        j.emit("campaign_started", name="a")
        j.close()
        first_size = path.stat().st_size
        assert first_size > 0
        offset = j.open(path, append=True)
        assert offset == first_size
        assert j.session_offset == first_size
        j.emit("campaign_finished", name="a")
        j.close()
        # Reading from the offset sees only the second session.
        events = list(read_journal(path, offset=offset))
        assert [e["event"] for e in events] == ["campaign_finished"]

    def test_reopen_truncates_without_append(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        j.emit("campaign_started", name="a")
        j.close()
        j.open(path)
        j.close()
        assert path.stat().st_size == 0


class TestJournalEmit:
    def test_envelope_fields_and_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        j.emit("campaign_started", name="c", total=3)
        j.emit("run_finished", index=0, status="ok")
        j.close()
        events = list(read_journal(path))
        assert len(events) == 2
        for event in events:
            assert event["v"] == JOURNAL_SCHEMA_VERSION
            assert event["t_wall"] >= 0.0
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["event"] == "campaign_started"
        assert events[0]["name"] == "c"
        assert events[0]["total"] == 3
        assert events[1]["index"] == 0

    def test_unknown_event_type_raises(self, tmp_path):
        j = Journal()
        j.open(tmp_path / "j.jsonl")
        with pytest.raises(JournalError):
            j.emit("made_up_event")

    def test_every_declared_event_type_is_accepted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        for event in EVENT_TYPES:
            j.emit(event)
        j.close()
        assert [e["event"] for e in read_journal(path)] == list(EVENT_TYPES)

    def test_odd_values_degrade_to_strings(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        j.emit("run_finished", weird=object())
        j.close()
        (event,) = read_journal(path)
        assert isinstance(event["weird"], str)

    def test_lines_are_flushed_as_written(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        j.emit("campaign_started", name="c")
        # Readable *before* close: the contract campaign watch needs.
        events = list(read_journal(path))
        assert len(events) == 1
        j.close()


class TestReadJournal:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = json.dumps({"v": 1, "seq": 0, "event": "campaign_started"})
        path.write_text(good + "\n" + '{"v": 1, "seq": 1, "eve')
        events = list(read_journal(path))
        assert len(events) == 1
        assert events[0]["seq"] == 0

    def test_malformed_mid_file_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = json.dumps({"v": 1, "seq": 0, "event": "campaign_started"})
        path.write_text("not json at all\n" + good + "\n")
        with pytest.raises(JournalError):
            list(read_journal(path))

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        good = json.dumps({"v": 1, "seq": 0, "event": "campaign_started"})
        path.write_text(good + "\n\n" + good + "\n")
        assert len(list(read_journal(path))) == 2


class TestTailJournal:
    def test_missing_file_returns_unchanged_position(self, tmp_path):
        events, position = tail_journal(tmp_path / "absent.jsonl", 0)
        assert events == []
        assert position == 0

    def test_tail_never_double_reads(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = Journal()
        j.open(path)
        j.emit("campaign_started", name="c")
        events, position = tail_journal(path, 0)
        assert [e["event"] for e in events] == ["campaign_started"]
        again, position2 = tail_journal(path, position)
        assert again == []
        assert position2 == position
        j.emit("run_finished", index=0, status="ok")
        j.close()
        more, _ = tail_journal(path, position)
        assert [e["event"] for e in more] == ["run_finished"]

    def test_partial_final_line_waits_for_next_poll(self, tmp_path):
        path = tmp_path / "j.jsonl"
        complete = json.dumps({"v": 1, "seq": 0, "event": "run_started"})
        with open(path, "w") as handle:
            handle.write(complete + "\n")
            handle.write('{"v": 1, "seq": 1, "ev')  # writer mid-record
        events, position = tail_journal(path, 0)
        assert len(events) == 1
        # Finish the record; the next poll picks it up from `position`.
        with open(path, "a") as handle:
            handle.write('ent": "run_finished"}\n')
        more, _ = tail_journal(path, position)
        assert [e["event"] for e in more] == ["run_finished"]


class TestGlobalJournal:
    def test_module_helpers_hit_the_global_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        assert journal.enabled()
        assert journal.JOURNAL.path == str(path)
        journal.emit("campaign_started", name="g")
        journal.close_journal()
        assert not journal.enabled()
        assert [e["name"] for e in read_journal(path)] == ["g"]

    def test_disabled_global_emit_is_noop(self, tmp_path):
        journal.emit("campaign_started", name="never")  # no sink: no-op
        assert not journal.enabled()
