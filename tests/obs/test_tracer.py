"""Span tracer behavior and export formats."""

import json

import pytest

from repro.obs import tracer
from repro.obs.tracer import Tracer


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer()
        span = t.span("x", a=1)
        assert span is t.span("y")
        with span as handle:
            handle.annotate(later=2)
        assert t.spans == []

    def test_enabled_span_records_interval_and_attrs(self):
        t = Tracer()
        t.enable()
        with t.span("kernel.run", t_from=0.0) as span:
            span.annotate(t_to=1e-6)
        assert len(t.spans) == 1
        recorded = t.spans[0]
        assert recorded.name == "kernel.run"
        assert recorded.attrs == {"t_from": 0.0, "t_to": 1e-6}
        assert recorded.duration >= 0.0

    def test_exception_annotates_and_propagates(self):
        t = Tracer()
        t.enable()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("no")
        assert t.spans[0].attrs["error"] == "ValueError"

    def test_reset_drops_spans(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        t.reset()
        assert t.spans == []

    def test_to_dicts_shape(self):
        t = Tracer()
        t.enable()
        with t.span("a", k="v"):
            pass
        (entry,) = t.to_dicts()
        assert set(entry) == {"name", "start_s", "duration_s", "attrs"}
        assert entry["attrs"] == {"k": "v"}

    def test_chrome_trace_format(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        events = t.to_chrome_trace()["traceEvents"]
        assert events[0]["ph"] == "X"
        assert events[0]["name"] == "a"

    def test_save_writes_json(self, tmp_path):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        plain = tmp_path / "spans.json"
        chrome = tmp_path / "chrome.json"
        t.save(plain)
        t.save(chrome, chrome=True)
        assert json.loads(plain.read_text())[0]["name"] == "a"
        assert "traceEvents" in json.loads(chrome.read_text())


class TestGlobalTracer:
    def test_module_helpers_hit_the_global_tracer(self):
        tracer.enable()
        with tracer.span("global.span"):
            pass
        assert tracer.enabled()
        assert tracer.TRACER.spans[-1].name == "global.span"
