"""Span tracer behavior and export formats."""

import json

import pytest

from repro.obs import tracer
from repro.obs.tracer import Tracer


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer()
        span = t.span("x", a=1)
        assert span is t.span("y")
        with span as handle:
            handle.annotate(later=2)
        assert t.spans == []

    def test_enabled_span_records_interval_and_attrs(self):
        t = Tracer()
        t.enable()
        with t.span("kernel.run", t_from=0.0) as span:
            span.annotate(t_to=1e-6)
        assert len(t.spans) == 1
        recorded = t.spans[0]
        assert recorded.name == "kernel.run"
        assert recorded.attrs == {"t_from": 0.0, "t_to": 1e-6}
        assert recorded.duration >= 0.0

    def test_exception_annotates_and_propagates(self):
        t = Tracer()
        t.enable()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("no")
        assert t.spans[0].attrs["error"] == "ValueError"

    def test_reset_drops_spans(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        t.reset()
        assert t.spans == []

    def test_to_dicts_shape(self):
        t = Tracer()
        t.enable()
        with t.span("a", k="v"):
            pass
        (entry,) = t.to_dicts()
        assert set(entry) == {"name", "start_s", "duration_s", "attrs"}
        assert entry["attrs"] == {"k": "v"}

    def test_chrome_trace_format(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        events = t.to_chrome_trace()["traceEvents"]
        assert events[0]["ph"] == "X"
        assert events[0]["name"] == "a"

    def test_chrome_trace_full_event_shape(self):
        t = Tracer()
        t.enable()
        with t.span("campaign.fault_run", index=3) as span:
            span.annotate(status="ok")
        (event,) = t.to_chrome_trace()["traceEvents"]
        # Complete-event shape Perfetto expects: no extra, no missing.
        assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid", "args"}
        assert event["ph"] == "X"
        assert event["pid"] == 0
        assert event["tid"] == 0
        assert event["args"] == {"index": 3, "status": "ok"}

    def test_chrome_trace_times_are_microseconds(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        span = t.spans[0]
        (event,) = t.to_chrome_trace()["traceEvents"]
        assert event["ts"] == pytest.approx(span.t0 * 1e6)
        assert event["dur"] == pytest.approx(span.duration * 1e6)

    def test_save_chrome_trace_round_trips(self, tmp_path):
        t = Tracer()
        t.enable()
        with t.span("kernel.run", t_from=0.0):
            pass
        path = tmp_path / "chrome.json"
        t.save(path, chrome=True)
        loaded = json.loads(path.read_text())
        assert list(loaded) == ["traceEvents"]
        (event,) = loaded["traceEvents"]
        assert event["name"] == "kernel.run"
        assert event["args"] == {"t_from": 0.0}
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0

    def test_save_writes_json(self, tmp_path):
        t = Tracer()
        t.enable()
        with t.span("a"):
            pass
        plain = tmp_path / "spans.json"
        chrome = tmp_path / "chrome.json"
        t.save(plain)
        t.save(chrome, chrome=True)
        assert json.loads(plain.read_text())[0]["name"] == "a"
        assert "traceEvents" in json.loads(chrome.read_text())


class TestAtomicWriteJson:
    def test_writes_and_cleans_up_temp(self, tmp_path):
        path = tmp_path / "out.json"
        tracer.atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert not (tmp_path / "out.json.tmp").exists()

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        tracer.atomic_write_json(path, {"version": 1})
        tracer.atomic_write_json(path, {"version": 2})
        assert json.loads(path.read_text()) == {"version": 2}

    def test_odd_values_degrade_to_strings(self, tmp_path):
        path = tmp_path / "out.json"
        tracer.atomic_write_json(path, {"weird": object()})
        assert isinstance(json.loads(path.read_text())["weird"], str)


class TestGlobalTracer:
    def test_module_helpers_hit_the_global_tracer(self):
        tracer.enable()
        with tracer.span("global.span"):
            pass
        assert tracer.enabled()
        assert tracer.TRACER.spans[-1].name == "global.span"
