"""Flight recorder ring buffer and post-mortem files."""

import json
import os

import pytest

from repro.core import AnalogBlock, RunBudget, Simulator
from repro.core.errors import ReproError
from repro.faults import BitFlip
from repro.obs.flightrec import (
    FlightRecorder,
    POSTMORTEM_VERSION,
    build_postmortem,
    postmortem_path,
    write_postmortem,
    write_worker_postmortem,
)


class Ramp(AnalogBlock):
    """Writes t (in ns) to its node every step."""

    def __init__(self, sim, name, node):
        super().__init__(sim, name)
        self.out = self.writes_node(node)

    def step(self, t, dt):
        self.out.set(t * 1e9)


def analog_sim():
    sim = Simulator(dt=1e-9)
    node = sim.node("n")
    Ramp(sim, "r", node)
    sim.probe(node, name="n")
    return sim


class TestFlightRecorderRing:
    def test_validation(self):
        with pytest.raises(ReproError):
            FlightRecorder(capacity=0)
        with pytest.raises(ReproError):
            FlightRecorder(stride=0)

    def test_solver_hook_records_strided_entries(self):
        sim = analog_sim()
        recorder = FlightRecorder(capacity=8, stride=4)
        sim.analog.recorder = recorder
        sim.run(20e-9)
        assert recorder.steps_seen >= 20
        entries = recorder.entries()
        assert 0 < len(entries) <= 8
        # Each entry is (t, value-per-node); times strictly increase.
        times = [entry[0] for entry in entries]
        assert times == sorted(times)
        assert all(len(entry) == 2 for entry in entries)

    def test_ring_keeps_most_recent_entries(self):
        sim = analog_sim()
        recorder = FlightRecorder(capacity=4, stride=1)
        sim.analog.recorder = recorder
        sim.run(20e-9)
        entries = recorder.entries()
        assert len(entries) == 4
        assert recorder.steps_seen > 4
        # Oldest-first ordering survives the wraparound.
        times = [entry[0] for entry in entries]
        assert times == sorted(times)
        assert times[0] > 0.0  # early steps were evicted

    def test_stride_skips_steps(self):
        sim = analog_sim()
        fine = FlightRecorder(capacity=1024, stride=1)
        sim.analog.recorder = fine
        sim.run(20e-9)
        sim2 = analog_sim()
        coarse = FlightRecorder(capacity=1024, stride=5)
        sim2.analog.recorder = coarse
        sim2.run(20e-9)
        assert len(coarse.entries()) < len(fine.entries())


class TestSnapshot:
    def test_snapshot_shape(self):
        sim = analog_sim()
        recorder = FlightRecorder(capacity=8, stride=2)
        sim.analog.recorder = recorder
        sim.run(10e-9)
        snap = recorder.snapshot(sim)
        assert snap["node_names"] == ["n"]
        assert snap["t_now"] == pytest.approx(10e-9)
        assert "n" in snap["nodes_now"]
        assert snap["solver_stride"] == 2
        assert snap["steps_seen"] == recorder.steps_seen
        assert snap["solver_steps"]
        assert "n" in snap["trace_tails"]
        assert len(snap["trace_tails"]["n"]) <= 16
        assert isinstance(snap["event_queue_tail"], list)

    def test_snapshot_without_sim(self):
        recorder = FlightRecorder()
        snap = recorder.snapshot(None)
        assert snap["t_now"] is None
        assert snap["nodes_now"] == {}
        assert snap["solver_steps"] == []


class TestPostmortemFiles:
    def test_deterministic_path(self, tmp_path):
        path = postmortem_path(tmp_path, 7)
        assert path == os.path.join(str(tmp_path), "fault_00007.postmortem.json")

    def test_write_creates_directory_and_is_loadable(self, tmp_path):
        directory = tmp_path / "deep" / "pm"
        path = write_postmortem(directory, 3, {"status": "diverged"})
        assert json.load(open(path)) == {"status": "diverged"}
        assert not os.path.exists(path + ".tmp")

    def test_write_replaces_atomically(self, tmp_path):
        write_postmortem(tmp_path, 0, {"attempt": 1})
        path = write_postmortem(tmp_path, 0, {"attempt": 2})
        assert json.load(open(path))["attempt"] == 2

    def test_build_postmortem_payload(self, tmp_path):
        sim = analog_sim()
        recorder = FlightRecorder(capacity=8, stride=2)
        sim.analog.recorder = recorder
        sim.run(10e-9)
        fault = BitFlip("top/u.q", 5e-9)
        budget = RunBudget(max_wall_s=1.0, max_events=100)
        payload = build_postmortem(
            sim, recorder, fault=fault, index=4, status="timeout",
            error=TimeoutError("too slow"), budget=budget, attempt=2,
        )
        assert payload["postmortem_version"] == POSTMORTEM_VERSION
        assert payload["index"] == 4
        assert payload["status"] == "timeout"
        assert payload["attempt"] == 2
        assert payload["error"] == "TimeoutError: too slow"
        assert payload["fault"]["describe"] == fault.describe()
        assert payload["budget"]["max_events"] == 100
        assert payload["recorder"]["solver_steps"]
        # The payload must be JSON-serializable end to end.
        path = write_postmortem(tmp_path, 4, payload)
        assert json.load(open(path))["index"] == 4

    def test_build_postmortem_minimal(self):
        payload = build_postmortem(None, None)
        assert payload["fault"] is None
        assert payload["budget"] is None
        assert payload["error"] is None
        assert payload["recorder"]["solver_steps"] == []

    def test_worker_death_postmortem(self, tmp_path):
        fault = BitFlip("top/u.q", 5e-9)
        path = write_worker_postmortem(
            tmp_path, 9, fault=fault, status="crashed",
            error="worker SIGKILLed", pid=1234, exitcode=-9,
            last_heartbeat={"pid": 1234, "index": 9, "phase": "simulate"},
        )
        assert path == postmortem_path(tmp_path, 9)
        payload = json.load(open(path))
        assert payload["kind"] == "worker_death"
        assert payload["worker"] == {"pid": 1234, "exitcode": -9}
        assert payload["last_heartbeat"]["phase"] == "simulate"
