"""Kernel and campaign hot paths feed the global instruments."""

import numpy as np

from repro import obs
from repro.campaign import CampaignSpec, Design, exhaustive_bitflips, run_campaign
from repro.core import Component, L0, Simulator
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.obs import metrics, tracer


def build_sim():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {"parity": sim.probe(par)}
    return sim, top, probes


def factory():
    sim, top, probes = build_sim()
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(2)], [35e-9, 55e-9]
    )
    return CampaignSpec(name="obs", faults=faults, t_end=200e-9,
                        outputs=["parity"])


class TestKernelInstrumentation:
    def test_run_records_event_deltas_and_span(self):
        obs.enable()
        sim, _top, _probes = build_sim()
        sim.run(100e-9)
        snap = metrics.snapshot()
        assert snap["counters"]["kernel.events"] == sim.events_executed
        assert snap["histograms"]["kernel.run_wall_s"]["count"] == 1
        names = [span.name for span in tracer.TRACER.spans]
        assert "kernel.run" in names

    def test_snapshot_restore_instrumented(self):
        obs.enable()
        sim, _top, _probes = build_sim()
        sim.run(50e-9)
        snap = sim.snapshot()
        sim.run(100e-9)
        sim.restore(snap)
        counters = metrics.snapshot()["counters"]
        assert counters["kernel.snapshots"] == 1
        assert counters["kernel.restores"] == 1
        restore_span = [
            span for span in tracer.TRACER.spans
            if span.name == "kernel.restore"
        ]
        assert restore_span and restore_span[0].attrs["to"] == snap.time

    def test_disabled_kernel_records_nothing(self):
        sim, _top, _probes = build_sim()
        sim.run(100e-9)
        assert metrics.snapshot() == {"counters": {}, "histograms": {}}
        assert tracer.TRACER.spans == []

    def test_instrumented_run_matches_uninstrumented(self):
        sim_a, _t, probes_a = build_sim()
        sim_a.run(200e-9)
        obs.enable()
        sim_b, _t, probes_b = build_sim()
        sim_b.run(200e-9)
        assert sim_a.events_executed == sim_b.events_executed
        assert np.array_equal(
            probes_a["parity"].values, probes_b["parity"].values,
            equal_nan=True,
        )


class TestCampaignInstrumentation:
    def test_campaign_counters_and_spans(self):
        obs.enable()
        result = run_campaign(factory, make_spec())
        counters = metrics.snapshot()["counters"]
        assert counters["campaign.runs"] == len(result)
        class_total = sum(
            count for name, count in counters.items()
            if name.startswith("campaign.class.")
        )
        assert class_total == len(result)
        names = [span.name for span in tracer.TRACER.spans]
        assert names.count("campaign.fault_run") == len(result)
        assert "campaign.golden" in names

    def test_warm_campaign_counts_hits(self):
        obs.enable()
        run_campaign(factory, make_spec(), warm_start=True)
        counters = metrics.snapshot()["counters"]
        assert counters.get("campaign.warm.hit", 0) == 4
        assert counters.get("campaign.warm.miss", 0) == 0

    def test_run_wall_histogram_populated(self):
        obs.enable()
        result = run_campaign(factory, make_spec())
        hist = metrics.snapshot()["histograms"]["campaign.run_wall_s"]
        assert hist["count"] == len(result)
        assert hist["total"] > 0.0
