"""Keep the process-global instruments isolated between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_instruments():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
