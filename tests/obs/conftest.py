"""Keep the process-global instruments isolated between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_instruments():
    obs.disable()
    obs.reset()
    obs.journal.close_journal()
    yield
    obs.disable()
    obs.reset()
    obs.journal.close_journal()
