"""Tests for the Figure 5 PLL case study."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_perturbation,
    clock_periods,
    is_locked,
    mean_frequency,
)
from repro.core import Simulator
from repro.core.errors import ElaborationError
from repro.faults import FIGURE6_PULSE
from repro.injection import CurrentPulseSaboteur

from tests.conftest import make_fast_pll


class TestStructure:
    def test_figure5_hierarchy(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim)
        names = {child.name for child in pll.children}
        assert {"pfd", "chargepump", "filter", "vco", "digitizer",
                "divider"} <= names

    def test_injection_node_is_current_node(self):
        from repro.core import CurrentNode

        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim)
        assert isinstance(pll.icp, CurrentNode)
        assert pll.icp.name == "pll.icp"

    def test_paper_operating_point(self):
        """Default parameters give the paper's numbers: 500 kHz in,
        50 MHz (20 ns) out, /100."""
        from repro.ams import PLL

        sim = Simulator(dt=1e-9)
        pll = PLL(sim, "pll")
        assert pll.f_ref == pytest.approx(500e3)
        assert pll.n_div == 100
        assert pll.f_out_nominal == pytest.approx(50e6)
        assert pll.t_out_nominal == pytest.approx(20e-9)

    def test_bad_divider_rejected(self):
        from repro.ams import PLL

        sim = Simulator(dt=1e-9)
        with pytest.raises(ElaborationError):
            PLL(sim, "pll", n_div=1)

    def test_loop_crossover_estimate(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim)
        # Ip*Kv*R/(2 pi N) = 1e-4 * 1e7 * 1.57e4 / (2 pi 10) ~ 250 kHz
        assert pll.loop_crossover_hz() == pytest.approx(250e3, rel=0.01)

    def test_external_reference_accepted(self):
        from repro.ams import PLL
        from repro.core import L0
        from repro.digital import ClockGen

        sim = Simulator(dt=1e-9)
        ref = sim.signal("myref", init=L0)
        ClockGen(sim, "ck", ref, period=0.2e-6)
        pll = PLL(sim, "pll", f_ref="5MHz", n_div=10, c1="162pF", c2="16pF",
                  ref=ref, preset_locked=True)
        assert pll.refgen is None
        vco = sim.probe(pll.vco_out)
        sim.run(10e-6)
        assert mean_frequency(vco, 2.5, t0=5e-6) == pytest.approx(50e6,
                                                                  rel=0.01)


class TestLocking:
    def test_preset_locked_holds_lock(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        vco = sim.probe(pll.vco_out)
        sim.run(20e-6)
        assert is_locked(vco.segment(5e-6, None), pll.t_out_nominal,
                         tol_frac=0.01)
        assert mean_frequency(vco, 2.5, t0=10e-6) == pytest.approx(
            50e6, rel=5e-3)

    def test_acquires_lock_from_cold_start(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=False)
        vco = sim.probe(pll.vco_out)
        sim.run(60e-6)
        assert is_locked(vco.segment(45e-6, None), pll.t_out_nominal,
                         tol_frac=0.01)

    def test_vctrl_settles_near_center(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        vctrl = sim.probe(pll.vctrl)
        sim.run(20e-6)
        assert vctrl.final == pytest.approx(pll.vctrl_locked, abs=0.05)

    def test_divider_output_at_reference_frequency(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        fb = sim.probe(pll.fb)
        sim.run(20e-6)
        rises = fb.edges("rise")
        periods = np.diff(rises)
        assert np.mean(periods[-20:]) == pytest.approx(0.2e-6, rel=0.01)


class TestInjectionResponse:
    def test_figure6_pulse_perturbs_many_cycles(self):
        """The headline Section 5.2 result on the fast PLL."""
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        t_inj = 10e-6
        sab.schedule(FIGURE6_PULSE, t_inj)
        vco = sim.probe(pll.vco_out)
        vctrl = sim.probe(pll.vctrl)
        sim.run(25e-6)
        report = analyze_perturbation(
            vco.segment(5e-6, None), t_inj, FIGURE6_PULSE.pw,
            pll.t_out_nominal, tol_frac=0.003,
            vctrl_trace=vctrl, vctrl_nominal=pll.vctrl_locked,
        )
        assert report.multi_cycle()
        assert report.perturbed_cycles > 5
        assert report.amplification > 50
        # fault is 2.5% of the clock period (PW = 500 ps vs 20 ns)
        assert report.fault_to_period_ratio == pytest.approx(0.025)

    def test_loop_recovers_lock_after_injection(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        sab.schedule(FIGURE6_PULSE, 10e-6)
        vco = sim.probe(pll.vco_out)
        sim.run(30e-6)
        assert is_locked(vco.segment(25e-6, None), pll.t_out_nominal,
                         tol_frac=0.005, consecutive=10)

    def test_vctrl_step_magnitude_matches_charge(self):
        """Immediate control-voltage step ~ Q / C2."""
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        c2 = 16e-12
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        sab.schedule(FIGURE6_PULSE, 10e-6)
        vctrl = sim.probe(pll.vctrl)
        sim.run(12e-6)
        peak = vctrl.maximum(10e-6, 10.5e-6) - pll.vctrl_locked
        assert peak == pytest.approx(FIGURE6_PULSE.charge() / c2, rel=0.25)

    def test_negative_pulse_dips_frequency(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        sab.schedule(FIGURE6_PULSE.scaled(amplitude_factor=-1.0), 10e-6)
        vco = sim.probe(pll.vco_out)
        sim.run(13e-6)
        f_hit = mean_frequency(vco, 2.5, t0=10e-6, t1=11e-6)
        assert f_hit < 50e6
