"""Tests for D/A bridges and the digital load block."""

import pytest

from repro.ams import BusToVoltage, DigitalLoad, LogicToVoltage
from repro.core import L0, L1, Logic, Simulator
from repro.digital import Bus, ClockGen, LFSR


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


class TestLogicToVoltage:
    def test_levels(self, sim):
        sig = sim.signal("s", init=L0)
        node = sim.node("v")
        LogicToVoltage(sim, "drv", sig, node, v_high=5.0, v_low=0.0)
        sim.run(2e-9)
        assert node.v == 0.0
        sig.drive(L1)
        sim.run(4e-9)
        assert node.v == 5.0

    def test_unknown_maps_to_midrail(self, sim):
        sig = sim.signal("s", init=Logic.X)
        node = sim.node("v")
        LogicToVoltage(sim, "drv", sig, node, v_high=5.0, v_low=0.0)
        sim.run(2e-9)
        assert node.v == 2.5

    def test_slew_limited_edge(self, sim):
        sig = sim.signal("s", init=L0)
        node = sim.node("v")
        LogicToVoltage(sim, "drv", sig, node, slew=1e9)  # 1 V/ns
        sim.run(2e-9)
        sig.drive(L1)
        sim.run(4e-9)
        assert 0.0 < node.v < 5.0  # mid-transition
        sim.run(10e-9)
        assert node.v == pytest.approx(5.0)


class TestBusToVoltage:
    def test_code_mapping(self, sim):
        bus = Bus(sim, "b", 4, init=8)
        node = sim.node("v")
        BusToVoltage(sim, "dac", bus, node, v_ref=5.0)
        sim.run(2e-9)
        assert node.v == pytest.approx(2.5)

    def test_undefined_maps_midrail(self, sim):
        bus = Bus(sim, "b", 4, init=Logic.U)
        node = sim.node("v")
        BusToVoltage(sim, "dac", bus, node, v_ref=5.0)
        sim.run(2e-9)
        assert node.v == pytest.approx(2.5)


class TestDigitalLoad:
    def test_counts_and_patterns(self, sim):
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        load = DigitalLoad(sim, "load", clk)
        sim.run(105e-9)
        count, pattern = load.snapshot()
        assert count == 11
        assert pattern == LFSR.sequence(8, steps=11)[-1]

    def test_exposes_injectable_state(self, sim):
        from repro.core.hierarchy import collect_state_signals

        clk = sim.signal("clk", init=L0)
        load = DigitalLoad(sim, "load", clk)
        names = [n for n, _s in collect_state_signals(load)]
        assert any("counter" in n for n in names)
        assert any("lfsr" in n for n in names)

    def test_parity_output_present(self, sim):
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        load = DigitalLoad(sim, "load", clk)
        sim.run(15e-9)
        assert load.parity.value.is_defined()
