"""Tests for the flash and SAR ADC assemblies."""

import pytest

from repro.analog import DCVoltage, PWLVoltage
from repro.ams import FlashADC, SARADC
from repro.core import L0, Simulator
from repro.core.errors import ElaborationError
from repro.digital import ClockGen


def flash_setup(volts, bits=4, dt=10e-9, **kwargs):
    sim = Simulator(dt=dt)
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=1e-6)
    vin = sim.node("vin")
    DCVoltage(sim, "src", vin, volts)
    adc = FlashADC(sim, "adc", clk, vin, bits=bits, **kwargs)
    return sim, adc


def sar_setup(volts, bits=8, dt=10e-9):
    sim = Simulator(dt=dt)
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=1e-6)
    vin = sim.node("vin")
    DCVoltage(sim, "src", vin, volts)
    adc = SARADC(sim, "sar", clk, vin, bits=bits)
    return sim, adc


class TestFlashADC:
    @pytest.mark.parametrize("volts", [0.4, 1.3, 2.5, 3.2, 4.8])
    def test_dc_codes(self, volts):
        sim, adc = flash_setup(volts)
        sim.run(5e-6)
        assert adc.output.to_int() == adc.ideal_code(volts)

    def test_full_scale_clips(self):
        sim, adc = flash_setup(7.0)
        sim.run(5e-6)
        assert adc.output.to_int() == 15

    def test_zero_input(self):
        sim, adc = flash_setup(0.0)
        sim.run(5e-6)
        assert adc.output.to_int() == 0

    def test_tracks_ramp(self):
        sim = Simulator(dt=10e-9)
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=1e-6)
        vin = sim.node("vin")
        PWLVoltage(sim, "src", vin, [(0, 0.0), (20e-6, 5.0)])
        adc = FlashADC(sim, "adc", clk, vin, bits=4)
        codes = []
        sim.every(1e-6, lambda: codes.append(adc.output.to_int_or_none()),
                  start=0.9e-6)
        sim.run(20e-6)
        defined = [c for c in codes if c is not None]
        assert defined == sorted(defined)  # monotone ramp -> monotone codes
        assert defined[-1] >= 14

    def test_comparator_offset_parametric_fault(self):
        """A large offset on one comparator creates a code error."""
        offsets = [0.0] * 15
        offsets[7] = 0.5  # input-referred offset: comparator fires early
        sim, adc = flash_setup(2.2, comparator_offsets=offsets)
        sim.run(5e-6)
        assert adc.output.to_int() != adc.ideal_code(2.2)

    def test_held_node_is_injectable(self):
        from repro.core import CurrentNode

        sim, adc = flash_setup(2.5)
        assert isinstance(adc.held, CurrentNode)

    def test_min_bits(self):
        sim = Simulator(dt=10e-9)
        clk = sim.signal("clk", init=L0)
        vin = sim.node("vin")
        with pytest.raises(ElaborationError):
            FlashADC(sim, "adc", clk, vin, bits=1)

    def test_output_register_seu_target(self):
        sim, adc = flash_setup(3.2)
        sim.run(5e-6)
        states = adc.register.state_signals()
        assert len(states) == 4


class TestSARADC:
    @pytest.mark.parametrize("volts", [0.3, 1.1, 2.5, 3.2, 4.9])
    def test_dc_conversion(self, volts):
        sim, adc = sar_setup(volts)
        sim.run(30e-6)  # several conversions (9 cycles each)
        assert adc.output.to_int() == adc.ideal_code(volts)

    def test_conversion_takes_bits_plus_one_cycles(self):
        sim, adc = sar_setup(2.5, bits=8)
        done = sim.probe(adc.done)
        sim.run(40e-6)
        rises = done.edges("rise")
        assert len(rises) >= 2
        import numpy as np

        gaps = np.diff(rises)
        assert gaps[0] == pytest.approx(9e-6, rel=0.01)

    def test_injection_during_trials_corrupts_code(self):
        """Charge dumped on the hold cap mid-conversion shifts the
        remaining bit decisions — the classic SAR failure mode."""
        from repro.faults import TrapezoidPulse
        from repro.injection import CurrentPulseSaboteur

        sim, adc = sar_setup(2.5, bits=8)
        sab = CurrentPulseSaboteur(sim, "sab", adc.held)
        # hold cap 1 pF; 0.5 pC shifts the held value by ~0.5 V
        pulse = TrapezoidPulse("1mA", "50ps", "50ps", "500ps")
        # first conversion: sample at cycle 0 (edge at 0), trials at
        # cycles 1..8; inject between trial edges.
        sab.schedule(pulse, 3.5e-6)
        sim.run(12e-6)
        ideal = adc.ideal_code(2.5)
        assert adc.output.to_int() != ideal

    def test_trial_register_seu_target(self):
        sim, adc = sar_setup(2.5)
        targets = adc.logic.state_signals()
        assert len(targets) == 8

    def test_min_bits(self):
        sim = Simulator(dt=10e-9)
        clk = sim.signal("clk", init=L0)
        vin = sim.node("vin")
        with pytest.raises(ElaborationError):
            SARADC(sim, "adc", clk, vin, bits=1)
