"""Tests for the delay-locked loop case study."""

import numpy as np
import pytest

from repro.ams.dll import DLL, VoltageControlledDelayLine
from repro.analog import DCVoltage
from repro.core import L0, Simulator
from repro.core.errors import ElaborationError
from repro.digital import ClockGen
from repro.faults import TrapezoidPulse
from repro.injection import CurrentPulseSaboteur


def edge_alignment_error(ref_trace, delayed_trace, period):
    """Mean |offset| of delayed rising edges vs the following ref
    edges, over the last few cycles."""
    ref_edges = ref_trace.edges("rise")
    out_edges = delayed_trace.edges("rise")
    errors = []
    for edge in out_edges[-10:]:
        nearest = ref_edges[np.argmin(np.abs(ref_edges - edge))]
        errors.append(abs(edge - nearest))
    return float(np.mean(errors))


class TestDelayLine:
    def test_delays_edges_by_control(self):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=20e-9)
        out = sim.signal("out")
        vc = sim.node("vc", init=2.5)
        DCVoltage(sim, "src", vc, 2.5)
        VoltageControlledDelayLine(
            sim, "dl", clk, out, vc, d0=5e-9, kdl=2e-9
        )
        tr_in = sim.probe(clk)
        tr_out = sim.probe(out)
        sim.run(100e-9)
        delay = tr_out.edges("rise")[0] - tr_in.edges("rise")[0]
        assert delay == pytest.approx(5e-9, abs=1e-12)

    def test_voltage_shifts_delay(self):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=20e-9)
        out = sim.signal("out")
        vc = sim.node("vc", init=3.0)
        DCVoltage(sim, "src", vc, 3.0)
        VoltageControlledDelayLine(
            sim, "dl", clk, out, vc, d0=5e-9, kdl=2e-9, vcenter=2.5
        )
        tr_in = sim.probe(clk)
        tr_out = sim.probe(out)
        sim.run(100e-9)
        delay = tr_out.edges("rise")[0] - tr_in.edges("rise")[0]
        assert delay == pytest.approx(6e-9, abs=1e-12)

    def test_clamp_limits(self):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=L0)
        out = sim.signal("out")
        vc = sim.node("vc", init=100.0)
        dl = VoltageControlledDelayLine(
            sim, "dl", clk, out, vc, d0=5e-9, kdl=2e-9,
            d_min=1e-9, d_max=8e-9,
        )
        assert dl.current_delay() == pytest.approx(8e-9)

    def test_bad_bounds(self):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=L0)
        out = sim.signal("out")
        vc = sim.node("vc")
        with pytest.raises(ElaborationError):
            VoltageControlledDelayLine(
                sim, "dl", clk, out, vc, d0=5e-9, kdl=2e-9,
                d_min=8e-9, d_max=1e-9,
            )


class TestDLLLocking:
    def test_locks_to_one_period(self):
        sim = Simulator(dt=1e-9)
        dll = DLL(sim, "dll")
        ref = sim.probe(dll.ref)
        delayed = sim.probe(dll.delayed)
        sim.run(30e-6)
        error = edge_alignment_error(ref, delayed, dll.t_ref)
        # quantisation floor is the 1 ns solver/PFD step
        assert error < 2e-9
        assert abs(dll.delay_error()) < 2e-9

    def test_injection_perturbs_then_recovers(self):
        sim = Simulator(dt=1e-9)
        dll = DLL(sim, "dll")
        sab = CurrentPulseSaboteur(sim, "sab", dll.icp)
        pulse = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        sim.run(30e-6)  # lock first
        sab.schedule(pulse, 32e-6)
        vctrl = sim.probe(dll.vctrl)
        sim.run(60e-6)
        # charge step on the 64 pF loop cap: dV = Q/C ~ 94 mV
        peak = vctrl.maximum(32e-6, 33e-6) - vctrl.at(31.9e-6)
        assert peak == pytest.approx(pulse.charge() / 64e-12, rel=0.15)
        # First-order loop: recovers towards lock.  The charge pump is
        # sampled on the 1 ns solver grid, so the detector has a ~1 ns
        # dead zone = kdl * 1 ns = 50 mV of control-voltage slack; the
        # voltage must come back inside that band and the *delay* must
        # be re-aligned within the quantisation floor.
        late_dev = abs(vctrl.at(58e-6) - vctrl.at(31.9e-6))
        assert late_dev < 0.6 * peak
        assert abs(dll.delay_error()) < 2e-9

    def test_icp_is_injection_target(self):
        from repro.core import CurrentNode
        from repro.core.hierarchy import collect_current_nodes

        sim = Simulator(dt=1e-9)
        dll = DLL(sim, "dll")
        assert isinstance(dll.icp, CurrentNode)
        names = [n for n, _node in collect_current_nodes(sim)]
        assert "dll.icp" in names

    def test_bad_d0_frac(self):
        sim = Simulator(dt=1e-9)
        with pytest.raises(ElaborationError):
            DLL(sim, "dll", d0_frac=1.2)
