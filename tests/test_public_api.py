"""The public API surface must stay importable and consistent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.digital",
    "repro.analog",
    "repro.ams",
    "repro.faults",
    "repro.injection",
    "repro.campaign",
    "repro.obs",
    "repro.store",
    "repro.analysis",
    "repro.harden",
    "repro.netlist",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    module = importlib.import_module(package)
    names = [n for n in module.__all__ if n != "__version__"]
    assert len(names) == len(set(names)), f"{package}.__all__ has dupes"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_every_public_callable_has_a_docstring():
    """Deliverable (e): doc comments on every public item."""
    missing = []
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name, None)
            if obj is None or not callable(obj):
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{package}.{name}")
    assert missing == [], f"undocumented public callables: {missing}"


def test_public_classes_document_their_methods():
    """Public methods of exported classes carry docstrings.

    An override whose *base* declaration is documented counts as
    documented (``step``, ``state_signals``, ``describe`` and friends
    inherit their contract from the abstract base).
    """
    import inspect

    def documented_somewhere(cls, meth_name):
        for base in cls.__mro__:
            candidate = base.__dict__.get(meth_name)
            if candidate is not None and (candidate.__doc__ or "").strip():
                return True
        return False

    missing = []
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name, None)
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in inspect.getmembers(obj):
                if meth_name.startswith("_"):
                    continue
                if not (inspect.isfunction(meth) or inspect.ismethod(meth)):
                    continue
                if not documented_somewhere(obj, meth_name):
                    missing.append(f"{package}.{name}.{meth_name}")
    assert missing == [], f"undocumented public methods: {missing}"
