"""Tests for shift registers."""

import pytest

from repro.core import L0, L1, Simulator
from repro.core.errors import ElaborationError
from repro.digital import Bus, ClockGen, ShiftRegister


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def build(sim, width=4, **kwargs):
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9)
    sin = sim.signal("sin", init=L0)
    q = Bus(sim, "q", width)
    sr = ShiftRegister(sim, "sr", clk, sin, q, **kwargs)
    return clk, sin, q, sr


class TestShifting:
    def test_shifts_toward_msb(self, sim):
        _clk, sin, q, _sr = build(sim)
        sin.drive(L1)
        sim.run(5e-9)    # edge at 0 shifted in a 1
        assert q.to_int() == 1
        sin.drive(L0)
        sim.run(15e-9)   # edge at 10 shifts: q = 2
        assert q.to_int() == 2
        sim.run(35e-9)   # edges at 20, 30
        assert q.to_int() == 8

    def test_bit_falls_off_the_end(self, sim):
        _clk, sin, q, _sr = build(sim, width=2, init=2)
        sim.run(5e-9)    # 0 shifted in, MSB=1 discarded
        assert q.to_int() == 0

    def test_serial_out_mirrors_msb(self, sim):
        sim2 = Simulator()
        clk = sim2.signal("clk", init=L0)
        ClockGen(sim2, "ck", clk, period=10e-9)
        sin = sim2.signal("sin", init=L1)
        sout = sim2.signal("sout")
        q = Bus(sim2, "q", 3)
        ShiftRegister(sim2, "sr", clk, sin, q, serial_out=sout)
        sim2.run(25e-9)  # three edges: q = 111
        assert q.to_int() == 7
        assert sout.value is L1


class TestParallelLoad:
    def test_load_overrides_shift(self, sim):
        sim2 = Simulator()
        clk = sim2.signal("clk", init=L0)
        ClockGen(sim2, "ck", clk, period=10e-9)
        sin = sim2.signal("sin", init=L1)
        d = Bus(sim2, "d", 4, init=9)
        load = sim2.signal("load", init=L1)
        q = Bus(sim2, "q", 4)
        ShiftRegister(sim2, "sr", clk, sin, q, d=d, load=load)
        sim2.run(5e-9)
        assert q.to_int() == 9
        load.drive(L0)
        sim2.run(15e-9)  # shift: 9 -> (9 << 1 | 1) & 15 = 3
        assert q.to_int() == 3

    def test_d_without_load_rejected(self, sim):
        clk = sim.signal("clk2", init=L0)
        sin = sim.signal("sin2", init=L0)
        d = Bus(sim, "d", 4)
        q = Bus(sim, "q2", 4)
        with pytest.raises(ElaborationError):
            ShiftRegister(sim, "sr2", clk, sin, q, d=d)

    def test_width_mismatch_rejected(self, sim):
        clk = sim.signal("clk2", init=L0)
        sin = sim.signal("sin2", init=L0)
        d = Bus(sim, "d", 3)
        load = sim.signal("load2", init=L0)
        q = Bus(sim, "q2", 4)
        with pytest.raises(ElaborationError):
            ShiftRegister(sim, "sr2", clk, sin, q, d=d, load=load)


class TestResetAndState:
    def test_reset_clears(self, sim):
        sim2 = Simulator()
        clk = sim2.signal("clk", init=L0)
        ClockGen(sim2, "ck", clk, period=10e-9)
        sin = sim2.signal("sin", init=L1)
        rst = sim2.signal("rst", init=L0)
        q = Bus(sim2, "q", 4)
        ShiftRegister(sim2, "sr", clk, sin, q, rst=rst)
        sim2.run(25e-9)
        assert q.to_int() == 7
        rst.drive(L1)
        sim2.run(26e-9)
        assert q.to_int() == 0

    def test_state_signals(self, sim):
        _clk, _sin, q, sr = build(sim)
        assert set(sr.state_signals()) == {f"q[{i}]" for i in range(4)}

    def test_seu_shifts_out_eventually(self, sim):
        """A flipped bit is flushed after `width` clocks — the natural
        recovery of a shift register."""
        _clk, sin, q, _sr = build(sim)
        sim.run(5e-9)
        q.bits[1].deposit(L1)
        sim.run(45e-9)  # 4 more edges flush the corruption
        assert q.to_int() == 0
