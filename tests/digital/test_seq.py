"""Tests for sequential elements (DFF, TFF, latch, register)."""

import pytest

from repro.core import L0, L1, Logic, Simulator
from repro.digital import Bus, ClockGen, DFF, DLatch, Register, TFF


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def add_clock(sim, period=10e-9):
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=period)
    return clk


class TestDFF:
    def test_captures_on_rising_edge(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        DFF(sim, "ff", d, clk, q)
        sim.run(1e-9)
        assert q.value is L1

    def test_ignores_falling_edge(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L0)
        q = sim.signal("q")
        DFF(sim, "ff", d, clk, q)
        sim.run(2e-9)
        d.drive(L1)      # changes after the rising edge at t=0
        sim.run(6e-9)    # falling edge at 5 ns passed
        assert q.value is L0
        sim.run(11e-9)   # next rising edge at 10 ns
        assert q.value is L1

    def test_initial_value_u(self, sim):
        d = sim.signal("d", init=L0)
        clk = sim.signal("clkq", init=L0)
        q = sim.signal("q")
        DFF(sim, "ff", d, clk, q)
        sim.run(1e-9)
        assert q.value is Logic.U

    def test_async_reset(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L1)
        q = sim.signal("q")
        rst = sim.signal("rst", init=L0)
        DFF(sim, "ff", d, clk, q, rst=rst)
        sim.run(1e-9)
        assert q.value is L1
        rst.drive(L1, 2e-9)   # mid-cycle, no clock edge
        sim.run(4e-9)
        assert q.value is L0

    def test_state_signals(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L0)
        q = sim.signal("q")
        ff = DFF(sim, "ff", d, clk, q)
        assert ff.state_signals() == {"q": q}

    def test_seu_deposit_persists_until_next_edge(self, sim):
        clk = add_clock(sim)
        d = sim.signal("d", init=L0)
        q = sim.signal("q")
        DFF(sim, "ff", d, clk, q)
        sim.run(3e-9)
        q.deposit(L1)          # SEU
        sim.run(9e-9)          # no clock edge yet
        assert q.value is L1
        sim.run(11e-9)         # rising edge reloads d=0
        assert q.value is L0


class TestTFF:
    def test_divides_by_two(self, sim):
        clk = add_clock(sim)
        q = sim.signal("q")
        TFF(sim, "t", clk, q)
        tr = sim.probe(q)
        sim.run(45e-9)
        # input rises at 0,10,20,30,40 -> q toggles each time
        assert len(tr.edges("rise")) + len(tr.edges("fall")) == 5

    def test_undefined_stays_x(self, sim):
        clk = add_clock(sim)
        q = sim.signal("q")
        TFF(sim, "t", clk, q, init=Logic.X)
        sim.run(25e-9)
        assert q.value is Logic.X

    def test_reset(self, sim):
        clk = add_clock(sim)
        q = sim.signal("q")
        rst = sim.signal("rst", init=L0)
        TFF(sim, "t", clk, q, rst=rst)
        sim.run(12e-9)
        rst.drive(L1)
        sim.run(13e-9)
        assert q.value is L0


class TestDLatch:
    def test_transparent_when_enabled(self, sim):
        d = sim.signal("d", init=L0)
        en = sim.signal("en", init=L1)
        q = sim.signal("q")
        DLatch(sim, "lat", d, en, q)
        sim.run(1e-9)
        d.drive(L1)
        sim.run(2e-9)
        assert q.value is L1

    def test_holds_when_disabled(self, sim):
        d = sim.signal("d", init=L1)
        en = sim.signal("en", init=L1)
        q = sim.signal("q")
        DLatch(sim, "lat", d, en, q)
        sim.run(1e-9)
        en.drive(L0)
        sim.run(2e-9)
        d.drive(L0)
        sim.run(3e-9)
        assert q.value is L1


class TestRegister:
    def test_load_on_edge(self, sim):
        clk = add_clock(sim)
        d = Bus(sim, "d", 4, init=9)
        q = Bus(sim, "q", 4)
        Register(sim, "reg", d, clk, q)
        sim.run(1e-9)
        assert q.to_int() == 9

    def test_enable_gates_load(self, sim):
        clk = add_clock(sim)
        d = Bus(sim, "d", 4, init=9)
        q = Bus(sim, "q", 4)
        en = sim.signal("en", init=L0)
        Register(sim, "reg", d, clk, q, en=en, init=3)
        sim.run(11e-9)
        assert q.to_int() == 3
        en.drive(L1)
        sim.run(21e-9)
        assert q.to_int() == 9

    def test_async_reset_clears(self, sim):
        clk = add_clock(sim)
        d = Bus(sim, "d", 4, init=15)
        q = Bus(sim, "q", 4)
        rst = sim.signal("rst", init=L0)
        Register(sim, "reg", d, clk, q, rst=rst)
        sim.run(1e-9)
        assert q.to_int() == 15
        rst.drive(L1, 2e-9)
        sim.run(4e-9)
        assert q.to_int() == 0

    def test_width_mismatch_rejected(self, sim):
        from repro.core.errors import ElaborationError

        clk = add_clock(sim)
        d = Bus(sim, "d", 4)
        q = Bus(sim, "q", 3)
        with pytest.raises(ElaborationError):
            Register(sim, "reg", d, clk, q)

    def test_state_signals_per_bit(self, sim):
        clk = add_clock(sim)
        d = Bus(sim, "d", 2)
        q = Bus(sim, "q", 2)
        reg = Register(sim, "reg", d, clk, q)
        assert set(reg.state_signals()) == {"q[0]", "q[1]"}
