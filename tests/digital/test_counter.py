"""Tests for counters and clock dividers."""

import numpy as np
import pytest

from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import ElaborationError
from repro.digital import Bus, ClockDivider, ClockGen, Counter, DownCounter


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def add_clock(sim, period=10e-9):
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=period)
    return clk


class TestCounter:
    def test_counts_rising_edges(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        Counter(sim, "cnt", clk, q)
        sim.run(55e-9)  # edges at 0,10,20,30,40,50
        assert q.to_int() == 6

    def test_wraps_at_width(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 3)
        Counter(sim, "cnt", clk, q)
        sim.run(95e-9)  # 10 edges -> 10 % 8
        assert q.to_int() == 2

    def test_modulo(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        Counter(sim, "cnt", clk, q, modulo=10)
        sim.run(115e-9)  # 12 edges -> 12 % 10
        assert q.to_int() == 2

    def test_modulo_too_big_rejected(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 3)
        with pytest.raises(ElaborationError):
            Counter(sim, "cnt", clk, q, modulo=9)

    def test_enable(self, sim):
        clk = add_clock(sim)
        en = sim.signal("en", init=L0)
        q = Bus(sim, "q", 4)
        Counter(sim, "cnt", clk, q, en=en)
        sim.run(25e-9)
        assert q.to_int() == 0
        en.drive(L1)
        sim.run(55e-9)  # edges at 30,40,50
        assert q.to_int() == 3

    def test_reset(self, sim):
        clk = add_clock(sim)
        rst = sim.signal("rst", init=L0)
        q = Bus(sim, "q", 4)
        Counter(sim, "cnt", clk, q, rst=rst)
        sim.run(35e-9)
        rst.drive(L1)
        sim.run(36e-9)
        assert q.to_int() == 0

    def test_seu_corrupts_future_counts(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        Counter(sim, "cnt", clk, q)
        sim.run(25e-9)       # count = 3
        q.bits[3].deposit(L1)  # +8
        sim.run(35e-9)       # one more edge
        assert q.to_int() == 12

    def test_x_poisons_word(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 4)
        Counter(sim, "cnt", clk, q)
        sim.run(25e-9)
        q.bits[0].deposit(Logic.X)
        sim.run(35e-9)
        assert q.to_int_or_none() is None
        assert all(sig.value is Logic.X for sig in q.bits)


class TestDownCounter:
    def test_counts_down_with_wrap(self, sim):
        clk = add_clock(sim)
        q = Bus(sim, "q", 3)
        DownCounter(sim, "cnt", clk, q, init=2)
        sim.run(25e-9)  # 3 edges: 2->1->0->7
        assert q.to_int() == 7

    def test_reset_to_max(self, sim):
        clk = add_clock(sim)
        rst = sim.signal("rst", init=L0)
        q = Bus(sim, "q", 3)
        DownCounter(sim, "cnt", clk, q, rst=rst, modulo=6, init=3)
        rst.drive(L1, 12e-9)
        sim.run(13e-9)
        assert q.to_int() == 5


class TestClockDivider:
    @pytest.mark.parametrize("n", [2, 3, 4, 10])
    def test_division_ratio(self, sim, n):
        clk = add_clock(sim, period=10e-9)
        out = sim.signal("out", init=L0)
        ClockDivider(sim, "div", clk, out, n=n)
        tr = sim.probe(out)
        sim.run(10e-9 * 10 * n + 5e-9)
        rises = tr.edges("rise")
        periods = np.diff(rises)
        assert np.allclose(periods, 10e-9 * n), periods

    def test_min_ratio(self, sim):
        clk = add_clock(sim)
        out = sim.signal("out", init=L0)
        with pytest.raises(ElaborationError):
            ClockDivider(sim, "div", clk, out, n=1)

    def test_state_exposed(self, sim):
        clk = add_clock(sim)
        out = sim.signal("out", init=L0)
        div = ClockDivider(sim, "div", clk, out, n=4)
        assert set(div.state_signals()) == {"count[0]", "count[1]"}

    def test_seu_on_count_shifts_phase_only(self, sim):
        """A flip in the divider count slips the output phase but the
        frequency recovers — the divider re-wraps within one cycle."""
        clk = add_clock(sim, period=10e-9)
        out = sim.signal("out", init=L0)
        div = ClockDivider(sim, "div", clk, out, n=4)
        tr = sim.probe(out)
        sim.run(200e-9)
        div.count.bits[0].deposit(
            L1 if not div.count.bits[0].value.is_high() else L0
        )
        sim.run(400e-9)
        rises = tr.edges("rise")
        periods = np.diff(rises)
        # after settling, the period is 40 ns again
        assert periods[-1] == pytest.approx(40e-9)
        assert periods.max() <= 50e-9 + 1e-12
