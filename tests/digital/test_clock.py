"""Tests for clock and stimulus generators."""

import numpy as np
import pytest

from repro.core import L0, L1, Simulator
from repro.core.errors import ElaborationError
from repro.digital import (
    BusSequencePlayer,
    Bus,
    ClockGen,
    PulseGen,
    ResetGen,
    SequencePlayer,
)


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


class TestClockGen:
    def test_period_and_edges(self, sim):
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        tr = sim.probe(clk)
        sim.run(100e-9)
        rises = tr.edges("rise")
        np.testing.assert_allclose(np.diff(rises), 10e-9)

    def test_duty_cycle(self, sim):
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9, duty=0.3)
        tr = sim.probe(clk)
        sim.run(50e-9)
        rises = tr.edges("rise")
        falls = tr.edges("fall")
        high = falls[0] - rises[0]
        assert high == pytest.approx(3e-9)

    def test_start_delay(self, sim):
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9, start_delay=7e-9)
        tr = sim.probe(clk)
        sim.run(30e-9)
        assert tr.edges("rise")[0] == pytest.approx(7e-9)

    def test_bad_params(self, sim):
        clk = sim.signal("clk", init=L0)
        with pytest.raises(ElaborationError):
            ClockGen(sim, "ck", clk, period=0.0)
        with pytest.raises(ElaborationError):
            ClockGen(sim, "ck2", clk, period=1e-9, duty=1.5)

    def test_edge_counter(self, sim):
        clk = sim.signal("clk", init=L0)
        gen = ClockGen(sim, "ck", clk, period=10e-9)
        sim.run(45e-9)
        assert gen.edges == 5


class TestResetGen:
    def test_asserts_then_releases(self, sim):
        rst = sim.signal("rst")
        ResetGen(sim, "rg", rst, duration=20e-9)
        sim.run(1e-9)
        assert rst.value is L1
        sim.run(25e-9)
        assert rst.value is L0


class TestPulseGen:
    def test_positive_pulse(self, sim):
        out = sim.signal("p")
        PulseGen(sim, "pg", out, start=10e-9, width=5e-9)
        sim.run(5e-9)
        assert out.value is L0
        sim.run(12e-9)
        assert out.value is L1
        sim.run(20e-9)
        assert out.value is L0

    def test_negative_pulse(self, sim):
        out = sim.signal("p")
        PulseGen(sim, "pg", out, start=10e-9, width=5e-9, active=L0)
        sim.run(5e-9)
        assert out.value is L1
        sim.run(12e-9)
        assert out.value is L0

    def test_zero_width_rejected(self, sim):
        out = sim.signal("p")
        with pytest.raises(ElaborationError):
            PulseGen(sim, "pg", out, start=0.0, width=0.0)


class TestSequencePlayer:
    def test_plays_script(self, sim):
        out = sim.signal("s")
        SequencePlayer(sim, "sp", out,
                       [(0.0, "0"), (5e-9, "1"), (9e-9, "0")])
        tr = sim.probe(out)
        sim.run(20e-9)
        assert tr.edges("rise") == pytest.approx([5e-9])
        assert tr.edges("fall") == pytest.approx([9e-9])

    def test_decreasing_times_rejected(self, sim):
        out = sim.signal("s")
        with pytest.raises(ElaborationError):
            SequencePlayer(sim, "sp", out, [(5e-9, "1"), (1e-9, "0")])


class TestBusSequencePlayer:
    def test_plays_int_script(self, sim):
        bus = Bus(sim, "b", 4)
        BusSequencePlayer(sim, "bp", bus, [(0.0, 3), (10e-9, 12)])
        sim.run(5e-9)
        assert bus.to_int() == 3
        sim.run(15e-9)
        assert bus.to_int() == 12
