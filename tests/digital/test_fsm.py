"""Tests for the Moore FSM framework and SEU-induced erroneous transitions."""

import pytest

from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import ElaborationError
from repro.digital import ClockGen, MooreFSM, table_transition


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def add_clock(sim, period=10e-9):
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=period)
    return clk


def make_cycle_fsm(sim, clk, states=("A", "B", "C"), **kwargs):
    """FSM cycling A -> B -> C -> A unconditionally."""
    table = {s: states[(i + 1) % len(states)] for i, s in enumerate(states)}
    return MooreFSM(
        sim, "fsm", clk, list(states), table_transition(table), **kwargs
    )


class TestBasics:
    def test_starts_in_reset_state(self, sim):
        clk = sim.signal("clk", init=L0)
        fsm = make_cycle_fsm(sim, clk)
        sim.run(1e-9)
        assert fsm.current_state() == "A"

    def test_cycles_through_states(self, sim):
        clk = add_clock(sim)
        fsm = make_cycle_fsm(sim, clk)
        sim.run(25e-9)  # edges at 0, 10, 20
        assert fsm.current_state() == "A"
        sim.run(35e-9)
        assert fsm.current_state() == "B"

    def test_conditional_transition(self, sim):
        clk = add_clock(sim)
        go = sim.signal("go", init=L0)

        def transition(state, fsm):
            if state == "IDLE":
                return "RUN" if go.value.is_high() else "IDLE"
            return "IDLE"

        fsm = MooreFSM(sim, "fsm", clk, ["IDLE", "RUN"], transition)
        sim.run(25e-9)
        assert fsm.current_state() == "IDLE"
        go.drive(L1)
        sim.run(35e-9)
        assert fsm.current_state() == "RUN"

    def test_moore_outputs_follow_state(self, sim):
        clk = add_clock(sim)
        out = sim.signal("busy")
        table = {"A": "B", "B": "A"}
        MooreFSM(
            sim, "fsm", clk, ["A", "B"], table_transition(table),
            moore_outputs={out: {"A": L0, "B": L1}},
        )
        sim.run(5e-9)   # edge at 0: A -> B
        assert out.value is L1
        sim.run(15e-9)  # edge at 10: B -> A
        assert out.value is L0

    def test_reset_signal(self, sim):
        clk = add_clock(sim)
        rst = sim.signal("rst", init=L0)
        fsm = make_cycle_fsm(sim, clk, rst=rst)
        sim.run(15e-9)
        assert fsm.current_state() == "C"
        rst.drive(L1)
        sim.run(16e-9)
        assert fsm.current_state() == "A"


class TestValidation:
    def test_empty_states_rejected(self, sim):
        clk = sim.signal("clk", init=L0)
        with pytest.raises(ElaborationError):
            MooreFSM(sim, "fsm", clk, [], lambda s, f: s)

    def test_duplicate_states_rejected(self, sim):
        clk = sim.signal("clk", init=L0)
        with pytest.raises(ElaborationError):
            MooreFSM(sim, "fsm", clk, ["A", "A"], lambda s, f: s)

    def test_unknown_reset_state(self, sim):
        clk = sim.signal("clk", init=L0)
        with pytest.raises(ElaborationError):
            MooreFSM(sim, "fsm", clk, ["A"], lambda s, f: s, reset_state="Z")

    def test_bad_on_invalid(self, sim):
        clk = sim.signal("clk", init=L0)
        with pytest.raises(ElaborationError):
            MooreFSM(sim, "fsm", clk, ["A"], lambda s, f: s,
                     on_invalid="explode")

    def test_transition_to_unknown_state_raises(self, sim):
        clk = add_clock(sim)
        MooreFSM(sim, "fsm", clk, ["A"], lambda s, f: "NOPE")
        with pytest.raises(ElaborationError):
            sim.run(1e-9)


class TestSEUTransitions:
    def test_bitflip_causes_erroneous_transition(self, sim):
        clk = add_clock(sim)
        fsm = make_cycle_fsm(sim, clk, states=("A", "B", "C", "D"))
        sim.run(5e-9)   # now in B (code 1)
        assert fsm.current_state() == "B"
        fsm.state_bus.bits[1].deposit(L1)  # code 1 -> 3 = D
        assert fsm.current_state() == "D"
        sim.run(15e-9)  # next edge proceeds from D
        assert fsm.current_state() == "A"

    def test_invalid_code_recovers_by_reset_policy(self, sim):
        clk = add_clock(sim)
        fsm = make_cycle_fsm(sim, clk)  # 3 states on 2 bits; code 3 invalid
        sim.run(5e-9)
        fsm.state_bus.deposit_int(3)
        assert fsm.current_state() is None
        sim.run(15e-9)
        assert fsm.current_state() == "A"
        assert fsm.invalid_entries == 1

    def test_invalid_code_hold_policy(self, sim):
        clk = add_clock(sim)
        fsm = make_cycle_fsm(sim, clk, on_invalid="hold")
        sim.run(5e-9)
        fsm.state_bus.deposit_int(3)
        sim.run(25e-9)
        assert fsm.current_state() is None
        assert fsm.invalid_entries >= 2

    def test_invalid_state_drives_x_outputs(self, sim):
        clk = add_clock(sim)
        out = sim.signal("flag")
        table = {"A": "B", "B": "C", "C": "A"}
        fsm = MooreFSM(
            sim, "fsm", clk, ["A", "B", "C"], table_transition(table),
            moore_outputs={out: {"A": L0, "B": L1, "C": L1}},
        )
        sim.run(5e-9)
        fsm.state_bus.deposit_int(3)
        sim.run(6e-9)
        assert out.value is Logic.X

    def test_state_signals_exposed(self, sim):
        clk = add_clock(sim)
        fsm = make_cycle_fsm(sim, clk)
        assert set(fsm.state_signals()) == {"state[0]", "state[1]"}
