"""Tests for the accumulator CPU case study."""

import pytest

from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import ElaborationError
from repro.digital import ClockGen
from repro.digital.cpu import Accumulator8, OPCODES, assemble

PERIOD = 10e-9

COUNTDOWN = assemble([
    ("LDI", 5),        # 0: acc = 5
    ("OUT",),          # 1: emit
    ("SUB", 1),        # 2: acc -= 1
    ("JNZ", 1),        # 3: loop while acc != 0
    ("OUT",),          # 4: emit the final zero
    ("HALT",),         # 5
])


def build(program, duration=None, rst=None):
    sim = Simulator(dt=1e-9)
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD)
    rst_sig = None
    if rst:
        rst_sig = sim.signal("rst", init=L0)
    cpu = Accumulator8(sim, "cpu", clk, program, rst=rst_sig)
    outs = []
    cpu.out_valid.on_change(
        lambda sig: outs.append(cpu.out.to_int_or_none())
        if sig.value is L1 else None
    )
    if duration:
        sim.run(duration)
    return sim, cpu, outs, rst_sig


class TestAssembler:
    def test_encodes(self):
        assert assemble([("LDI", 5)]) == [0x15]
        assert assemble([("OUT",)]) == [0x60]
        assert assemble([("HALT",)]) == [0x70]

    def test_unknown_mnemonic(self):
        with pytest.raises(ElaborationError):
            assemble([("FLY", 1)])

    def test_operand_arity(self):
        with pytest.raises(ElaborationError):
            assemble([("LDI",)])
        with pytest.raises(ElaborationError):
            assemble([("OUT", 1)])

    def test_operand_range(self):
        with pytest.raises(ElaborationError):
            assemble([("LDI", 16)])

    def test_program_size_limit(self):
        with pytest.raises(ElaborationError):
            assemble([("NOP",)] * 17)


class TestExecution:
    def test_countdown_matches_reference(self):
        expected = Accumulator8.reference_run(COUNTDOWN)
        assert expected == [5, 4, 3, 2, 1, 0]
        _sim, cpu, outs, _rst = build(COUNTDOWN, duration=40 * PERIOD)
        assert outs == expected
        assert cpu.halted.value is L1

    def test_arithmetic_wraps(self):
        program = assemble([("LDI", 0), ("SUB", 1), ("OUT",), ("HALT",)])
        _sim, _cpu, outs, _rst = build(program, duration=10 * PERIOD)
        assert outs == [255]

    def test_jmp_loops_forever(self):
        program = assemble([("ADD", 1), ("JMP", 0)])
        _sim, cpu, _outs, _rst = build(program, duration=20 * PERIOD)
        assert cpu.halted.value is L0
        assert cpu.instructions_retired >= 19

    def test_halt_stops_retirement(self):
        program = assemble([("HALT",)])
        _sim, cpu, _outs, _rst = build(program, duration=20 * PERIOD)
        assert cpu.instructions_retired == 1

    def test_reset_restarts(self):
        program = assemble([("LDI", 3), ("OUT",), ("HALT",)])
        sim, cpu, outs, rst = build(program, rst=True)
        sim.run(10 * PERIOD)
        assert cpu.halted.value is L1
        rst.drive(L1)
        sim.run(10.5 * PERIOD)
        rst.drive(L0)
        sim.run(25 * PERIOD)
        assert outs == [3, 3]

    def test_empty_program_rejected(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        with pytest.raises(ElaborationError):
            Accumulator8(sim, "cpu", clk, [])

    def test_state_signals_exposed(self):
        _sim, cpu, _outs, _rst = build(COUNTDOWN)
        names = set(cpu.state_signals())
        assert "pc[0]" in names and "acc[7]" in names and "z" in names
        assert len(names) == 13


class TestSEUSignatures:
    def test_acc_flip_corrupts_data_not_flow(self):
        sim, cpu, outs, _rst = build(COUNTDOWN)
        sim.run(1.5 * PERIOD)  # after OUT of 5
        cpu.acc.bits[6].deposit(L1)  # acc: 5 -> 69
        # 69 countdown iterations x 3 cycles each: run long enough.
        sim.run(400 * PERIOD)
        # The countdown still reaches zero and halts (control intact),
        # but emits corrupted values on the way.
        assert cpu.halted.value is L1
        assert outs[0] == 5
        assert outs[1] != 4

    def test_pc_flip_derails_control_flow(self):
        sim, cpu, outs, _rst = build(COUNTDOWN)
        sim.run(1.5 * PERIOD)
        cpu.pc.bits[2].deposit(L1)  # jump somewhere else
        sim.run(80 * PERIOD)
        assert outs != [5, 4, 3, 2, 1, 0]

    def test_z_flip_misroutes_branch(self):
        program = assemble([
            ("LDI", 0),     # acc = 0, Z = 1
            ("JNZ", 3),     # not taken when healthy
            ("HALT",),      # healthy path
            ("LDI", 9),     # faulty path
            ("OUT",),
            ("HALT",),
        ])
        sim, cpu, outs, _rst = build(program)
        sim.run(0.5 * PERIOD)  # LDI executed at edge 0
        cpu.zflag.deposit(L0)  # SEU on the flag before the branch
        sim.run(20 * PERIOD)
        assert outs == [9]  # the branch went the wrong way

    def test_x_pc_recovers_via_escape(self):
        sim, cpu, _outs, _rst = build(COUNTDOWN)
        sim.run(1.5 * PERIOD)
        cpu.pc.bits[0].deposit(Logic.X)
        sim.run(3.5 * PERIOD)
        # The escape path restarted at 0 with poisoned data state.
        assert cpu.pc.to_int_or_none() is not None
