"""Tests for combinational gates."""

import itertools

import pytest

from repro.core import L0, L1, Logic, Simulator, X
from repro.core.errors import ElaborationError
from repro.digital import (
    AndGate,
    BufGate,
    Mux2,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    XorGate,
)


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def settle(sim):
    sim.run(sim.now + 1e-9)


class TestTruthTables:
    @pytest.mark.parametrize(
        "cls,table",
        [
            (AndGate, {(0, 0): L0, (0, 1): L0, (1, 0): L0, (1, 1): L1}),
            (OrGate, {(0, 0): L0, (0, 1): L1, (1, 0): L1, (1, 1): L1}),
            (XorGate, {(0, 0): L0, (0, 1): L1, (1, 0): L1, (1, 1): L0}),
            (NandGate, {(0, 0): L1, (0, 1): L1, (1, 0): L1, (1, 1): L0}),
            (NorGate, {(0, 0): L1, (0, 1): L0, (1, 0): L0, (1, 1): L0}),
        ],
    )
    def test_two_input(self, cls, table):
        for (va, vb), expected in table.items():
            sim = Simulator()
            a = sim.signal("a", init=L1 if va else L0)
            b = sim.signal("b", init=L1 if vb else L0)
            y = sim.signal("y")
            cls(sim, "g", [a, b], y)
            settle(sim)
            assert y.value is expected, f"{cls.__name__}({va},{vb})"

    def test_not(self, sim):
        a = sim.signal("a", init=L0)
        y = sim.signal("y")
        NotGate(sim, "inv", a, y)
        settle(sim)
        assert y.value is L1
        a.drive(L1)
        settle(sim)
        assert y.value is L0

    def test_buf(self, sim):
        a = sim.signal("a", init=Logic.WH)
        y = sim.signal("y")
        BufGate(sim, "buf", a, y)
        settle(sim)
        assert y.value is L1


class TestXPropagation:
    def test_and_with_controlling_zero(self, sim):
        a = sim.signal("a", init=L0)
        b = sim.signal("b", init=X)
        y = sim.signal("y")
        AndGate(sim, "g", [a, b], y)
        settle(sim)
        assert y.value is L0

    def test_and_with_x_and_one(self, sim):
        a = sim.signal("a", init=L1)
        b = sim.signal("b", init=X)
        y = sim.signal("y")
        AndGate(sim, "g", [a, b], y)
        settle(sim)
        assert y.value is X


class TestDelays:
    def test_propagation_delay(self, sim):
        a = sim.signal("a", init=L0)
        y = sim.signal("y")
        NotGate(sim, "inv", a, y, delay=3e-9)
        sim.run(4e-9)
        assert y.value is L1  # initial evaluation propagated
        a.drive(L1)
        sim.run(6e-9)
        assert y.value is L1  # change still in flight
        sim.run(8e-9)
        assert y.value is L0

    def test_glitch_passes_transport_delay(self, sim):
        a = sim.signal("a", init=L0)
        y = sim.signal("y")
        BufGate(sim, "buf", a, y, delay=5e-9)
        changes = []
        y.on_change(lambda s: changes.append((sim.now, s.value)))
        sim.run(6e-9)
        a.drive(L1)        # pulse 1 ns wide at t=6
        a.drive(L0, 1e-9)
        sim.run(20e-9)
        # Transport delay: the 1 ns pulse reappears at the output.
        assert (pytest.approx(11e-9), L1) == changes[-2]
        assert (pytest.approx(12e-9), L0) == changes[-1]


class TestStructure:
    def test_three_input_gate(self, sim):
        sigs = [sim.signal(f"i{k}", init=L1) for k in range(3)]
        y = sim.signal("y")
        AndGate(sim, "g", sigs, y)
        settle(sim)
        assert y.value is L1
        sigs[2].drive(L0)
        settle(sim)
        assert y.value is L0

    def test_no_inputs_rejected(self, sim):
        y = sim.signal("y")
        with pytest.raises(ElaborationError):
            AndGate(sim, "g", [], y)

    def test_chain_settles_through_deltas(self, sim):
        # inverter chain of length 5, all zero delay: settles within
        # the same timestamp through delta cycles.
        stages = [sim.signal(f"n{k}") for k in range(6)]
        stages[0].drive(L0)
        for k in range(5):
            NotGate(sim, f"inv{k}", stages[k], stages[k + 1])
        settle(sim)
        assert stages[5].value is L1


class TestMux:
    @pytest.mark.parametrize("sel,expected", [(L0, L1), (L1, L0)])
    def test_select(self, sim, sel, expected):
        a = sim.signal("a", init=L1)
        b = sim.signal("b", init=L0)
        s = sim.signal("s", init=sel)
        y = sim.signal("y")
        Mux2(sim, "mux", a, b, s, y)
        settle(sim)
        assert y.value is expected

    def test_x_select_with_agreeing_inputs(self, sim):
        a = sim.signal("a", init=L1)
        b = sim.signal("b", init=L1)
        s = sim.signal("s", init=X)
        y = sim.signal("y")
        Mux2(sim, "mux", a, b, s, y)
        settle(sim)
        assert y.value is L1

    def test_x_select_with_disagreeing_inputs(self, sim):
        a = sim.signal("a", init=L1)
        b = sim.signal("b", init=L0)
        s = sim.signal("s", init=X)
        y = sim.signal("y")
        Mux2(sim, "mux", a, b, s, y)
        settle(sim)
        assert y.value is X


def test_exhaustive_xor_reduction():
    """3-input XOR equals parity for every defined input combo."""
    for combo in itertools.product([0, 1], repeat=3):
        sim = Simulator()
        sigs = [sim.signal(f"i{k}", init=L1 if v else L0)
                for k, v in enumerate(combo)]
        y = sim.signal("y")
        XorGate(sim, "g", sigs, y)
        sim.run(1e-9)
        assert y.value is (L1 if sum(combo) % 2 else L0)


class TestInertialDelay:
    def _buffer(self, sim, inertial):
        a = sim.signal("a", init=L0)
        y = sim.signal("y")
        gate = BufGate(sim, "buf", a, y, delay=5e-9, inertial=inertial)
        return a, y, gate

    def test_narrow_pulse_filtered(self):
        """A pulse shorter than the gate delay never emerges —
        electrical masking of SETs."""
        sim = Simulator()
        a, y, gate = self._buffer(sim, inertial=True)
        changes = []
        y.on_change(lambda s: changes.append((sim.now, s.value)))
        sim.run(10e-9)
        a.drive(L1)          # 2 ns pulse at t=10, < 5 ns delay
        a.drive(L0, 2e-9)
        sim.run(30e-9)
        assert all(v is not L1 for _t, v in changes)
        assert gate.filtered_glitches >= 1

    def test_wide_pulse_passes(self):
        sim = Simulator()
        a, y, _gate = self._buffer(sim, inertial=True)
        tr = sim.probe(y)
        sim.run(10e-9)
        a.drive(L1)          # 8 ns pulse > 5 ns delay
        a.drive(L0, 8e-9)
        sim.run(40e-9)
        assert len(tr.edges("rise")) == 1
        assert len(tr.edges("fall")) == 1

    def test_transport_mode_passes_narrow_pulse(self):
        sim = Simulator()
        a, y, _gate = self._buffer(sim, inertial=False)
        tr = sim.probe(y)
        sim.run(10e-9)
        a.drive(L1)
        a.drive(L0, 2e-9)
        sim.run(30e-9)
        assert len(tr.edges("rise")) == 1  # glitch reproduced

    def test_steady_state_behaviour_unchanged(self):
        """Inertial gates still compute the right function."""
        sim = Simulator()
        ins = [sim.signal(f"i{k}", init=L1) for k in range(2)]
        y = sim.signal("y")
        AndGate(sim, "g", ins, y, delay=3e-9, inertial=True)
        sim.run(10e-9)
        assert y.value is L1
        ins[0].drive(L0)
        sim.run(20e-9)
        assert y.value is L0

    def test_inertial_chain_attenuates_progressively(self):
        """Through a chain of inertial gates, only pulses wider than
        every stage's delay survive."""
        sim = Simulator()
        stages = [sim.signal(f"n{k}") for k in range(4)]
        stages[0].drive(L0)
        gates = [
            BufGate(sim, f"b{k}", stages[k], stages[k + 1],
                    delay=(k + 1) * 2e-9, inertial=True)
            for k in range(3)
        ]
        tr = sim.probe(stages[3])
        sim.run(10e-9)
        stages[0].drive(L1)   # 5 ns pulse: passes 2 ns and 4 ns stages,
        stages[0].drive(L0, 5e-9)  # filtered by the 6 ns stage
        sim.run(60e-9)
        assert len(tr.edges("rise")) == 0
        assert gates[2].filtered_glitches >= 1
