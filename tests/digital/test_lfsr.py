"""Tests for LFSRs, including hypothesis checks against the software model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import L0, L1, Simulator
from repro.core.errors import ElaborationError
from repro.digital import Bus, ClockGen, LFSR, MAXIMAL_TAPS


def run_lfsr(width, steps, taps=None, init=1):
    sim = Simulator()
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9)
    q = Bus(sim, "q", width)
    LFSR(sim, "lfsr", clk, q, taps=taps, init=init)
    sim.run(steps * 10e-9 - 5e-9)
    return q.to_int()


class TestAgainstSoftwareModel:
    @pytest.mark.parametrize("width", [3, 4, 8])
    def test_matches_reference(self, width):
        steps = 12
        expected = LFSR.sequence(width, steps=steps)[-1]
        assert run_lfsr(width, steps) == expected

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from([3, 4, 5, 8]),
        st.integers(min_value=1, max_value=20),
    )
    def test_any_step_count(self, width, steps):
        expected = LFSR.sequence(width, steps=steps)[-1]
        assert run_lfsr(width, steps) == expected


class TestMaximality:
    @pytest.mark.parametrize("width", [3, 4, 5])
    def test_maximal_period(self, width):
        """Default taps visit all 2**n - 1 nonzero states."""
        seq = LFSR.sequence(width, steps=(1 << width) - 1)
        assert len(set(seq)) == (1 << width) - 1
        assert 0 not in seq
        assert seq[-1] == 1  # returns to the seed

    def test_all_zero_locks_up(self):
        seq = LFSR.sequence(4, init=0, steps=5)
        assert seq == [0] * 5


class TestConstruction:
    def test_unknown_width_needs_taps(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        q = Bus(sim, "q", 13)  # 13 not in MAXIMAL_TAPS
        with pytest.raises(ElaborationError):
            LFSR(sim, "l", clk, q)

    def test_explicit_taps(self):
        assert run_lfsr(3, 3, taps=(3, 2)) == LFSR.sequence(3, taps=(3, 2), steps=3)[-1]

    def test_tap_out_of_range(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        q = Bus(sim, "q", 4)
        with pytest.raises(ElaborationError):
            LFSR(sim, "l", clk, q, taps=(5,))

    def test_width_one_rejected(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        q = Bus(sim, "q", 1)
        with pytest.raises(ElaborationError):
            LFSR(sim, "l", clk, q)

    def test_reset_restores_seed(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        rst = sim.signal("rst", init=L0)
        q = Bus(sim, "q", 8)
        LFSR(sim, "l", clk, q, init=1, rst=rst)
        sim.run(55e-9)
        assert q.to_int() != 1
        rst.drive(L1)
        sim.run(56e-9)
        assert q.to_int() == 1

    def test_default_taps_table_covers_claimed_widths(self):
        for width, taps in MAXIMAL_TAPS.items():
            assert max(taps) == width


class TestSEUBehaviour:
    def test_flip_changes_entire_future(self):
        """One upset decorrelates the whole subsequent sequence."""
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        q = Bus(sim, "q", 8)
        LFSR(sim, "l", clk, q)
        sim.run(55e-9)
        golden_future = LFSR.sequence(8, steps=20)
        q.bits[4].deposit(L0 if q.bits[4].value.is_high() else L1)
        sim.run(195e-9)
        assert q.to_int() != golden_future[-1]
