"""Tests for word-level arithmetic blocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import ElaborationError
from repro.digital import Adder, Bus, BusMux, Comparator, ParityGen, Subtractor


def make_sim():
    return Simulator(dt=1e-9)


class TestAdder:
    def test_simple_sum(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=3)
        b = Bus(sim, "b", 4, init=5)
        s = Bus(sim, "s", 4)
        Adder(sim, "add", a, b, s)
        sim.run(1e-9)
        assert s.to_int() == 8

    def test_carry_out(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=12)
        b = Bus(sim, "b", 4, init=7)
        s = Bus(sim, "s", 4)
        cout = sim.signal("cout")
        Adder(sim, "add", a, b, s, cout=cout)
        sim.run(1e-9)
        assert s.to_int() == (12 + 7) % 16
        assert cout.value is L1

    def test_carry_in(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=1)
        b = Bus(sim, "b", 4, init=1)
        s = Bus(sim, "s", 4)
        cin = sim.signal("cin", init=L1)
        Adder(sim, "add", a, b, s, cin=cin)
        sim.run(1e-9)
        assert s.to_int() == 3

    def test_x_input_poisons_output(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=1)
        b = Bus(sim, "b", 4, init=1)
        s = Bus(sim, "s", 4)
        cout = sim.signal("cout")
        Adder(sim, "add", a, b, s, cout=cout)
        sim.run(1e-9)
        a.bits[2].deposit(Logic.X)
        sim.run(2e-9)
        assert s.to_int_or_none() is None
        assert cout.value is Logic.X

    def test_width_mismatch(self):
        sim = make_sim()
        a = Bus(sim, "a", 4)
        b = Bus(sim, "b", 3)
        s = Bus(sim, "s", 4)
        with pytest.raises(ElaborationError):
            Adder(sim, "add", a, b, s)

    def test_reacts_to_input_change(self):
        sim = make_sim()
        a = Bus(sim, "a", 8, init=10)
        b = Bus(sim, "b", 8, init=20)
        s = Bus(sim, "s", 8)
        Adder(sim, "add", a, b, s)
        sim.run(1e-9)
        a.drive_int(100)
        sim.run(2e-9)
        assert s.to_int() == 120

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.booleans())
    def test_matches_integer_addition(self, va, vb, carry):
        sim = make_sim()
        a = Bus(sim, "a", 8, init=va)
        b = Bus(sim, "b", 8, init=vb)
        s = Bus(sim, "s", 8)
        cin = sim.signal("cin", init=L1 if carry else L0)
        cout = sim.signal("cout")
        Adder(sim, "add", a, b, s, cin=cin, cout=cout)
        sim.run(1e-9)
        total = va + vb + int(carry)
        assert s.to_int() == total % 256
        assert cout.value is (L1 if total >= 256 else L0)


class TestSubtractor:
    def test_difference(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=9)
        b = Bus(sim, "b", 4, init=3)
        d = Bus(sim, "d", 4)
        Subtractor(sim, "sub", a, b, d)
        sim.run(1e-9)
        assert d.to_int() == 6

    def test_borrow_and_wrap(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=3)
        b = Bus(sim, "b", 4, init=9)
        d = Bus(sim, "d", 4)
        borrow = sim.signal("borrow")
        Subtractor(sim, "sub", a, b, d, borrow=borrow)
        sim.run(1e-9)
        assert d.to_int() == (3 - 9) % 16
        assert borrow.value is L1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matches_integer_subtraction(self, va, vb):
        sim = make_sim()
        a = Bus(sim, "a", 8, init=va)
        b = Bus(sim, "b", 8, init=vb)
        d = Bus(sim, "d", 8)
        Subtractor(sim, "sub", a, b, d)
        sim.run(1e-9)
        assert d.to_int() == (va - vb) % 256


class TestComparator:
    @pytest.mark.parametrize("va,vb,eq,lt,gt", [
        (5, 5, L1, L0, L0),
        (3, 7, L0, L1, L0),
        (9, 2, L0, L0, L1),
    ])
    def test_flags(self, va, vb, eq, lt, gt):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=va)
        b = Bus(sim, "b", 4, init=vb)
        feq = sim.signal("eq")
        flt = sim.signal("lt")
        fgt = sim.signal("gt")
        Comparator(sim, "cmp", a, b, eq=feq, lt=flt, gt=fgt)
        sim.run(1e-9)
        assert (feq.value, flt.value, fgt.value) == (eq, lt, gt)

    def test_needs_at_least_one_flag(self):
        sim = make_sim()
        a = Bus(sim, "a", 4)
        b = Bus(sim, "b", 4)
        with pytest.raises(ElaborationError):
            Comparator(sim, "cmp", a, b)

    def test_x_input_makes_flags_x(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=3)
        b = Bus(sim, "b", 4, init=3)
        feq = sim.signal("eq")
        Comparator(sim, "cmp", a, b, eq=feq)
        sim.run(1e-9)
        b.bits[0].deposit(Logic.X)
        sim.run(2e-9)
        assert feq.value is Logic.X


class TestBusMux:
    def test_select(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=3)
        b = Bus(sim, "b", 4, init=12)
        sel = sim.signal("sel", init=L0)
        y = Bus(sim, "y", 4)
        BusMux(sim, "mux", a, b, sel, y)
        sim.run(1e-9)
        assert y.to_int() == 3
        sel.drive(L1)
        sim.run(2e-9)
        assert y.to_int() == 12

    def test_x_select_bitwise_agreement(self):
        sim = make_sim()
        a = Bus(sim, "a", 4, init=0b1010)
        b = Bus(sim, "b", 4, init=0b1001)
        sel = sim.signal("sel", init=Logic.X)
        y = Bus(sim, "y", 4)
        BusMux(sim, "mux", a, b, sel, y)
        sim.run(1e-9)
        # bits 3 (1==1) and... a=1010, b=1001: bit0 0/1 X, bit1 1/0 X,
        # bit2 0/0 -> 0, bit3 1/1 -> 1
        assert y.bits[2].value is L0
        assert y.bits[3].value is L1
        assert y.bits[0].value is Logic.X
        assert y.bits[1].value is Logic.X


class TestParity:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255))
    def test_matches_popcount(self, value):
        sim = make_sim()
        a = Bus(sim, "a", 8, init=value)
        p = sim.signal("p")
        ParityGen(sim, "par", a, p)
        sim.run(1e-9)
        assert p.value is (L1 if bin(value).count("1") % 2 else L0)
