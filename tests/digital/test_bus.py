"""Tests for buses."""

import pytest
from hypothesis import given, strategies as st

from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import LogicValueError


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def make_bus(sim, width=4, init=0):
    from repro.digital import Bus

    return Bus(sim, "b", width, init=init)


class TestConstruction:
    def test_bit_names(self, sim):
        bus = make_bus(sim)
        assert bus.bits[0].name == "b[0]"
        assert bus.bits[3].name == "b[3]"

    def test_int_init(self, sim):
        bus = make_bus(sim, init=5)
        assert bus.to_int() == 5

    def test_level_init(self, sim):
        from repro.digital import Bus

        bus = Bus(sim, "u", 3, init=Logic.U)
        assert bus.to_int_or_none() is None

    def test_list_init(self, sim):
        from repro.digital import Bus

        bus = Bus(sim, "l", 3, init=[L1, L0, L1])
        assert bus.to_int() == 5

    def test_list_init_wrong_length(self, sim):
        from repro.digital import Bus

        with pytest.raises(LogicValueError):
            Bus(sim, "l", 3, init=[L1, L0])

    def test_zero_width_rejected(self, sim):
        from repro.digital import Bus

        with pytest.raises(LogicValueError):
            Bus(sim, "z", 0)


class TestValues:
    def test_str_msb_first(self, sim):
        bus = make_bus(sim, init=5)
        assert str(bus) == "0101"

    def test_is_defined(self, sim):
        bus = make_bus(sim, init=5)
        assert bus.is_defined()
        bus.bits[1].deposit(Logic.X)
        assert not bus.is_defined()
        assert bus.to_int_or_none() is None

    def test_to_int_undefined_raises(self, sim):
        from repro.digital import Bus

        bus = Bus(sim, "u", 2, init=Logic.U)
        with pytest.raises(LogicValueError):
            bus.to_int()

    def test_iteration_and_indexing(self, sim):
        bus = make_bus(sim)
        assert len(list(bus)) == 4
        assert bus[0] is bus.bits[0]


class TestDriving:
    def test_drive_int(self, sim):
        bus = make_bus(sim)
        bus.drive_int(9, delay=1e-9)
        sim.run(2e-9)
        assert bus.to_int() == 9

    def test_drive_levels(self, sim):
        bus = make_bus(sim)
        bus.drive_levels([L1, L1, L0, L0])
        sim.run(1e-9)
        assert bus.to_int() == 3

    def test_drive_levels_wrong_length(self, sim):
        bus = make_bus(sim)
        with pytest.raises(LogicValueError):
            bus.drive_levels([L1])

    def test_drive_all(self, sim):
        bus = make_bus(sim)
        bus.drive_all(L1)
        sim.run(1e-9)
        assert bus.to_int() == 15

    def test_deposit_int(self, sim):
        bus = make_bus(sim, init=0)
        bus.deposit_int(12)
        assert bus.to_int() == 12

    def test_state_map_keys(self, sim):
        bus = make_bus(sim)
        keys = sorted(bus.state_map().keys())
        assert keys == ["q[0]", "q[1]", "q[2]", "q[3]"]


@given(st.integers(min_value=0, max_value=255))
def test_drive_roundtrip(value):
    from repro.digital import Bus

    sim = Simulator()
    bus = Bus(sim, "b", 8)
    bus.drive_int(value)
    sim.run(1e-9)
    assert bus.to_int() == value
