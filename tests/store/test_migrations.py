"""Schema migration chain: v1 -> v2 -> v3 -> v4 fixture databases.

Each fixture is a database created with the *historical* DDL of one
schema version (copied verbatim from the store's git history) and
populated with real campaign rows limited to that version's columns.
Opening it with today's :class:`CampaignStore` must migrate it in
place — additive columns and tables only — and a campaign recorded
under the old schema must then **resume** and complete exactly like
one recorded today.
"""

import json
import sqlite3
from datetime import datetime, timezone

import pytest

from repro.campaign import run_campaign
from repro.store import SCHEMA_VERSION, CampaignStore
from repro.store.serialize import (
    fault_key,
    fault_to_dict,
    faults_digest,
    spec_to_dict,
)

from .test_resume import factory, make_spec

# Historical DDL, verbatim from the store's git history.  v1 shipped
# with the first persistent store; v2 added retry/quarantine columns;
# v3 added post-mortems and the workers table (journal columns arrived
# by migration); v4 is today's (shard_id + shards table).

_RUNS_V1_COLUMNS = """
    campaign_id         INTEGER NOT NULL REFERENCES campaigns(id),
    fault_idx           INTEGER NOT NULL,
    status              TEXT NOT NULL,
    label               TEXT,
    classification_json TEXT,
    comparisons_json    TEXT,
    metrics_json        TEXT,
    error               TEXT,
    wall_s              REAL,
    kernel_events       INTEGER,
"""

_COMMON = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE campaigns (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    name           TEXT UNIQUE NOT NULL,
    spec_json      TEXT NOT NULL,
    fault_digest   TEXT NOT NULL,
    golden_json    TEXT,
    execution_json TEXT,
    status         TEXT NOT NULL DEFAULT 'running',
    created_at     TEXT NOT NULL,
    updated_at     TEXT NOT NULL
);
CREATE TABLE faults (
    campaign_id     INTEGER NOT NULL REFERENCES campaigns(id),
    idx             INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    key             TEXT NOT NULL,
    description     TEXT NOT NULL,
    descriptor_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE INDEX runs_by_label ON runs (campaign_id, label);
"""

_WORKERS_V3 = """
CREATE TABLE workers (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    pid         INTEGER NOT NULL,
    state       TEXT NOT NULL,
    fault_idx   INTEGER,
    phase       TEXT,
    exitcode    INTEGER,
    spawned_at  TEXT NOT NULL,
    updated_at  TEXT NOT NULL,
    PRIMARY KEY (campaign_id, pid)
);
"""

SCHEMAS = {
    1: "CREATE TABLE runs (" + _RUNS_V1_COLUMNS + """
    completed_at        TEXT NOT NULL,
    PRIMARY KEY (campaign_id, fault_idx)
);
""" + _COMMON,
    2: "CREATE TABLE runs (" + _RUNS_V1_COLUMNS + """
    attempts            INTEGER,
    quarantined         INTEGER NOT NULL DEFAULT 0,
    completed_at        TEXT NOT NULL,
    PRIMARY KEY (campaign_id, fault_idx)
);
""" + _COMMON,
    3: "CREATE TABLE runs (" + _RUNS_V1_COLUMNS + """
    attempts            INTEGER,
    quarantined         INTEGER NOT NULL DEFAULT 0,
    postmortem          TEXT,
    completed_at        TEXT NOT NULL,
    PRIMARY KEY (campaign_id, fault_idx)
);
""" + _COMMON + _WORKERS_V3,
}

#: Columns a run row carried at each historical version.
ROW_COLUMNS = {
    1: ("status", "label", "classification_json", "comparisons_json",
        "metrics_json", "error", "wall_s", "kernel_events"),
    2: ("status", "label", "classification_json", "comparisons_json",
        "metrics_json", "error", "wall_s", "kernel_events", "attempts",
        "quarantined"),
    3: ("status", "label", "classification_json", "comparisons_json",
        "metrics_json", "error", "wall_s", "kernel_events", "attempts",
        "quarantined", "postmortem"),
}


@pytest.fixture(scope="module")
def reference_rows(tmp_path_factory):
    """Real run rows from a complete serial campaign (source data)."""
    path = tmp_path_factory.mktemp("ref") / "reference.db"
    spec = make_spec()
    with CampaignStore(path) as store:
        run_campaign(factory, spec, store=store)
        campaign_id = store.campaign_id(spec.name)
        rows = [
            dict(row)
            for row in store._conn.execute(
                "SELECT * FROM runs WHERE campaign_id = ?"
                " ORDER BY fault_idx", (campaign_id,),
            )
        ]
    return rows


def build_fixture(path, version, spec, rows, completed):
    """A database exactly as schema ``version`` would have left it,
    holding ``spec`` with its first ``completed`` runs recorded."""
    conn = sqlite3.connect(str(path))
    conn.executescript(SCHEMAS[version])
    now = datetime.now(timezone.utc).isoformat()
    conn.execute(
        "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
        (str(version),),
    )
    cursor = conn.execute(
        "INSERT INTO campaigns (name, spec_json, fault_digest, status,"
        " created_at, updated_at) VALUES (?, ?, ?, 'running', ?, ?)",
        (spec.name, json.dumps(spec_to_dict(spec)),
         faults_digest(spec.faults), now, now),
    )
    campaign_id = cursor.lastrowid
    for idx, fault in enumerate(spec.faults):
        descriptor = fault_to_dict(fault)
        conn.execute(
            "INSERT INTO faults (campaign_id, idx, kind, key, description,"
            " descriptor_json) VALUES (?, ?, ?, ?, ?, ?)",
            (campaign_id, idx, descriptor["kind"], fault_key(fault),
             fault.describe(), json.dumps(descriptor)),
        )
    columns = ROW_COLUMNS[version]
    for row in rows[:completed]:
        conn.execute(
            "INSERT INTO runs (campaign_id, fault_idx, completed_at, "
            + ", ".join(columns) + ") VALUES (?, ?, ?, "
            + ", ".join("?" * len(columns)) + ")",
            (campaign_id, row["fault_idx"], now)
            + tuple(row[name] for name in columns),
        )
    conn.commit()
    conn.close()


@pytest.mark.parametrize("version", [1, 2, 3])
def test_migration_upgrades_schema_in_place(tmp_path, version,
                                            reference_rows):
    spec = make_spec()
    path = tmp_path / f"v{version}.db"
    build_fixture(path, version, spec, reference_rows, completed=5)
    with CampaignStore(path) as store:
        meta = store._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        assert meta["value"] == str(SCHEMA_VERSION)
        run_columns = {
            row["name"]
            for row in store._conn.execute("PRAGMA table_info(runs)")
        }
        assert {"attempts", "quarantined", "postmortem",
                "shard_id"} <= run_columns
        campaign_columns = {
            row["name"]
            for row in store._conn.execute("PRAGMA table_info(campaigns)")
        }
        assert {"journal_path", "journal_offset"} <= campaign_columns
        tables = {
            row["name"]
            for row in store._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert {"workers", "shards"} <= tables
        # The old rows survived untouched.
        campaign_id = store.campaign_id(spec.name)
        assert len(store.run_rows(campaign_id)) == 5


@pytest.mark.parametrize("version", [1, 2, 3])
def test_resume_completes_migrated_campaign(tmp_path, version,
                                            reference_rows):
    spec = make_spec()
    path = tmp_path / f"v{version}.db"
    build_fixture(path, version, spec, reference_rows, completed=5)
    with CampaignStore(path) as store:
        result = run_campaign(
            factory, spec, store=store, resume=True, on_error="collect"
        )
        assert len(result.runs) == len(spec.faults)
        assert not result.errors
        # Only the remaining faults re-ran.
        assert result.execution["completed"] == len(spec.faults) - 5
        assert result.execution["skipped"] == 5
    # The migrated, resumed store is fully queryable and row-complete.
    with CampaignStore(path) as store:
        campaign_id = store.campaign_id(spec.name)
        rows = store.run_rows(campaign_id)
        assert [row["idx"] for row in rows] == list(range(len(spec.faults)))
        assert all(row["status"] == "ok" for row in rows)


def test_migrated_labels_match_fresh_run(tmp_path, reference_rows):
    """Classifications stored under v1 equal today's, post-resume."""
    spec = make_spec()
    path = tmp_path / "v1_labels.db"
    build_fixture(path, 1, spec, reference_rows, completed=5)
    with CampaignStore(path) as store:
        run_campaign(factory, spec, store=store, resume=True)
        campaign_id = store.campaign_id(spec.name)
        labels = [row["label"] for row in store.run_rows(campaign_id)]
    assert labels == [row["label"] for row in reference_rows]
