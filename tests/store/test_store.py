"""CampaignStore unit behavior against an in-memory database."""

import pytest

from repro.campaign import CampaignSpec, Classification, TraceComparison
from repro.campaign.results import FaultResult
from repro.faults import BitFlip
from repro.store import CampaignStore, StoreError


def make_spec(name="unit", n=4):
    faults = [BitFlip(f"top/ff.q[{i}]", 10e-9 * (i + 1)) for i in range(n)]
    return CampaignSpec(name=name, faults=faults, t_end=1e-6,
                        outputs=["out"])


def make_result(fault, label="silent"):
    return FaultResult(
        fault=fault,
        classification=Classification(
            label=label,
            first_output_divergence=None if label == "silent" else 42e-9,
            output_mismatch_time=0.0 if label == "silent" else 5e-9,
            diverged_outputs=[] if label == "silent" else ["out"],
        ),
        comparisons={
            "out": TraceComparison(
                name="out",
                match=label == "silent",
                first_divergence=None if label == "silent" else 42e-9,
                last_divergence=None if label == "silent" else 47e-9,
                mismatch_time=0.0 if label == "silent" else 5e-9,
                max_deviation=0.0 if label == "silent" else 1.0,
                final_match=True,
            )
        },
        metrics={"events": 123},
    )


@pytest.fixture
def store():
    with CampaignStore(":memory:") as s:
        yield s


class TestOpenCampaign:
    def test_reopen_without_resume_refused(self, store):
        spec = make_spec()
        store.open_campaign(spec)
        with pytest.raises(StoreError, match="already exists"):
            store.open_campaign(spec)

    def test_resume_reattaches_to_same_id(self, store):
        spec = make_spec()
        first = store.open_campaign(spec)
        again = store.open_campaign(make_spec(), resume=True)
        assert again == first

    def test_resume_with_different_faults_refused(self, store):
        store.open_campaign(make_spec(n=4))
        with pytest.raises(StoreError, match="different fault list"):
            store.open_campaign(make_spec(n=5), resume=True)

    def test_two_campaigns_coexist(self, store):
        a = store.open_campaign(make_spec("a"))
        b = store.open_campaign(make_spec("b"))
        assert a != b
        with pytest.raises(StoreError, match="several campaigns"):
            store.campaign_id()
        assert store.campaign_id("b") == b

    def test_unknown_name_rejected(self, store):
        store.open_campaign(make_spec("a"))
        with pytest.raises(StoreError, match="no campaign named"):
            store.campaign_id("zz")


class TestRunRecording:
    def test_pending_shrinks_as_runs_complete(self, store):
        spec = make_spec(n=3)
        campaign_id = store.open_campaign(spec)
        assert store.pending_indices(campaign_id, 3) == [0, 1, 2]
        store.record_run(campaign_id, 1, make_result(spec.faults[1]),
                         wall_s=0.1, kernel_events=500)
        assert store.pending_indices(campaign_id, 3) == [0, 2]
        assert store.completed_indices(campaign_id) == {1}

    def test_errored_runs_stay_pending(self, store):
        spec = make_spec(n=2)
        campaign_id = store.open_campaign(spec)
        store.record_error(campaign_id, 0, "InjectionError: no such state")
        assert store.pending_indices(campaign_id, 2) == [0, 1]
        summary = store.status()[0]
        assert summary["errors"] == 1

    def test_record_run_overwrites_error(self, store):
        spec = make_spec(n=1)
        campaign_id = store.open_campaign(spec)
        store.record_error(campaign_id, 0, "boom")
        store.record_run(campaign_id, 0, make_result(spec.faults[0]))
        assert store.pending_indices(campaign_id, 1) == []
        assert store.status()[0]["errors"] == 0

    def test_load_runs_rebuilds_fault_results(self, store):
        spec = make_spec(n=2)
        campaign_id = store.open_campaign(spec)
        original = make_result(spec.faults[1], label="failure")
        store.record_run(campaign_id, 1, original)
        loaded = store.load_runs(campaign_id, spec.faults)
        assert set(loaded) == {1}
        rebuilt = loaded[1]
        assert rebuilt.fault is spec.faults[1]
        assert rebuilt.label == "failure"
        assert rebuilt.classification == original.classification
        assert rebuilt.comparisons["out"] == original.comparisons["out"]
        assert rebuilt.metrics == {"events": 123}

    def test_class_counts_from_sql(self, store):
        spec = make_spec(n=3)
        campaign_id = store.open_campaign(spec)
        store.record_run(campaign_id, 0, make_result(spec.faults[0]))
        store.record_run(campaign_id, 1, make_result(spec.faults[1],
                                                     label="failure"))
        store.record_run(campaign_id, 2, make_result(spec.faults[2]))
        assert store.class_counts() == {"failure": 1, "silent": 2}


class TestGoldenCheck:
    def test_first_call_stores_then_verifies(self, store, tmp_path):
        from repro.core.trace import Trace

        trace = Trace("out")
        trace.append(0.0, 0.0)
        trace.append(1e-9, 1.0)
        campaign_id = store.open_campaign(make_spec())
        store.check_golden(campaign_id, {"out": trace})
        store.check_golden(campaign_id, {"out": trace})  # identical: fine
        changed = Trace("out")
        changed.append(0.0, 0.0)
        changed.append(1e-9, 2.0)
        with pytest.raises(StoreError, match="golden run differs"):
            store.check_golden(campaign_id, {"out": changed})


class TestPersistence:
    def test_file_store_survives_reopen(self, tmp_path):
        path = tmp_path / "campaign.db"
        spec = make_spec(n=2)
        with CampaignStore(path) as store:
            campaign_id = store.open_campaign(spec)
            store.record_run(campaign_id, 0, make_result(spec.faults[0]))
            store.record_execution(campaign_id, {"mode": "cold"},
                                   status="interrupted")
        with CampaignStore(path) as store:
            summary = store.status()[0]
            assert summary["completed"] == 1
            assert summary["total"] == 2
            assert summary["status"] == "interrupted"
            result = store.load_result()
            assert len(result) == 1
            assert result.execution == {"mode": "cold"}
            assert result.spec.faults[0].describe() == \
                spec.faults[0].describe()
