"""Fault/spec JSON round-trips and content digests."""

import json

import pytest

from repro.campaign import CampaignSpec
from repro.faults import (
    BitFlip,
    DoubleExponentialPulse,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
    TrapezoidPulse,
)
from repro.injection import CurrentInjection
from repro.store import (
    SerializationError,
    fault_from_dict,
    fault_key,
    fault_to_dict,
    faults_digest,
    spec_from_dict,
    spec_to_dict,
)

ALL_FAULTS = [
    BitFlip("top/ff.q", 35e-9),
    MultipleBitUpset(["top/reg.q[0]", "top/reg.q[1]"], 55e-9),
    SETPulse("top/u1.y", 42e-9, 2e-9),
    StuckAt("top/u2.a", "1", t_start=10e-9, t_end=90e-9),
    CurrentInjection(TrapezoidPulse(1e-3, 10e-12, 20e-12, 50e-12),
                     "vout", 3e-7),
    CurrentInjection(DoubleExponentialPulse(2e-3, 5e-12, 50e-12),
                     "vdd", 4e-7),
    ParametricFault("top/r1", "r", factor=1.5, t_start=1e-7),
]


class TestFaultRoundTrip:
    @pytest.mark.parametrize(
        "fault", ALL_FAULTS, ids=lambda f: type(f).__name__
    )
    def test_round_trip_preserves_descriptor_and_describe(self, fault):
        descriptor = fault_to_dict(fault)
        # Through an actual JSON encode/decode, as the store does it.
        rebuilt = fault_from_dict(json.loads(json.dumps(descriptor)))
        assert fault_to_dict(rebuilt) == descriptor
        assert rebuilt.describe() == fault.describe()
        assert fault_key(rebuilt) == fault_key(fault)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            fault_from_dict({"kind": "alpha-strike"})

    def test_missing_key_reported(self):
        with pytest.raises(SerializationError, match="missing key"):
            fault_from_dict({"kind": "bitflip", "target": "x"})

    def test_unserializable_fault_rejected(self):
        with pytest.raises(SerializationError):
            fault_to_dict(object())


class TestDigests:
    def test_key_is_content_addressed(self):
        assert fault_key(BitFlip("a", 1e-9)) == fault_key(BitFlip("a", 1e-9))
        assert fault_key(BitFlip("a", 1e-9)) != fault_key(BitFlip("a", 2e-9))

    def test_list_digest_is_order_sensitive(self):
        a, b = BitFlip("a", 1e-9), BitFlip("b", 1e-9)
        assert faults_digest([a, b]) != faults_digest([b, a])


class TestSpecRoundTrip:
    def test_full_spec_round_trip(self):
        spec = CampaignSpec(
            name="rt",
            faults=ALL_FAULTS,
            t_end=1e-6,
            outputs=["vout"],
            tolerances={"vout": 0.05},
            analog_tolerance=0.02,
            compare_from=1e-8,
            metadata={"note": "round-trip"},
        )
        rebuilt = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert spec_to_dict(rebuilt) == spec_to_dict(spec)
        assert rebuilt.name == "rt"
        assert [f.describe() for f in rebuilt.faults] == [
            f.describe() for f in spec.faults
        ]
