"""The acceptance test: interrupt a campaign, resume it, get identical
results — in serial and fork-parallel modes, cold and warm."""

import multiprocessing
import sys

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    exhaustive_bitflips,
    run_campaign,
    to_csv,
)
from repro.core import Component, L0, Simulator
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.store import CampaignStore

needs_fork = pytest.mark.skipif(
    sys.platform == "win32"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel campaigns need the fork start method",
)


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
    }
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [33e-9, 55e-9, 77e-9]
    )
    return CampaignSpec(name="par", faults=faults, t_end=300e-9,
                        outputs=["parity"])


class Interrupted(CampaignStore):
    """A store that kills the campaign after N successful run commits."""

    def __init__(self, path, after):
        super().__init__(path)
        self.after = after
        self.commits = 0

    def record_run(self, *args, **kwargs):
        """Commit, then simulate a mid-campaign crash after ``after``."""
        super().record_run(*args, **kwargs)
        self.commits += 1
        if self.commits >= self.after:
            raise KeyboardInterrupt


def interrupt_then_resume(tmp_path, after=3, **run_kwargs):
    """Kill a store-backed campaign after ``after`` commits; resume it."""
    path = tmp_path / "campaign.db"
    flaky = Interrupted(path, after=after)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(factory, make_spec(), store=flaky, **run_kwargs)
    flaky.close()
    with CampaignStore(path) as store:
        assert len(store.completed_indices(store.campaign_id())) == after
        resumed = run_campaign(
            factory, make_spec(), store=store, resume=True, **run_kwargs
        )
    return resumed, path


class TestSerialResume:
    def test_resumed_equals_uninterrupted(self, tmp_path):
        reference = run_campaign(factory, make_spec())
        resumed, _path = interrupt_then_resume(tmp_path)
        assert to_csv(resumed) == to_csv(reference)

    def test_execution_records_the_split(self, tmp_path):
        resumed, _path = interrupt_then_resume(tmp_path, after=3)
        assert resumed.execution["skipped"] == 3
        assert resumed.execution["completed"] == 12 - 3
        assert resumed.execution["errors"] == 0

    def test_loaded_result_equals_uninterrupted(self, tmp_path):
        reference = run_campaign(factory, make_spec())
        _resumed, path = interrupt_then_resume(tmp_path)
        with CampaignStore(path) as store:
            loaded = store.load_result()
        assert to_csv(loaded) == to_csv(reference)
        summary_rows = CampaignStore(path).status()
        assert summary_rows[0]["completed"] == 12
        assert summary_rows[0]["status"] == "complete"

    def test_warm_resume_equals_uninterrupted(self, tmp_path):
        reference = run_campaign(factory, make_spec())
        resumed, _path = interrupt_then_resume(tmp_path, warm_start=True)
        assert to_csv(resumed) == to_csv(reference)
        assert "warm_hits" in resumed.execution

    def test_resume_of_complete_campaign_runs_nothing(self, tmp_path):
        path = tmp_path / "campaign.db"
        with CampaignStore(path) as store:
            reference = run_campaign(factory, make_spec(), store=store)
        with CampaignStore(path) as store:
            again = run_campaign(factory, make_spec(), store=store,
                                 resume=True)
        assert again.execution["completed"] == 0
        assert again.execution["skipped"] == 12
        assert to_csv(again) == to_csv(reference)


@needs_fork
class TestParallelResume:
    def test_parallel_resumed_equals_uninterrupted(self, tmp_path):
        reference = run_campaign(factory, make_spec())
        resumed, _path = interrupt_then_resume(tmp_path, workers=3)
        assert to_csv(resumed) == to_csv(reference)

    def test_serial_interrupt_parallel_resume(self, tmp_path):
        """The store doesn't care which mode wrote which half."""
        reference = run_campaign(factory, make_spec())
        path = tmp_path / "campaign.db"
        flaky = Interrupted(path, after=5)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(factory, make_spec(), store=flaky)
        flaky.close()
        with CampaignStore(path) as store:
            resumed = run_campaign(factory, make_spec(), store=store,
                                   resume=True, workers=4)
        assert to_csv(resumed) == to_csv(reference)
