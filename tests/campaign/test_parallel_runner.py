"""Tests for the parallel (fork-based) campaign runner."""

import multiprocessing
import sys

import pytest

from repro.campaign import CampaignSpec, Design, exhaustive_bitflips, run_campaign
from repro.core import Component, L0, Simulator
from repro.digital import Bus, ClockGen, Counter, ParityGen

needs_fork = pytest.mark.skipif(
    sys.platform == "win32"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel campaigns need the fork start method",
)


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
    }
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [33e-9, 55e-9, 77e-9]
    )
    return CampaignSpec(name="par", faults=faults, t_end=300e-9,
                        outputs=["parity"])


@needs_fork
class TestParallelRunner:
    def test_matches_serial_results(self):
        serial = run_campaign(factory, make_spec())
        parallel = run_campaign(factory, make_spec(), workers=4)
        assert len(parallel) == len(serial)
        for s_run, p_run in zip(serial.runs, parallel.runs):
            assert s_run.fault == p_run.fault
            assert s_run.label == p_run.label
            s_cmp = s_run.comparisons["parity"]
            p_cmp = p_run.comparisons["parity"]
            assert s_cmp.first_divergence == p_cmp.first_divergence

    def test_metric_hooks_run_in_workers(self):
        def hook(design, fault):
            return {"events": design.sim.events_executed}

        result = run_campaign(factory, make_spec(), workers=2,
                              metric_hooks=[hook])
        assert all(r.metrics["events"] > 0 for r in result)

    def test_order_preserved(self):
        result = run_campaign(factory, make_spec(), workers=3)
        expected = [f.target for f in make_spec().faults]
        assert [r.fault.target for r in result] == expected

    def test_workers_one_falls_back_to_serial(self):
        result = run_campaign(factory, make_spec(), workers=1)
        assert len(result) == 12

    def test_closure_factory_supported(self):
        """Fork inheritance means even closures work as factories."""
        period = 10e-9

        def closure_factory():
            sim = Simulator(dt=1e-9)
            top = Component(sim, "top")
            clk = sim.signal("clk", init=L0)
            ClockGen(sim, "ck", clk, period=period, parent=top)
            q = Bus(sim, "cnt", 4)
            Counter(sim, "counter", clk, q, parent=top)
            par = sim.signal("parity")
            ParityGen(sim, "par", q, par, parent=top)
            return Design(sim=sim, root=top,
                          probes={"parity": sim.probe(par)})

        result = run_campaign(closure_factory, make_spec(), workers=2)
        assert len(result) == 12
