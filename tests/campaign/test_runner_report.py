"""End-to-end tests for the campaign runner, reports, stats, propagation."""

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    FAILURE,
    SILENT,
    build_propagation_graph,
    classification_summary,
    clopper_pearson_interval,
    estimate_error_rate,
    exhaustive_bitflips,
    format_propagation_report,
    full_report,
    per_target_table,
    required_sample_size,
    run_campaign,
    to_csv,
    wilson_interval,
)
from repro.core import Component, L0, Simulator
from repro.core.errors import CampaignError
from repro.digital import Bus, ClockGen, Counter, ParityGen


def counter_factory():
    """4-bit counter; parity of the count is the system output."""
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "pargen", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
        "cnt[3]": sim.probe(q.bits[3]),
    }
    return Design(sim=sim, root=top, probes=probes)


def small_spec(faults=None, **kwargs):
    if faults is None:
        faults = exhaustive_bitflips(["top/counter.q[0]"], [33e-9])
    defaults = dict(name="test", faults=faults, t_end=200e-9,
                    outputs=["parity"])
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestSpecValidation:
    def test_valid_spec(self):
        spec = small_spec()
        assert spec.n_faults == 1
        assert "test" in spec.describe()

    def test_no_faults_rejected(self):
        with pytest.raises(CampaignError):
            small_spec(faults=[])

    def test_no_outputs_rejected(self):
        with pytest.raises(CampaignError):
            small_spec(outputs=[])

    def test_bad_t_end(self):
        with pytest.raises(CampaignError):
            small_spec(t_end=0.0)

    def test_compare_from_inside_window(self):
        with pytest.raises(CampaignError):
            small_spec(compare_from=300e-9)

    def test_engineering_t_end(self):
        spec = small_spec(t_end="200ns")
        assert spec.t_end == pytest.approx(200e-9)


class TestRunner:
    def test_counter_bitflip_campaign(self):
        faults = exhaustive_bitflips(
            ["top/counter.q[0]", "top/counter.q[3]"], [33e-9, 55e-9]
        )
        result = run_campaign(counter_factory, small_spec(faults=faults))
        assert len(result) == 4
        # Every counter flip permanently offsets the count; parity then
        # differs on every subsequent odd count -> all are errors.
        assert result.error_rate() == 1.0

    def test_progress_callback(self):
        seen = []
        run_campaign(
            counter_factory,
            small_spec(),
            progress=lambda i, n, f: seen.append((i, n)),
        )
        assert seen == [(0, 1)]

    def test_metric_hook(self):
        def hook(design, fault):
            return {"final_count": design.extras.get("count", None),
                    "events": design.sim.events_executed}

        result = run_campaign(counter_factory, small_spec(),
                              metric_hooks=[hook])
        assert result.runs[0].metrics["events"] > 0

    def test_missing_output_probe_rejected(self):
        spec = small_spec(outputs=["ghost"])
        with pytest.raises(CampaignError):
            run_campaign(counter_factory, spec)

    def test_compare_from_ignores_startup(self):
        """Comparing only after the fault has been flushed can mask it."""
        faults = exhaustive_bitflips(["top/counter.q[0]"], [33e-9])
        full = run_campaign(counter_factory, small_spec(faults=faults))
        assert full.runs[0].label != SILENT


class TestResultAggregation:
    @pytest.fixture(scope="class")
    def result(self):
        faults = exhaustive_bitflips(
            ["top/counter.q[0]", "top/counter.q[3]"], [33e-9, 55e-9]
        )
        return run_campaign(counter_factory, small_spec(faults=faults))

    def test_counts_sum_to_total(self, result):
        assert sum(result.counts().values()) == len(result)

    def test_fractions(self, result):
        assert sum(result.fractions().values()) == pytest.approx(1.0)

    def test_by_class(self, result):
        for label, runs in (
            (label, result.by_class(label)) for label in result.counts()
        ):
            assert all(r.label == label for r in runs)

    def test_by_target_covers_all(self, result):
        table = result.by_target()
        assert set(table) == {"top/counter.q[0]", "top/counter.q[3]"}

    def test_worst_runs_sorted(self, result):
        worst = result.worst_runs(2)
        assert len(worst) == 2
        assert worst[0].classification.severity >= worst[1].classification.severity


class TestReports:
    @pytest.fixture(scope="class")
    def result(self):
        faults = exhaustive_bitflips(["top/counter.q[0]"], [33e-9, 55e-9])
        return run_campaign(counter_factory, small_spec(faults=faults))

    def test_summary_table(self, result):
        text = classification_summary(result)
        assert "silent" in text and "failure" in text and "total" in text

    def test_per_target_table(self, result):
        text = per_target_table(result)
        assert "top/counter.q[0]" in text

    def test_full_report(self, result):
        text = full_report(result)
        assert "campaign report" in text
        assert "Wilson" in text

    def test_csv_export(self, result):
        csv_text = to_csv(result)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 1 + len(result)
        assert lines[0].startswith("index,fault,target,class")


class TestPropagation:
    def test_graph_from_campaign(self):
        faults = exhaustive_bitflips(["top/counter.q[0]"], [33e-9])
        result = run_campaign(counter_factory, small_spec(faults=faults))
        graph = build_propagation_graph(result)
        assert graph.number_of_edges() >= 1
        assert "top/counter.q[0]" in graph.nodes
        text = format_propagation_report(graph)
        assert "->" in text

    def test_silent_campaign_graph_empty(self):
        # Inject after the comparison window ends... simplest: flip a
        # bit twice at the same instant leaves state unchanged - here
        # we instead use a fault at the very end of the run.
        faults = exhaustive_bitflips(["top/counter.q[0]"], [199.5e-9])
        result = run_campaign(counter_factory, small_spec(faults=faults))
        graph = build_propagation_graph(result)
        text = format_propagation_report(graph)
        assert graph.number_of_edges() >= 0  # may heal or not
        assert isinstance(text, str)


class TestStats:
    def test_wilson_basic(self):
        low, high = wilson_interval(5, 100)
        assert 0.0 <= low <= 0.05 <= high <= 1.0

    def test_wilson_zero_successes(self):
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0 < high < 0.15

    def test_wilson_validation(self):
        with pytest.raises(CampaignError):
            wilson_interval(5, 0)
        with pytest.raises(CampaignError):
            wilson_interval(10, 5)

    def test_clopper_pearson_wider_than_wilson(self):
        w = wilson_interval(10, 100)
        cp = clopper_pearson_interval(10, 100)
        assert cp[0] <= w[0] + 1e-9
        assert cp[1] >= w[1] - 1e-9

    def test_clopper_pearson_extremes(self):
        assert clopper_pearson_interval(0, 10)[0] == 0.0
        assert clopper_pearson_interval(10, 10)[1] == 1.0

    def test_required_sample_size(self):
        n = required_sample_size(0.05)
        assert 350 <= n <= 400  # classic ~385

    def test_required_sample_size_validation(self):
        with pytest.raises(CampaignError):
            required_sample_size(0.0)

    def test_estimate_error_rate(self):
        faults = exhaustive_bitflips(["top/counter.q[0]"], [33e-9])
        result = run_campaign(counter_factory, small_spec(faults=faults))
        rate, (low, high) = estimate_error_rate(result)
        assert low <= rate <= high


class TestSensitivityMatrix:
    def test_matrix_renders_targets_and_glyphs(self):
        from repro.campaign.report import sensitivity_matrix

        faults = exhaustive_bitflips(
            ["top/counter.q[0]", "top/counter.q[3]"], [33e-9, 55e-9]
        )
        result = run_campaign(counter_factory, small_spec(faults=faults))
        text = sensitivity_matrix(result)
        assert "top/counter.q[0]" in text
        assert "legend" in text
        # every run contributes a glyph
        glyphs = sum(text.count(g) for g in ".oTF")
        assert glyphs >= len(result)

    def test_matrix_without_timed_faults(self):
        from repro.campaign.report import sensitivity_matrix
        from repro.faults import StuckAt

        spec = small_spec(faults=[StuckAt("clk", 0, t_start=15e-9)])
        result = run_campaign(counter_factory, spec)
        # StuckAt has t_start, not time: reported as untimed.
        assert "no timed faults" in sensitivity_matrix(result)
