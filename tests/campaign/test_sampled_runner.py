"""Integration tests for confidence-bounded sampled campaigns.

A sampled campaign must stop early with a defensible interval, be
exactly reproducible from its seed, and survive interruption: resuming
an interrupted sampled run replays the stored rows through the same
sampler and lands on a store row-identical to the uninterrupted run.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    exhaustive_bitflips,
    full_report,
    run_campaign,
    sampling_headline,
)
from repro.core import Component, L0, Simulator
from repro.core.errors import CampaignError
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.store import CampaignStore

ROW_IDENTITY = ("idx", "status", "label", "stratum")


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
    }
    return Design(sim=sim, root=top, probes=probes)


def make_spec(name="sampled"):
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)],
        [33e-9 + 10e-9 * k for k in range(15)],
    )
    return CampaignSpec(name=name, faults=faults, t_end=200e-9,
                        outputs=["parity"])


def rows_of(store, name):
    campaign_id = store.campaign_id(name)
    return [tuple(row[key] for key in ROW_IDENTITY)
            for row in store.run_rows(campaign_id)]


def run_sampled(store=None, name="sampled", **kwargs):
    kwargs.setdefault("sample", True)
    kwargs.setdefault("margin", 0.1)
    kwargs.setdefault("warm_start", True)
    return run_campaign(factory, make_spec(name), on_error="collect",
                        store=store, **kwargs)


class TestSampledRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sampled()

    def test_stops_early(self, result):
        sampling = result.execution["sampling"]
        assert sampling["reason"] == "converged"
        assert sampling["simulated"] < sampling["population"]
        assert sampling["skipped"] > 0
        assert result.execution["completed"] == sampling["simulated"]

    def test_interval_honors_margin(self, result):
        sampling = result.execution["sampling"]
        assert sampling["half_width"] <= 0.1
        assert sampling["low"] <= sampling["estimate"] <= sampling["high"]

    def test_result_covers_only_simulated(self, result):
        sampling = result.execution["sampling"]
        assert len(result) == sampling["trials"]

    def test_report_has_sampling_section(self, result):
        report = full_report(result)
        assert "--- sampling estimate ---" in report
        assert "error rate" in report
        assert "early stop      : converged" in report
        headline = sampling_headline(result.execution["sampling"])
        assert "±" in headline and "confidence" in headline

    def test_sample_without_margin_raises(self):
        with pytest.raises((CampaignError, TypeError)):
            run_campaign(factory, make_spec(), sample=True,
                         on_error="collect")


class TestExhaustiveReportInterval:
    def test_wilson_line_without_sampling(self):
        spec = make_spec("exhaustive")
        spec = CampaignSpec(name="exhaustive", faults=spec.faults[:12],
                            t_end=200e-9, outputs=["parity"])
        result = run_campaign(factory, spec, warm_start=True,
                              on_error="collect")
        report = full_report(result)
        assert "Wilson CI" in report
        assert "--- sampling estimate ---" not in report


class TestDeterminismAndResume:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("sampled") / "ref.db"
        with CampaignStore(str(path)) as store:
            run_sampled(store)
            return rows_of(store, "sampled")

    def test_same_seed_row_identical(self, reference, tmp_path):
        with CampaignStore(str(tmp_path / "again.db")) as store:
            run_sampled(store)
            assert rows_of(store, "sampled") == reference

    def test_resume_of_completed_run_is_noop(self, reference, tmp_path):
        path = str(tmp_path / "done.db")
        with CampaignStore(path) as store:
            run_sampled(store)
        with CampaignStore(path) as store:
            result = run_campaign(factory, make_spec(), resume=True,
                                  on_error="collect", store=store)
            assert result.execution["completed"] == 0
            assert result.execution["sampling"]["reason"] == "converged"
            assert rows_of(store, "sampled") == reference

    def test_interrupt_then_resume_matches_uninterrupted(
        self, reference, tmp_path
    ):
        class Interrupt(Exception):
            pass

        calls = [0]

        def progress(i, n, fault):
            calls[0] += 1
            if calls[0] > 12:
                raise Interrupt()

        path = str(tmp_path / "int.db")
        with CampaignStore(path) as store:
            with pytest.raises(Interrupt):
                run_sampled(store, progress=progress)
            partial = rows_of(store, "sampled")
            assert 0 < len(partial) < len(reference)
        with CampaignStore(path) as store:
            run_campaign(factory, make_spec(), resume=True,
                         on_error="collect", store=store)
            assert rows_of(store, "sampled") == reference

    def test_skipped_rows_distinct_from_missing(self, reference):
        statuses = {status for _, status, _, _ in reference}
        assert "skipped" in statuses
        indices = sorted(idx for idx, _, _, _ in reference)
        assert indices == list(range(60))


class TestBatchedSampled:
    def test_digital_batched_sampling(self):
        result = run_sampled(warm_start=False, batch="digital")
        sampling = result.execution["sampling"]
        assert sampling["reason"] == "converged"
        assert sampling["skipped"] > 0
        batch = result.execution["batch"]
        assert batch["batched_runs"] + batch["scalar_runs"] \
            == sampling["simulated"]
