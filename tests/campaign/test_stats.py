"""Edge-case unit tests for the interval estimators in stats.py.

The adaptive sampler leans on these at its boundaries — first chunk
(no trials yet), perfect designs (zero errors), totally broken designs
(every run an error) — so the edges get their own tests, including a
Wilson vs Clopper–Pearson comparison sweep pinning down exactly where
the exact interval is and is not wider than the approximation.
"""

import math

import pytest

from repro.campaign import (
    clopper_pearson_interval,
    interval_half_width,
    required_sample_size,
    safe_interval,
    wilson_interval,
)
from repro.core.errors import CampaignError


class TestWilsonEdges:
    def test_zero_successes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert 0.0 < high < 0.25

    def test_all_successes(self):
        low, high = wilson_interval(20, 20)
        assert high == 1.0
        assert 0.75 < low < 1.0

    def test_single_trial(self):
        low, high = wilson_interval(0, 1)
        assert low == 0.0
        assert 0.5 < high < 1.0
        low, high = wilson_interval(1, 1)
        assert high == 1.0
        assert 0.0 < low < 0.5

    def test_symmetry_about_half(self):
        low0, high0 = wilson_interval(30, 100)
        low1, high1 = wilson_interval(70, 100)
        assert low0 == pytest.approx(1.0 - high1, abs=1e-12)
        assert high0 == pytest.approx(1.0 - low1, abs=1e-12)

    def test_extreme_confidences(self):
        narrow = wilson_interval(5, 100, confidence=0.5)
        wide = wilson_interval(5, 100, confidence=0.9999)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]
        assert 0.0 <= wide[0] <= wide[1] <= 1.0

    def test_interval_bounds_stay_in_unit_interval(self):
        for successes, trials in [(0, 1), (1, 1), (1, 2), (999, 1000)]:
            low, high = wilson_interval(successes, trials)
            assert 0.0 <= low <= high <= 1.0

    def test_returns_plain_floats(self):
        # numpy scalars must not leak into JSON execution records or
        # wire frames.
        low, high = wilson_interval(3, 50)
        assert type(low) is float and type(high) is float


class TestClopperPearsonEdges:
    def test_zero_and_all(self):
        assert clopper_pearson_interval(0, 5)[0] == 0.0
        assert clopper_pearson_interval(5, 5)[1] == 1.0

    def test_single_trial(self):
        low, high = clopper_pearson_interval(0, 1, confidence=0.95)
        assert low == 0.0
        assert high == pytest.approx(0.975, abs=1e-9)

    def test_validation(self):
        with pytest.raises(CampaignError):
            clopper_pearson_interval(1, 0)
        with pytest.raises(CampaignError):
            clopper_pearson_interval(6, 5)


class TestComparisonSweep:
    """Wilson vs Clopper–Pearson across the (successes, trials) grid.

    Clopper–Pearson is coverage-conservative, which is often glossed as
    "the exact interval contains Wilson's".  That is only true away
    from the edges: near successes = 0 or trials at high confidence the
    Wilson endpoints can poke outside the exact interval.  These sweeps
    assert the relationships that actually hold, so the sampler's
    choice of Wilson for the stopping rule rests on tested ground.
    """

    GRID = (1, 2, 5, 17, 100, 1000)

    def test_containment_at_moderate_confidence(self):
        # At confidence <= 0.9 the exact interval endpoint-contains
        # Wilson's for every (successes, trials) pair, edges included.
        for trials in self.GRID:
            for successes in range(trials + 1):
                for confidence in (0.8, 0.9):
                    w = wilson_interval(successes, trials, confidence)
                    cp = clopper_pearson_interval(
                        successes, trials, confidence
                    )
                    assert cp[0] <= w[0] + 1e-9, (successes, trials)
                    assert cp[1] >= w[1] - 1e-9, (successes, trials)

    def test_interior_width_ordering(self):
        # Away from the edges (both counts at least trials // 10) the
        # exact interval is at least as wide as Wilson's at any
        # confidence the sampler accepts.
        for trials in self.GRID:
            margin = max(1, trials // 10)
            for successes in range(margin, trials - margin + 1):
                for confidence in (0.8, 0.9, 0.95, 0.99):
                    w = wilson_interval(successes, trials, confidence)
                    cp = clopper_pearson_interval(
                        successes, trials, confidence
                    )
                    assert (cp[1] - cp[0]) >= (w[1] - w[0]) - 1e-9, (
                        successes, trials, confidence
                    )

    def test_point_estimate_always_contained(self):
        for trials in self.GRID:
            for successes in range(trials + 1):
                phat = successes / trials
                for confidence in (0.8, 0.95, 0.99):
                    for fn in (wilson_interval, clopper_pearson_interval):
                        low, high = fn(successes, trials, confidence)
                        assert low - 1e-12 <= phat <= high + 1e-12

    def test_exact_can_be_narrower_at_the_edge(self):
        # The counterexample that rules out a blanket containment
        # claim: at zero successes and high confidence the exact upper
        # endpoint sits below Wilson's.
        w = wilson_interval(0, 100, confidence=0.99)
        cp = clopper_pearson_interval(0, 100, confidence=0.99)
        assert cp[1] < w[1]


class TestSafeInterval:
    def test_zero_trials_is_vacuous(self):
        assert safe_interval(0, 0) == (0.0, 1.0)
        assert safe_interval(0, -3) == (0.0, 1.0)

    def test_matches_wilson_once_data_exists(self):
        assert safe_interval(4, 40) == wilson_interval(4, 40)

    def test_clopper_pearson_method(self):
        assert safe_interval(4, 40, method="clopper-pearson") \
            == clopper_pearson_interval(4, 40)
        assert safe_interval(0, 0, method="clopper-pearson") == (0.0, 1.0)

    def test_unknown_method_raises(self):
        with pytest.raises(CampaignError):
            safe_interval(1, 10, method="jeffreys")

    def test_half_width_no_trials_is_half(self):
        assert interval_half_width(0, 0) == 0.5

    def test_half_width_shrinks_with_trials(self):
        widths = [interval_half_width(n // 10, n)
                  for n in (10, 100, 1000, 10000)]
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < 0.01


class TestRequiredSampleSize:
    def test_scales_inverse_square_with_margin(self):
        n1 = required_sample_size(0.05)
        n2 = required_sample_size(0.025)
        assert n2 == pytest.approx(4 * n1, rel=0.02)

    def test_rare_event_needs_fewer(self):
        assert required_sample_size(0.01, p_expected=0.02) \
            < required_sample_size(0.01)

    def test_margin_validation(self):
        with pytest.raises(CampaignError):
            required_sample_size(0.0)
        with pytest.raises(CampaignError):
            required_sample_size(1.0)

    def test_zero_rate_wilson_consistency(self):
        """A zero-error stratum converges by the trial count the
        sampler's closed form predicts.

        The closed form ``ceil(z^2 / (2 m) - z^2) + 1`` is sufficient
        (the Wilson 0/n half-width is at the margin there) and at most
        one trial above the true minimum found by scanning.
        """
        for margin in (0.05, 0.01, 0.005):
            z = 1.959963984540054
            needed = int(math.ceil(z * z / (2 * margin) - z * z)) + 1
            assert interval_half_width(0, needed) <= margin
            minimal = next(
                n for n in range(1, needed + 1)
                if interval_half_width(0, n) <= margin
            )
            assert 0 <= needed - minimal <= 1, (margin, needed, minimal)
