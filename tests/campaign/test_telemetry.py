"""Campaign telemetry end to end.

The observability contract of a supervised campaign: the event
journal tells the story of the run (and survives interrupts), worker
heartbeats and lifecycle land in the journal and the store, failed
runs leave flight-recorder post-mortems referenced from their store
rows, and the per-run phase breakdown reaches the execution record,
the metrics registry and the text report.
"""

import json
import multiprocessing
import os
import sys
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    RetryPolicy,
    RUN_CRASHED,
    RUN_DIVERGED,
    execution_summary,
    exhaustive_bitflips,
    run_campaign,
)
from repro.campaign.supervisor import WorkerSupervisor
from repro.core import Component, L0, NumericalDivergenceError, Simulator
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.obs import journal, metrics
from repro.obs.journal import read_journal
from repro.store import CampaignStore

needs_fork = pytest.mark.skipif(
    sys.platform == "win32"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel campaigns need the fork start method",
)


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {"parity": sim.probe(par), "cnt[0]": sim.probe(q.bits[0])}
    return Design(sim=sim, root=top, probes=probes)


def make_spec(name="tele"):
    faults = exhaustive_bitflips(
        ["top/counter.q[0]", "top/counter.q[1]"], [33e-9, 55e-9]
    )
    return CampaignSpec(name=name, faults=faults, t_end=200e-9,
                        outputs=["parity"])


def targets_time(fault):
    return fault.targets()[0], fault.time


def diverger_on(target, t_inj):
    def hook(design, fault):
        if targets_time(fault) == (target, t_inj):
            raise NumericalDivergenceError("forced divergence")
        return {}

    return hook


@pytest.fixture(autouse=True)
def clean_journal():
    journal.close_journal()
    yield
    journal.close_journal()


class TestJournalFromCampaign:
    def test_serial_campaign_event_stream(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        run_campaign(factory, make_spec())
        journal.close_journal()
        events = list(read_journal(path))
        names = [e["event"] for e in events]
        assert names[0] == "campaign_started"
        assert names[-1] == "campaign_finished"
        assert names.count("run_started") == 4
        assert names.count("run_finished") == 4
        started = events[0]
        assert started["name"] == "tele"
        assert started["total"] == 4
        assert started["mode"] == "cold"
        finished = [e for e in events if e["event"] == "run_finished"]
        assert all(e["status"] == "ok" for e in finished)
        assert all(e["label"] for e in finished)
        assert sorted(e["index"] for e in finished) == [0, 1, 2, 3]
        # The envelope sequence is gapless and ordered.
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[-1]["execution"]["completed"] == 4

    def test_warm_campaign_journals_checkpoint_restores(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        run_campaign(factory, make_spec(), warm_start=True)
        journal.close_journal()
        events = list(read_journal(path))
        assert [e for e in events if e["event"] == "checkpoint_restored"]
        assert events[0]["mode"] == "warm"

    def test_batched_campaign_journals_batch_plans(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        run_campaign(factory, make_spec(), warm_start=True, batch=True)
        journal.close_journal()
        events = list(read_journal(path))
        planned = [e for e in events if e["event"] == "batch_planned"]
        assert planned
        assert all(e["size"] >= 1 for e in planned)
        assert events[0]["mode"] == "batched"

    def test_retry_and_quarantine_reach_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        run_campaign(
            factory, make_spec(), on_error="collect",
            metric_hooks=[diverger_on("top/counter.q[1]", 55e-9)],
            retry=RetryPolicy(attempts=2, backoff_s=0.01),
        )
        journal.close_journal()
        events = list(read_journal(path))
        (retry,) = [e for e in events if e["event"] == "retry"]
        assert retry["attempt"] == 1
        assert retry["status"] == RUN_DIVERGED
        (quarantined,) = [e for e in events if e["event"] == "quarantined"]
        assert quarantined["index"] == retry["index"]
        assert quarantined["attempts"] == 2
        failed = [e for e in events
                  if e["event"] == "run_finished" and e["status"] != "ok"]
        assert [e["status"] for e in failed] == [RUN_DIVERGED]

    def test_interrupted_campaign_leaves_valid_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        seen = []

        def interrupter(design, fault):
            seen.append(fault)
            if len(seen) == 3:
                raise KeyboardInterrupt
            return {}

        journal.open_journal(path)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(factory, make_spec(), metric_hooks=[interrupter])
        journal.close_journal()
        # Everything up to the interrupt parses cleanly.
        events = list(read_journal(path))
        names = [e["event"] for e in events]
        assert names[0] == "campaign_started"
        assert "campaign_finished" not in names
        assert names.count("run_finished") == 2

    def test_store_records_journal_location(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        with CampaignStore(tmp_path / "c.sqlite") as store:
            run_campaign(factory, make_spec(), store=store)
            assert store.journal_location("tele") == (str(path), 0)
        journal.close_journal()

    def test_campaign_without_journal_emits_nothing(self, tmp_path):
        # The disabled-journal path: no sink, no file, no errors.
        run_campaign(factory, make_spec())
        assert not journal.enabled()


class TestPhaseProfiling:
    def test_cold_phase_breakdown(self, tmp_path):
        with CampaignStore(tmp_path / "c.sqlite") as store:
            result = run_campaign(factory, make_spec(), store=store)
        phases = result.execution["phases"]
        assert set(phases) == {"restore", "step", "classify", "store_write"}
        assert phases["restore"] == 0.0  # cold start never restores
        assert phases["step"] > 0.0
        assert phases["classify"] > 0.0
        assert phases["store_write"] > 0.0
        assert "phase breakdown" in execution_summary(result)

    def test_warm_start_accrues_restore_time(self):
        result = run_campaign(factory, make_spec(), warm_start=True)
        phases = result.execution["phases"]
        assert phases["restore"] > 0.0
        assert phases["step"] > 0.0

    def test_phases_reach_the_metrics_registry(self):
        metrics.enable()
        run_campaign(factory, make_spec())
        histograms = metrics.snapshot()["histograms"]
        for name in ("campaign.phase.step_s", "campaign.phase.classify_s"):
            assert histograms[name]["count"] == 1


class TestPostmortems:
    def test_diverged_run_dumps_referenced_postmortem(self, tmp_path):
        pm_dir = tmp_path / "pm"
        journal.open_journal(tmp_path / "j.jsonl")
        with CampaignStore(tmp_path / "c.sqlite") as store:
            result = run_campaign(
                factory, make_spec(), on_error="collect", store=store,
                metric_hooks=[diverger_on("top/counter.q[1]", 55e-9)],
                postmortem_dir=pm_dir,
            )
            (err,) = result.errors
            assert err.status == RUN_DIVERGED
            assert err.postmortem is not None
            payload = json.load(open(err.postmortem))
            assert payload["status"] == RUN_DIVERGED
            assert payload["index"] == err.index
            assert "forced divergence" in payload["error"]
            assert payload["fault"]["describe"] == err.fault.describe()
            # The store row references the same file.
            campaign_id = store.campaign_id("tele")
            (stored,) = store.load_errors(campaign_id, make_spec().faults)
            assert stored.postmortem == err.postmortem
        journal.close_journal()
        events = list(read_journal(tmp_path / "j.jsonl"))
        written = [e for e in events if e["event"] == "postmortem_written"]
        assert written
        assert written[0]["index"] == err.index

    def test_no_postmortem_dir_means_no_dump(self, tmp_path):
        result = run_campaign(
            factory, make_spec(), on_error="collect",
            metric_hooks=[diverger_on("top/counter.q[1]", 55e-9)],
        )
        (err,) = result.errors
        assert err.postmortem is None

    @needs_fork
    def test_sigkilled_worker_leaves_worker_death_postmortem(self, tmp_path):
        def killer(design, fault):
            if targets_time(fault) == ("top/counter.q[0]", 55e-9):
                os.kill(os.getpid(), 9)
            return {}

        pm_dir = tmp_path / "pm"
        journal.open_journal(tmp_path / "j.jsonl")
        with CampaignStore(tmp_path / "c.sqlite") as store:
            result = run_campaign(
                factory, make_spec("kill"), metric_hooks=[killer],
                workers=2, on_error="collect", retries=0, store=store,
                postmortem_dir=pm_dir,
            )
            (err,) = result.errors
            assert err.status == RUN_CRASHED
            assert err.postmortem is not None
            payload = json.load(open(err.postmortem))
            assert payload["kind"] == "worker_death"
            assert payload["worker"]["exitcode"] == -9
            campaign_id = store.campaign_id("kill")
            (stored,) = store.load_errors(campaign_id, make_spec().faults)
            assert stored.postmortem == err.postmortem
        journal.close_journal()
        events = list(read_journal(tmp_path / "j.jsonl"))
        names = [e["event"] for e in events]
        assert "worker_spawned" in names
        assert "worker_died" in names
        (died,) = [e for e in events if e["event"] == "worker_died"]
        assert died["exitcode"] == -9


@needs_fork
class TestWorkerTelemetry:
    def test_parallel_campaign_journals_worker_lifecycle(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal.open_journal(path)
        with CampaignStore(tmp_path / "c.sqlite") as store:
            run_campaign(factory, make_spec(), workers=2, store=store)
            rows = store.worker_rows("tele")
        journal.close_journal()
        events = list(read_journal(path))
        spawned = [e for e in events if e["event"] == "worker_spawned"]
        # The pool grows lazily: a fast campaign may need only one.
        assert 1 <= len(spawned) <= 2
        pids = {e["pid"] for e in spawned}
        started = [e for e in events if e["event"] == "run_started"]
        assert len(started) == 4
        assert all(e["worker_pid"] in pids for e in started)
        # Worker rows landed in the store, one per spawned pid.
        assert sorted(r["pid"] for r in rows) == sorted(pids)
        assert all(r["state"] == "alive" for r in rows)

    def test_dead_worker_row_records_exit(self, tmp_path):
        def killer(design, fault):
            if targets_time(fault) == ("top/counter.q[0]", 55e-9):
                os.kill(os.getpid(), 9)
            return {}

        with CampaignStore(tmp_path / "c.sqlite") as store:
            run_campaign(
                factory, make_spec("kill"), metric_hooks=[killer],
                workers=2, on_error="collect", retries=0, store=store,
            )
            rows = store.worker_rows("kill")
        dead = [r for r in rows if r["state"] == "dead"]
        assert len(dead) == 1
        assert dead[0]["exitcode"] == -9
        assert dead[0]["fault_idx"] is not None

    def test_supervisor_heartbeats_carry_phase(self):
        events = []

        def body(task):
            time.sleep(0.3)
            return (task, True, f"done-{task}", 0.3)

        supervisor = WorkerSupervisor(
            multiprocessing.get_context("fork"), body, workers=1,
            heartbeat_s=0.05, monitor=events.append,
        )
        outcomes = list(supervisor.outcomes([0, 1]))
        assert sorted(o[0] for o in outcomes) == [0, 1]
        kinds = [e["event"] for e in events]
        assert "spawned" in kinds
        assert kinds.count("task") == 2
        beats = [e for e in events if e["event"] == "heartbeat"]
        # 0.6 s of busy worker at 0.05 s cadence: plenty of beats.
        assert len(beats) >= 2
        busy = [b for b in beats if b["phase"] == "running"]
        assert busy
        assert all(b["index"] in (0, 1) for b in busy)
        assert all(b["pid"] for b in beats)

    def test_monitor_exceptions_do_not_break_the_run(self):
        def bad_monitor(info):
            raise RuntimeError("monitor bug")

        def body(task):
            return (task, True, "ok", 0.0)

        supervisor = WorkerSupervisor(
            multiprocessing.get_context("fork"), body, workers=1,
            monitor=bad_monitor,
        )
        outcomes = list(supervisor.outcomes([0, 1, 2]))
        assert sorted(o[0] for o in outcomes) == [0, 1, 2]
