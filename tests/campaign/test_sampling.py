"""Unit tests for the stratified adaptive sampler.

Everything here drives :class:`StratifiedSampler` directly with
synthetic outcomes — no simulator — so the draw sequence, the stopping
rule, and the resume/replay contract are pinned down independently of
the runner integrations.
"""

import pytest

from repro.campaign import exhaustive_bitflips
from repro.campaign.sampling import (
    DEFAULT_CHUNK,
    STRATA_MODES,
    StratifiedSampler,
    row_outcome,
    stored_outcomes,
    stratify,
)
from repro.core.errors import CampaignError


def make_faults(targets=4, times=15):
    return exhaustive_bitflips(
        [f"top/dut.q[{i}]" for i in range(targets)],
        [33e-9 + 10e-9 * k for k in range(times)],
    )


def drive(sampler, oracle):
    """Serially simulate the campaign: every pending index gets
    ``oracle(index)`` as its outcome."""
    while not sampler.finished:
        chunk = sampler.next_chunk()
        if chunk is None:
            break
        for index in chunk.pending:
            sampler.record(index, oracle(index))
        sampler.finish_chunk(chunk)
    return sampler


class TestValidation:
    def test_empty_faults(self):
        with pytest.raises(CampaignError):
            StratifiedSampler([], margin=0.1)

    def test_margin_bounds(self):
        faults = make_faults(1, 2)
        for margin in (0.0, 1.0, -0.1):
            with pytest.raises(CampaignError):
                StratifiedSampler(faults, margin=margin)

    def test_confidence_bounds(self):
        faults = make_faults(1, 2)
        with pytest.raises(CampaignError):
            StratifiedSampler(faults, margin=0.1, confidence=1.0)

    def test_chunk_bounds(self):
        faults = make_faults(1, 2)
        with pytest.raises(CampaignError):
            StratifiedSampler(faults, margin=0.1, chunk=0)


class TestStratify:
    def test_none_mode(self):
        faults = make_faults(3, 5)
        assert stratify(faults, "none") == ["all"] * 15

    def test_site_mode(self):
        faults = make_faults(4, 15)
        labels = stratify(faults, "site")
        assert len(set(labels)) == 4
        # product order: all times of one target are contiguous
        assert labels[0] == labels[14]
        assert labels[0] != labels[15]

    def test_phase_mode(self):
        faults = make_faults(4, 16)
        labels = stratify(faults, "phase")
        assert set(labels) == {"p0", "p1", "p2", "p3"}
        # equal-count buckets over 16 distinct times
        assert labels.count("p0") == 16

    def test_site_phase_mode(self):
        faults = make_faults(2, 8)
        labels = stratify(faults, "site-phase")
        assert len(set(labels)) == 2 * 4
        assert all("/" in label for label in labels)

    def test_single_time_collapses_phases(self):
        faults = make_faults(3, 1)
        assert set(stratify(faults, "phase")) == {"p0"}

    def test_callable_mode(self):
        faults = make_faults(2, 3)
        labels = stratify(faults, lambda fault: "even" if fault.time < 60e-9
                          else "odd")
        assert set(labels) <= {"even", "odd"}

    def test_unknown_mode_raises(self):
        with pytest.raises(CampaignError):
            stratify(make_faults(1, 2), "banana")

    def test_modes_tuple_is_exhaustive(self):
        for mode in STRATA_MODES:
            assert len(stratify(make_faults(2, 4), mode)) == 8


class TestRowOutcome:
    def test_ok_silent(self):
        assert row_outcome({"status": "ok", "label": "silent"}) is False

    def test_ok_error(self):
        assert row_outcome({"status": "ok", "label": "failure"}) is True

    def test_failed_run(self):
        assert row_outcome({"status": "timeout", "label": None}) is None

    def test_stored_outcomes_skips_skipped(self):
        rows = [
            {"idx": 0, "status": "ok", "label": "silent"},
            {"idx": 1, "status": "skipped", "label": None},
            {"idx": 2, "status": "ok", "label": "failure"},
        ]
        assert stored_outcomes(rows) == {0: False, 2: True}


class TestDeterminism:
    def test_same_seed_identical_draws(self):
        faults = make_faults(4, 25)
        a = StratifiedSampler(faults, margin=0.1, seed=7, chunk=10)
        b = StratifiedSampler(faults, margin=0.1, seed=7, chunk=10)
        for _ in range(6):
            ca, cb = a.next_chunk(), b.next_chunk()
            if ca is None:
                assert cb is None
                break
            assert (ca.ident, ca.round_index, ca.indices, ca.pending) \
                == (cb.ident, cb.round_index, cb.indices, cb.pending)
            for index in ca.pending:
                a.record(index, index % 7 == 0)
                b.record(index, index % 7 == 0)
            a.finish_chunk(ca)
            b.finish_chunk(cb)

    def test_different_seed_different_order(self):
        faults = make_faults(4, 25)
        a = StratifiedSampler(faults, margin=0.1, seed=0, chunk=25)
        b = StratifiedSampler(faults, margin=0.1, seed=1, chunk=25)
        assert a.next_chunk().indices != b.next_chunk().indices


class TestStopping:
    def test_converges_early_on_clean_design(self):
        # All-silent, single stratum: the Wilson 0/n half-width hits
        # 0.15 at 10 trials, well inside the first 40-draw round.
        faults = make_faults(8, 25)   # population 200
        sampler = drive(
            StratifiedSampler(faults, margin=0.15, strata="none",
                              chunk=10),
            lambda index: False,
        )
        assert sampler.stopped and sampler.converged
        assert sampler.reason == "converged"
        assert sampler.trials == 10
        assert sampler.simulated < sampler.population
        assert len(sampler.skipped_indices()) \
            == sampler.population - sampler.simulated

    def test_exhausts_when_margin_unreachable(self):
        faults = make_faults(3, 4)    # population 12
        sampler = drive(
            StratifiedSampler(faults, margin=0.01, strata="none"),
            lambda index: False,
        )
        assert sampler.stopped and not sampler.converged
        assert sampler.reason == "exhausted"
        assert sampler.simulated == 12
        assert sampler.skipped_indices() == []

    def test_converges_with_errors(self):
        faults = make_faults(4, 100)  # population 400, ~20% error rate
        sampler = drive(
            StratifiedSampler(faults, margin=0.1, strata="site",
                              chunk=25),
            lambda index: index % 5 == 0,
        )
        assert sampler.converged
        assert sampler.half_width() <= 0.1
        estimate, (low, high) = sampler.pooled()
        assert low <= 0.2 <= high
        assert sampler.trials < sampler.population

    def test_failed_runs_excluded_from_trials(self):
        faults = make_faults(3, 4)
        sampler = drive(
            StratifiedSampler(faults, margin=0.01, strata="none"),
            lambda index: None if index % 2 else False,
        )
        assert sampler.reason == "exhausted"
        assert sampler.failed == 6
        assert sampler.trials == 6
        assert sampler.simulated == 12

    def test_vacuous_interval_before_data(self):
        sampler = StratifiedSampler(make_faults(2, 4), margin=0.1)
        assert sampler.half_width() == 0.5
        assert sampler.pooled() == (0.0, (0.0, 1.0))

    def test_record_is_idempotent(self):
        sampler = StratifiedSampler(make_faults(2, 4), margin=0.1,
                                    strata="none")
        sampler.record(0, True)
        sampler.record(0, False)
        assert sampler.trials == 1 and sampler.errors == 1


class TestChunkProtocol:
    def make(self, chunk=5):
        # round 0 plans 4 * chunk draws -> exactly four chunks queued
        return StratifiedSampler(make_faults(4, 25), margin=0.05,
                                 strata="none", chunk=chunk)

    def test_none_while_round_in_flight(self):
        sampler = self.make()
        chunks = [sampler.next_chunk() for _ in range(4)]
        assert all(c is not None for c in chunks)
        assert sampler.next_chunk() is None
        assert not sampler.finished

    def test_out_of_order_finish_raises(self):
        sampler = self.make()
        first = sampler.next_chunk()
        second = sampler.next_chunk()
        for index in second.pending:
            sampler.record(index, False)
        with pytest.raises(CampaignError, match="out of order"):
            sampler.finish_chunk(second)
        # the in-order chunk still finishes fine
        for index in first.pending:
            sampler.record(index, False)
        sampler.finish_chunk(first)
        sampler.finish_chunk(second)

    def test_unrecorded_outcome_raises(self):
        sampler = self.make()
        chunk = sampler.next_chunk()
        with pytest.raises(CampaignError, match="unrecorded"):
            sampler.finish_chunk(chunk)

    def test_finish_unknown_chunk_raises(self):
        sampler = self.make()
        chunk = sampler.next_chunk()
        sampler.abandon(chunk)
        with pytest.raises(CampaignError, match="not outstanding"):
            sampler.finish_chunk(chunk)

    def test_default_chunk(self):
        sampler = StratifiedSampler(make_faults(8, 25), margin=0.05,
                                    strata="none")
        assert len(sampler.next_chunk().indices) == DEFAULT_CHUNK


class TestReplay:
    ORACLE = staticmethod(lambda index: index % 9 == 0)

    def run_reference(self):
        faults = make_faults(4, 50)
        sampler = drive(
            StratifiedSampler(faults, margin=0.08, seed=3, chunk=20),
            self.ORACLE,
        )
        return faults, sampler

    def outcomes_of(self, sampler):
        skipped = set(sampler.skipped_indices())
        return {
            index: self.ORACLE(index)
            for index in range(sampler.population)
            if index not in skipped
        }

    def test_full_replay_reaches_same_state(self):
        faults, reference = self.run_reference()
        stored = self.outcomes_of(reference)
        replayed = StratifiedSampler(faults, margin=0.08, seed=3,
                                     chunk=20, stored=stored)

        def no_simulation(index):
            raise AssertionError(f"index {index} should be stored")

        drive(replayed, no_simulation)
        assert replayed.summary() == reference.summary()
        assert replayed.skipped_indices() == reference.skipped_indices()

    def test_partial_replay_continues_sequence(self):
        faults, reference = self.run_reference()
        stored = self.outcomes_of(reference)
        # keep only the first half of the recorded outcomes, as if the
        # campaign were interrupted mid-run
        partial = dict(sorted(stored.items())[: len(stored) // 2])
        resumed = drive(
            StratifiedSampler(faults, margin=0.08, seed=3, chunk=20,
                              stored=partial),
            self.ORACLE,
        )
        assert resumed.summary() == reference.summary()

    def test_summary_flags_starved_strata(self):
        faults = make_faults(2, 3)    # 6 faults, unreachable margin
        sampler = drive(
            StratifiedSampler(faults, margin=0.01, strata="site"),
            lambda index: False,
        )
        summary = sampler.summary()
        assert summary["reason"] == "exhausted"
        assert all(s["starved"] for s in summary["strata"])
        assert summary["skipped"] == 0

    def test_summary_round_trip_is_json_safe(self):
        import json
        _, reference = self.run_reference()
        summary = reference.summary()
        assert json.loads(json.dumps(summary)) == summary
