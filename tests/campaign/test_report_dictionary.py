"""Report rendering and fault-dictionary round-trips (on one real
campaign, plus store-loaded results — reports must not care where a
result came from)."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    FaultDictionary,
    error_listing,
    exhaustive_bitflips,
    execution_summary,
    full_report,
    run_campaign,
    sensitivity_matrix,
    signature_of,
    to_csv,
)
from repro.core import Component, L0, Simulator
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.store import CampaignStore


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
    }
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [33e-9, 55e-9, 77e-9]
    )
    return CampaignSpec(name="par", faults=faults, t_end=300e-9,
                        outputs=["parity"])


@pytest.fixture(scope="module")
def result():
    return run_campaign(factory, make_spec(), warm_start=True)


class TestExecutionSummary:
    def test_warm_summary_sections(self, result):
        text = execution_summary(result)
        assert "warm start" in text
        assert "checkpoints" in text
        assert "warm restores" in text
        assert "runs/s" in text

    def test_empty_for_hand_assembled_results(self, result):
        from repro.campaign import CampaignResult

        assert execution_summary(CampaignResult(make_spec())) == ""

    def test_full_report_includes_execution(self, result):
        assert "--- execution ---" in full_report(result)

    def test_resumed_summary_mentions_the_split(self, result, tmp_path):
        path = tmp_path / "campaign.db"
        with CampaignStore(path) as store:
            run_campaign(factory, make_spec(), store=store)
        with CampaignStore(path) as store:
            resumed = run_campaign(factory, make_spec(), store=store,
                                   resume=True)
        assert "resumed" in execution_summary(resumed)


class TestErrorListing:
    def test_collected_errors_rendered(self):
        spec = make_spec()
        spec.faults[2].target = "top/counter.nope"
        result = run_campaign(factory, spec, on_error="collect")
        assert len(result.errors) == 1
        listing = error_listing(result)
        assert "!!" in listing
        text = full_report(result)
        assert "--- run errors (1) ---" in text

    def test_limit_truncates(self):
        spec = make_spec()
        for fault in spec.faults[:4]:
            fault.target = "top/counter.nope"
        result = run_campaign(factory, spec, on_error="collect")
        listing = error_listing(result, limit=2)
        assert "(2 more)" in listing


class TestSensitivityMatrix:
    def test_matrix_covers_targets_and_legend(self, result):
        text = sensitivity_matrix(result)
        for i in range(4):
            assert f"top/counter.q[{i}]" in text
        assert "legend:" in text


class TestDictionaryRoundTrip:
    def test_to_dict_is_json_ready_and_consistent(self, result):
        dictionary = FaultDictionary(result)
        data = json.loads(json.dumps(dictionary.to_dict()))
        assert data["n_faults"] == len(result)
        assert data["distinguishability"] == pytest.approx(
            dictionary.distinguishability()
        )
        assert sum(len(s["faults"]) for s in data["signatures"]) == \
            len(result)
        # Signature rows mirror the live lookup structures.
        for row, signature in zip(data["signatures"],
                                  dictionary.signatures()):
            assert row["label"] == signature.label
            assert tuple(row["diverged"]) == signature.diverged
            assert len(row["faults"]) == \
                len(dictionary.candidates(signature))

    def test_dictionary_from_store_matches_live(self, result, tmp_path):
        path = tmp_path / "campaign.db"
        with CampaignStore(path) as store:
            live = run_campaign(factory, make_spec(), store=store)
            loaded = store.load_result()
        assert to_csv(loaded) == to_csv(live)
        assert FaultDictionary(loaded).to_dict() == \
            FaultDictionary(live).to_dict()

    def test_signature_lookup_round_trip(self, result):
        dictionary = FaultDictionary(result)
        run = result.runs[0]
        signature = signature_of(run)
        assert signature == dictionary.signature_for(run.fault)
        assert run.fault in dictionary.candidates(signature)
        faults, ambiguity = dictionary.diagnose(signature)
        assert run.fault in faults and ambiguity == len(faults)

    def test_report_renders(self, result):
        text = FaultDictionary(result).report(limit=3)
        assert "fault dictionary:" in text
        assert "distinguishability" in text
