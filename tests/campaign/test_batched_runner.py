"""Batched (ensemble) campaigns must be indistinguishable from scalar.

The contract: ``run_campaign(..., batch=True)`` produces bit-identical
traces, the same per-fault classifications and the same CSV export as
the scalar warm-start flow — including when variants peel off the
ensemble mid-run and finish on the scalar path — while running same-site
variants together in one vectorized pass.
"""

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    RUN_DIVERGED,
    RUN_TIMEOUT,
    analog_injections,
    batch_key,
    run_campaign,
    to_csv,
)
from repro.campaign.runner import CampaignRunner
from repro.analog import TransimpedanceFilter, rc_transimpedance
from repro.core import Component, Simulator
from repro.core.budget import NumericalGuard
from repro.faults import TrapezoidPulse
from repro.store import CampaignStore


def pll_factory():
    from tests.conftest import make_fast_pll

    sim = Simulator(dt=1e-9)
    pll = make_fast_pll(sim, preset_locked=True)
    probes = {
        "vctrl": sim.probe(pll.vctrl),
        "fout": sim.probe(pll.vco_out, min_interval=0.0),
    }
    return Design(sim=sim, root=pll, probes=probes)


def grid_pulses(amplitudes, widths):
    return [
        TrapezoidPulse(rt=100e-12, ft=300e-12, pw=pw, pa=pa)
        for pa in amplitudes
        for pw in widths
    ]


def pll_spec(pulses, name="pll-batch"):
    return CampaignSpec(
        name=name,
        faults=analog_injections(["pll.icp"], [4.0e-6], pulses),
        t_end=8e-6,
        outputs=["vctrl"],
        analog_tolerance=0.02,
    )


#: Sub-threshold PA x PW grid: no digitizer edge moves, nothing peels.
BENIGN = grid_pulses([20e-9, 40e-9], [300e-12, 600e-12])
#: Large enough to shift step-quantised digitizer edges -> peel-off.
DISRUPTIVE = TrapezoidPulse(rt=100e-12, ft=300e-12, pw=500e-12, pa=5e-3)


def assert_same_outcome(scalar, batched):
    assert to_csv(scalar) == to_csv(batched)
    for name, golden in scalar.golden_probes.items():
        other = batched.golden_probes[name]
        assert golden._times == other._times
        assert golden._values == other._values
    for run_s, run_b in zip(scalar.runs, batched.runs):
        assert run_s.label == run_b.label
        for name in run_s.comparisons:
            assert (
                run_s.comparisons[name].match
                == run_b.comparisons[name].match
            )


class TestBatchedEquivalence:
    def test_matches_scalar_warm_start(self):
        spec = pll_spec(BENIGN)
        scalar = run_campaign(pll_factory, spec, warm_start=True)
        batched = run_campaign(pll_factory, spec, batch=True)
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        assert batched.execution["mode"] == "batched"
        assert stats["batches"] == 1
        assert stats["batched_runs"] == len(spec.faults)
        assert stats["peeled"] == 0
        assert stats["fallbacks"] == 0
        assert stats["scalar_runs"] == 0

    def test_traces_bit_identical(self):
        """Ensemble columns reproduce every scalar sample bitwise."""
        spec = pll_spec(BENIGN)
        scalar = CampaignRunner(pll_factory, spec)
        batched = CampaignRunner(pll_factory, spec)
        completed, leftovers, info = batched.run_batch_warm(
            list(range(len(spec.faults)))
        )
        assert not leftovers and not info["fallback"]
        assert len(completed) == len(spec.faults)
        for index, (probes, _metrics, _events), _wall in completed:
            ref, _, _ = scalar.run_fault_warm(spec.faults[index])
            for name, trace in ref.items():
                got = probes[name]
                assert np.array_equal(trace.times, got.times)
                assert np.array_equal(trace.values, got.values)

    def test_peel_off_preserves_outcomes(self):
        """A divergent variant peels and still matches its scalar run."""
        spec = pll_spec(BENIGN + [DISRUPTIVE], name="pll-peel")
        scalar = run_campaign(pll_factory, spec, warm_start=True)
        batched = run_campaign(pll_factory, spec, batch=True)
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        assert stats["peeled"] >= 1
        assert stats["scalar_runs"] == stats["peeled"]
        assert stats["batched_runs"] + stats["scalar_runs"] == len(spec.faults)
        # Not vacuous: the disruptive pulse really perturbs the loop.
        assert any(run.label != "silent" for run in scalar)

    def test_singleton_groups_run_scalar(self):
        """One fault per site has nothing to batch with."""
        spec = pll_spec([BENIGN[0]], name="pll-single")
        batched = run_campaign(pll_factory, spec, batch=True)
        stats = batched.execution["batch"]
        assert stats["batches"] == 0
        assert stats["scalar_runs"] == 1

    def test_batch_key_groups_current_injections(self):
        spec = pll_spec(BENIGN)
        keys = {batch_key(fault) for fault in spec.faults}
        assert keys == {"pll.icp"}

    def test_k1_batch_matches_scalar(self):
        """A one-variant ensemble is still bit-identical to scalar."""
        spec = pll_spec(BENIGN)
        scalar = CampaignRunner(pll_factory, spec)
        batched = CampaignRunner(pll_factory, spec)
        completed, leftovers, info = batched.run_batch_warm([0])
        assert not leftovers and not info["fallback"]
        [(index, (probes, _metrics, _events), _wall)] = completed
        assert index == 0
        ref, _, _ = scalar.run_fault_warm(spec.faults[0])
        for name, trace in ref.items():
            got = probes[name]
            assert np.array_equal(trace.times, got.times)
            assert np.array_equal(trace.values, got.values)

    def test_all_variants_peel_on_first_step(self):
        """A drained ensemble hands every variant to the scalar path.

        A guard ceiling below the locked control voltage trips every
        variant at the first guarded step: the ensemble drains
        (:class:`EnsembleDrainedError`), nothing completes batched, and
        each variant's scalar re-run classifies its divergence exactly
        like the scalar campaign.
        """
        guard = NumericalGuard(max_abs=1e-12, check_every=1)
        spec = pll_spec(BENIGN, name="pll-drain")
        scalar = run_campaign(
            pll_factory, spec, warm_start=True,
            guard=guard, on_error="collect", retries=0,
        )
        batched = run_campaign(
            pll_factory, spec, batch=True,
            guard=guard, on_error="collect", retries=0,
        )
        stats = batched.execution["batch"]
        assert stats["peeled"] == len(spec.faults)
        assert stats["batched_runs"] == 0
        assert stats["fallbacks"] == 0
        assert len(batched.errors) == len(spec.faults)
        for err_s, err_b in zip(scalar.errors, batched.errors):
            assert err_s.index == err_b.index
            assert err_s.status == err_b.status == RUN_DIVERGED


def twosite_factory():
    """Two independent injection sites: R//C filters on separate nodes."""
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    n1 = sim.current_node("n1")
    n2 = sim.current_node("n2")
    v1 = sim.node("v1")
    v2 = sim.node("v2")
    TransimpedanceFilter(
        sim, "f1", n1, v1, rc_transimpedance(1e3, 1e-12), parent=top
    )
    TransimpedanceFilter(
        sim, "f2", n2, v2, rc_transimpedance(2e3, 2e-12), parent=top
    )
    probes = {"v1": sim.probe(v1), "v2": sim.probe(v2)}
    return Design(sim=sim, root=top, probes=probes)


class TestCrossSiteBatching:
    """Variants on *different* nodes share one ensemble pass."""

    def twosite_spec(self):
        pulses = [
            TrapezoidPulse(rt=100e-12, ft=300e-12, pw=500e-12, pa=pa)
            for pa in (5e-3, 8e-3)
        ]
        return CampaignSpec(
            name="twosite",
            faults=analog_injections(
                ["n1", "n2"], [1.0e-6, 1.5e-6], pulses
            ),
            t_end=4e-6,
            outputs=["v1", "v2"],
            analog_tolerance=1e-6,
        )

    def test_cross_site_batches_match_scalar(self):
        spec = self.twosite_spec()
        scalar = run_campaign(twosite_factory, spec, warm_start=True)
        batched = run_campaign(twosite_factory, spec, batch=True)
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        # One batch per injection time, each spanning both nodes — the
        # per-site grouping of earlier releases would have needed four.
        assert stats["analog_batches"] == 2
        assert stats["batched_runs"] == len(spec.faults)
        assert stats["peeled"] == 0
        assert stats["fallbacks"] == 0
        assert any(run.label != "silent" for run in scalar)

    def test_cross_site_traces_bit_identical(self):
        spec = self.twosite_spec()
        scalar = CampaignRunner(twosite_factory, spec)
        batched = CampaignRunner(twosite_factory, spec)
        t_first = [
            i for i, fault in enumerate(spec.faults)
            if fault.time == 1.0e-6
        ]
        completed, leftovers, info = batched.run_batch_warm(t_first)
        assert not leftovers and not info["fallback"]
        assert len(completed) == len(t_first)
        for index, (probes, _metrics, _events), _wall in completed:
            ref, _, _ = scalar.run_fault_warm(spec.faults[index])
            for name, trace in ref.items():
                got = probes[name]
                assert np.array_equal(trace.times, got.times)
                assert np.array_equal(trace.values, got.values)


class TestBatchedSupervision:
    def test_event_budget_is_per_variant(self):
        """A too-small budget times out each variant, as in scalar."""
        spec = pll_spec(BENIGN)
        scalar = run_campaign(
            pll_factory, spec, warm_start=True,
            event_budget=50, on_error="collect", retries=0,
        )
        batched = run_campaign(
            pll_factory, spec, batch=True,
            event_budget=50, on_error="collect", retries=0,
        )
        assert len(scalar.errors) == len(spec.faults)
        assert len(batched.errors) == len(spec.faults)
        for err_s, err_b in zip(scalar.errors, batched.errors):
            assert err_s.index == err_b.index
            assert err_s.status == err_b.status == RUN_TIMEOUT
        # The batch aborted wholesale and every variant re-ran scalar
        # under its own (unscaled) budget.
        assert batched.execution["batch"]["fallbacks"] == 1

    def test_guard_is_per_variant(self):
        """A tripping guard yields the same diverged statuses."""
        guard = NumericalGuard(max_abs=1.0, check_every=8)
        spec = pll_spec(BENIGN)
        scalar = run_campaign(
            pll_factory, spec, warm_start=True,
            guard=guard, on_error="collect", retries=0,
        )
        batched = run_campaign(
            pll_factory, spec, batch=True,
            guard=guard, on_error="collect", retries=0,
        )
        assert len(scalar.errors) == len(spec.faults)
        assert len(batched.errors) == len(spec.faults)
        for err_s, err_b in zip(scalar.errors, batched.errors):
            assert err_s.index == err_b.index
            assert err_s.status == err_b.status == RUN_DIVERGED

    def test_store_roundtrip_and_resume(self, tmp_path):
        spec = pll_spec(BENIGN)
        with CampaignStore(tmp_path / "c.sqlite") as store:
            first = run_campaign(pll_factory, spec, batch=True, store=store)
            resumed = run_campaign(
                pll_factory, spec, batch=True, store=store, resume=True
            )
        assert resumed.execution["completed"] == 0
        assert resumed.execution["skipped"] == len(spec.faults)
        assert to_csv(first) == to_csv(resumed)

    def test_metric_hooks_disable_batching(self):
        spec = pll_spec(BENIGN)
        result = run_campaign(
            pll_factory, spec, batch=True,
            metric_hooks=[lambda design, fault: {}],
        )
        assert result.execution["mode"] == "warm"
        assert "batch" not in result.execution

    def test_batch_implies_warm_start(self):
        spec = pll_spec(BENIGN)
        result = run_campaign(pll_factory, spec, batch=True)
        assert result.execution["checkpoints"] >= 1
