"""Digital copy-on-divergence batching must be indistinguishable from scalar.

The contract: ``run_campaign(..., batch="digital")`` produces bit-identical
traces, the same per-fault classifications and the same CSV export as the
scalar warm-start flow — whether mutants re-converge with the golden
trajectory (and get spliced golden tails) or run all the way to ``t_end``
— and a resumed, store-backed batched campaign equals an uninterrupted
one.
"""

import numpy as np
import pytest

from repro.campaign import (
    BATCH_MODES,
    CampaignSpec,
    Design,
    digital_batch_key,
    exhaustive_bitflips,
    normalize_batch_mode,
    run_campaign,
    to_csv,
)
from repro.campaign.runner import CampaignRunner
from repro.core import Component, L0, Simulator
from repro.core.errors import CampaignError
from repro.digital import Bus, ClockGen, Counter, LFSR, ParityGen, ShiftRegister
from repro.faults import BitFlip, SETPulse
from repro.store import CampaignStore

CLK_PERIOD = 10e-9


def shiftreg_factory():
    """LFSR stimulus feeding a shift register: every bit-flip self-heals.

    A corrupted bit marches toward the serial output and falls off
    within 8 clock cycles, after which the mutant state is exactly the
    golden state — the re-convergence early-out's best case.
    """
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=CLK_PERIOD, parent=top)
    stim = Bus(sim, "stim", 8)
    LFSR(sim, "lfsr", clk, stim, parent=top)
    q = Bus(sim, "q", 8)
    ShiftRegister(sim, "sr1", clk, stim.bits[0], q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "pargen", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "q[7]": sim.probe(q.bits[7]),
    }
    return Design(sim=sim, root=top, probes=probes)


def shiftreg_spec(name="sr-batch", times=(205e-9, 355e-9)):
    faults = exhaustive_bitflips(
        [f"top/sr1.q[{i}]" for i in range(4)], list(times)
    )
    return CampaignSpec(
        name=name, faults=faults, t_end=4e-6, outputs=["parity"]
    )


def counter_factory():
    """A free-running counter: flipped count bits never self-heal."""
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=CLK_PERIOD, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
    }
    return Design(sim=sim, root=top, probes=probes)


def counter_spec(name="cnt-batch"):
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [33e-9, 55e-9, 77e-9]
    )
    return CampaignSpec(
        name=name, faults=faults, t_end=300e-9, outputs=["parity"]
    )


def assert_same_outcome(scalar, batched):
    assert to_csv(scalar) == to_csv(batched)
    for name, golden in scalar.golden_probes.items():
        other = batched.golden_probes[name]
        assert golden._times == other._times
        assert golden._values == other._values
    for run_s, run_b in zip(scalar.runs, batched.runs):
        assert run_s.label == run_b.label
        for name in run_s.comparisons:
            assert (
                run_s.comparisons[name].match
                == run_b.comparisons[name].match
            )


class TestDigitalBatchEquivalence:
    def test_self_healing_mutants_match_scalar(self):
        """Shift-register flips re-converge and splice golden tails."""
        spec = shiftreg_spec()
        scalar = run_campaign(shiftreg_factory, spec, warm_start=True)
        batched = run_campaign(shiftreg_factory, spec, batch="digital")
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        assert batched.execution["mode"] == "batched"
        assert stats["mode"] == "digital"
        # One batch per flip time, every mutant batched, every mutant
        # re-converged before t_end (the shift register self-heals).
        assert stats["digital_batches"] == 2
        assert stats["batched_runs"] == len(spec.faults)
        assert stats["converged"] == len(spec.faults)
        assert stats["branch_snapshots"] > 0
        assert stats["peeled"] == 0
        assert stats["fallbacks"] == 0
        # The flips must actually be observable (no vacuous equality).
        assert any(run.label != "silent" for run in scalar)

    def test_non_converging_mutants_match_scalar(self):
        """Counter flips never heal: every mutant runs to t_end."""
        spec = counter_spec()
        scalar = run_campaign(counter_factory, spec, warm_start=True)
        batched = run_campaign(counter_factory, spec, batch="digital")
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        assert stats["batched_runs"] == len(spec.faults)
        assert stats["converged"] == 0
        assert stats["fallbacks"] == 0

    def test_traces_bit_identical(self):
        """Spliced golden tails reproduce every scalar sample bitwise."""
        spec = shiftreg_spec()
        scalar = CampaignRunner(shiftreg_factory, spec)
        batched = CampaignRunner(shiftreg_factory, spec)
        completed, leftovers, info = batched.run_batch_digital(
            list(range(len(spec.faults)))
        )
        assert not leftovers and not info["fallback"]
        assert len(completed) == len(spec.faults)
        assert info["converged"] == len(spec.faults)
        for index, (probes, _metrics, _events), _wall in completed:
            ref, _, _ = scalar.run_fault_warm(spec.faults[index])
            for name, trace in ref.items():
                got = probes[name]
                assert np.array_equal(trace.times, got.times)
                assert np.array_equal(
                    trace.values, got.values, equal_nan=True
                )

    def test_single_mutant_batch(self):
        """A k=1 digital batch is just a branch walk plus one mutant."""
        spec = shiftreg_spec()
        scalar = CampaignRunner(shiftreg_factory, spec)
        batched = CampaignRunner(shiftreg_factory, spec)
        completed, leftovers, info = batched.run_batch_digital([0])
        assert not leftovers and not info["fallback"]
        [(index, (probes, _metrics, _events), _wall)] = completed
        assert index == 0
        ref, _, _ = scalar.run_fault_warm(spec.faults[0])
        for name, trace in ref.items():
            got = probes[name]
            assert np.array_equal(trace.times, got.times)
            assert np.array_equal(trace.values, got.values, equal_nan=True)

    def test_auto_mode_batches_digital_faults(self):
        spec = shiftreg_spec()
        batched = run_campaign(shiftreg_factory, spec, batch=True)
        stats = batched.execution["batch"]
        assert stats["mode"] == "auto"
        assert stats["digital_batches"] == 2
        assert stats["analog_batches"] == 0

    def test_analog_mode_leaves_digital_faults_scalar(self):
        """``batch="analog"`` must not touch bit-flip campaigns."""
        spec = shiftreg_spec()
        scalar = run_campaign(shiftreg_factory, spec, warm_start=True)
        batched = run_campaign(shiftreg_factory, spec, batch="analog")
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        assert stats["batches"] == 0
        assert stats["scalar_runs"] == len(spec.faults)


class TestDigitalBatchSupervision:
    def test_budget_falls_back_to_scalar(self):
        """An armed run budget disables splicing for the whole batch.

        Budget ceilings are per run call over the restored suffix, so
        a segmented branch-walk run could trip differently than the
        scalar run it must classify like; the batch detects the armed
        budget and every mutant re-runs on the ordinary scalar path.
        """
        spec = shiftreg_spec()
        scalar = run_campaign(
            shiftreg_factory, spec, warm_start=True, event_budget=10_000_000
        )
        batched = run_campaign(
            shiftreg_factory, spec, batch="digital",
            event_budget=10_000_000,
        )
        assert_same_outcome(scalar, batched)
        stats = batched.execution["batch"]
        assert stats["fallbacks"] == 2
        assert stats["batched_runs"] == 0
        assert stats["scalar_runs"] == len(spec.faults)

    def test_store_roundtrip_and_resume(self, tmp_path):
        spec = shiftreg_spec()
        with CampaignStore(tmp_path / "c.sqlite") as store:
            first = run_campaign(
                shiftreg_factory, spec, batch="digital", store=store
            )
            resumed = run_campaign(
                shiftreg_factory, spec, batch="digital", store=store,
                resume=True,
            )
        assert resumed.execution["completed"] == 0
        assert resumed.execution["skipped"] == len(spec.faults)
        assert to_csv(first) == to_csv(resumed)

    def test_interrupted_batched_campaign_resumes_equal(self, tmp_path):
        """Kill a batched campaign between batch flushes; resume matches.

        Batched campaigns commit one store transaction per batch
        (``record_runs``), so an interrupt lands with the first
        batch's mutants committed and the rest pending; the resumed
        campaign re-plans batches over the survivors only and the
        merged result must equal an uninterrupted scalar campaign.
        """

        class Interrupted(CampaignStore):
            def __init__(self, path, after):
                super().__init__(path)
                self.after = after
                self.commits = 0

            def record_runs(self, *args, **kwargs):
                super().record_runs(*args, **kwargs)
                self.commits += 1
                if self.commits >= self.after:
                    raise KeyboardInterrupt

        spec = shiftreg_spec()
        reference = run_campaign(shiftreg_factory, spec, warm_start=True)
        path = tmp_path / "campaign.db"
        flaky = Interrupted(path, after=1)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(shiftreg_factory, spec, batch="digital", store=flaky)
        flaky.close()
        first_batch = len(spec.faults) // 2
        with CampaignStore(path) as store:
            assert len(
                store.completed_indices(store.campaign_id())
            ) == first_batch
            resumed = run_campaign(
                shiftreg_factory, spec, batch="digital", store=store,
                resume=True,
            )
        assert resumed.execution["skipped"] == first_batch
        assert resumed.execution["completed"] == len(spec.faults) - first_batch
        assert to_csv(resumed) == to_csv(reference)
        with CampaignStore(path) as store:
            loaded = store.load_result()
        assert to_csv(loaded) == to_csv(reference)


class TestBatchModeSelection:
    def test_normalize_batch_mode(self):
        assert normalize_batch_mode(True) == "auto"
        assert normalize_batch_mode(False) == "off"
        assert normalize_batch_mode(None) == "off"
        for mode in BATCH_MODES:
            assert normalize_batch_mode(mode) == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(CampaignError):
            normalize_batch_mode("turbo")

    def test_digital_batch_key(self):
        assert digital_batch_key(BitFlip("top/sr.q[0]", 1e-9)) == "top/sr.q[0]"
        assert digital_batch_key(SETPulse("top/wire", 1e-9, 1e-10)) == "top/wire"
        assert digital_batch_key(object()) is None
