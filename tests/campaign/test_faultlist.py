"""Tests for fault-list generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import (
    analog_injections,
    cycle_times,
    exhaustive_bitflips,
    intra_cycle_times,
    random_analog_injections,
    random_bitflips,
    random_mbus,
    sample,
    set_sweep,
)
from repro.core.errors import CampaignError
from repro.faults import TrapezoidPulse

PULSE = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")


class TestExhaustive:
    def test_product_size(self):
        faults = exhaustive_bitflips(["a", "b"], [1e-6, 2e-6, 3e-6])
        assert len(faults) == 6

    def test_product_contents(self):
        faults = exhaustive_bitflips(["a"], [1e-6])
        assert faults[0].target == "a" and faults[0].time == 1e-6

    def test_empty_rejected(self):
        with pytest.raises(CampaignError):
            exhaustive_bitflips([], [1e-6])

    def test_analog_product(self):
        faults = analog_injections(["n1", "n2"], [1e-6], [PULSE])
        assert len(faults) == 2
        assert {f.node for f in faults} == {"n1", "n2"}


class TestRandom:
    def test_bitflips_deterministic_by_seed(self):
        a = random_bitflips(["x", "y"], (0, 1e-6), 20, seed=7)
        b = random_bitflips(["x", "y"], (0, 1e-6), 20, seed=7)
        assert a == b

    def test_bitflips_differ_across_seeds(self):
        a = random_bitflips(["x", "y"], (0, 1e-6), 20, seed=1)
        b = random_bitflips(["x", "y"], (0, 1e-6), 20, seed=2)
        assert a != b

    def test_bitflips_within_window(self):
        faults = random_bitflips(["x"], (2e-6, 3e-6), 50, seed=0)
        assert all(2e-6 <= f.time <= 3e-6 for f in faults)

    def test_empty_window_rejected(self):
        with pytest.raises(CampaignError):
            random_bitflips(["x"], (1e-6, 1e-6), 5)

    def test_mbus_cluster_adjacent(self):
        targets = [f"q[{i}]" for i in range(8)]
        faults = random_mbus(targets, (0, 1e-6), 10, multiplicity=3, seed=3)
        for f in faults:
            names = f.targets()
            indices = [targets.index(n) for n in names]
            assert indices == list(range(indices[0], indices[0] + 3))

    def test_mbus_too_few_targets(self):
        with pytest.raises(CampaignError):
            random_mbus(["a"], (0, 1e-6), 1, multiplicity=2)

    def test_random_analog_deterministic(self):
        a = random_analog_injections(["n"], (0, 1e-6), [PULSE], 5, seed=9)
        b = random_analog_injections(["n"], (0, 1e-6), [PULSE], 5, seed=9)
        assert [(f.node, f.time) for f in a] == [(f.node, f.time) for f in b]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10000))
    def test_seed_reproducibility_property(self, seed):
        a = random_bitflips(["p", "q", "r"], (0, 1e-3), 10, seed=seed)
        b = random_bitflips(["p", "q", "r"], (0, 1e-3), 10, seed=seed)
        assert a == b


class TestSampling:
    def test_sample_without_replacement(self):
        faults = exhaustive_bitflips([f"t{i}" for i in range(10)], [1e-6])
        chosen = sample(faults, 4, seed=1)
        assert len(chosen) == 4
        assert len(set(id(f) for f in chosen)) == 4

    def test_sample_too_many(self):
        faults = exhaustive_bitflips(["a"], [1e-6])
        with pytest.raises(CampaignError):
            sample(faults, 2)


class TestTimeGenerators:
    def test_cycle_times(self):
        times = cycle_times(1e-6, 20e-9, 5)
        assert times == pytest.approx([1e-6 + k * 20e-9 for k in range(5)])

    def test_cycle_times_phase(self):
        times = cycle_times(0.0, 20e-9, 2, phase=0.25)
        assert times == pytest.approx([5e-9, 25e-9])

    def test_cycle_times_validation(self):
        with pytest.raises(CampaignError):
            cycle_times(0.0, -1.0, 2)
        with pytest.raises(CampaignError):
            cycle_times(0.0, 1e-9, 2, phase=1.5)

    def test_intra_cycle_times_centred(self):
        times = intra_cycle_times(0.0, 20e-9, 4)
        assert times == pytest.approx([2.5e-9, 7.5e-9, 12.5e-9, 17.5e-9])

    def test_set_sweep(self):
        faults = set_sweep("wire", [1e-9, 2e-9], 5e-10)
        assert len(faults) == 2
        assert all(f.width == 5e-10 for f in faults)
