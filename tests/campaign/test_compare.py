"""Tests for golden-vs-faulty trace comparison."""

import numpy as np
import pytest

from repro.campaign import compare_probe_sets, compare_traces
from repro.core import L0, L1, Logic, STEP, Trace
from repro.core.errors import MeasurementError


def analog(name, values, dt=1e-9):
    times = np.arange(len(values)) * dt
    return Trace.from_arrays(name, times, values)


def digital(name, samples):
    tr = Trace(name, interp=STEP)
    for t, v in samples:
        tr.append(t, v)
    return tr


class TestAnalogComparison:
    def test_identical_match(self):
        a = analog("v", [1.0, 2.0, 3.0])
        b = analog("v", [1.0, 2.0, 3.0])
        result = compare_traces(a, b, tolerance=0.01)
        assert result.match
        assert result.first_divergence is None
        assert result.mismatch_time == 0.0
        assert result.final_match

    def test_within_tolerance_matches(self):
        a = analog("v", [1.0, 2.0, 3.0])
        b = analog("v", [1.004, 2.0, 2.996])
        assert compare_traces(a, b, tolerance=0.01).match

    def test_outside_tolerance_diverges(self):
        a = analog("v", [1.0, 2.0, 3.0, 4.0])
        b = analog("v", [1.0, 2.5, 3.0, 4.0])
        result = compare_traces(a, b, tolerance=0.01)
        assert result.diverged
        assert result.first_divergence == pytest.approx(1e-9)
        assert result.max_deviation == pytest.approx(0.5)
        assert result.final_match  # recovered by the end

    def test_final_mismatch_flagged(self):
        a = analog("v", [1.0, 1.0, 1.0])
        b = analog("v", [1.0, 1.0, 9.0])
        result = compare_traces(a, b, tolerance=0.01)
        assert not result.final_match

    def test_mismatch_time_accumulates(self):
        a = analog("v", [0.0] * 10)
        values = [0.0] * 10
        values[3] = 1.0
        values[4] = 1.0
        b = analog("v", values)
        result = compare_traces(a, b, tolerance=0.1)
        assert result.mismatch_time >= 2e-9

    def test_comparison_window(self):
        a = analog("v", [0.0, 5.0, 0.0, 0.0])
        b = analog("v", [0.0, 0.0, 0.0, 0.0])
        # Full window diverges; window after the glitch matches.
        assert compare_traces(a, b, tolerance=0.1).diverged
        assert compare_traces(a, b, tolerance=0.1, t0=2e-9).match

    def test_empty_window_raises(self):
        a = analog("v", [0.0, 1.0])
        b = analog("v", [0.0, 1.0])
        with pytest.raises(MeasurementError):
            compare_traces(a, b, t0=5.0, t1=1.0)


class TestDigitalComparison:
    def test_exact_match_required(self):
        a = digital("q", [(0, L0), (5e-9, L1)])
        b = digital("q", [(0, L0), (5e-9, L1)])
        assert compare_traces(a, b, tolerance=0.0).match

    def test_shifted_edge_diverges(self):
        a = digital("q", [(0, L0), (5e-9, L1)])
        b = digital("q", [(0, L0), (7e-9, L1)])
        result = compare_traces(a, b, tolerance=0.0)
        assert result.diverged
        assert result.first_divergence == pytest.approx(5e-9)

    def test_x_vs_value_diverges(self):
        a = digital("q", [(0, L0), (5e-9, L1)])
        b = digital("q", [(0, L0), (5e-9, Logic.X)])
        result = compare_traces(a, b, tolerance=0.0)
        assert result.diverged
        assert result.max_deviation == float("inf")

    def test_x_vs_x_matches(self):
        a = digital("q", [(0, Logic.X), (5e-9, L1)])
        b = digital("q", [(0, Logic.X), (5e-9, L1)])
        assert compare_traces(a, b, tolerance=0.0).match


class TestProbeSets:
    def test_mixed_set(self):
        golden = {
            "out": digital("out", [(0, L0), (5e-9, L1)]),
            "vctrl": analog("vctrl", [2.5] * 10),
        }
        faulty = {
            "out": digital("out", [(0, L0), (5e-9, L1)]),
            "vctrl": analog("vctrl", [2.5] * 9 + [2.6]),
        }
        results = compare_probe_sets(golden, faulty, analog_tolerance=0.01)
        assert results["out"].match
        assert results["vctrl"].diverged

    def test_analog_tolerance_applies_only_to_linear(self):
        golden = {"vctrl": analog("vctrl", [2.5] * 10)}
        faulty = {"vctrl": analog("vctrl", [2.505] * 10)}
        results = compare_probe_sets(golden, faulty, analog_tolerance=0.01)
        assert results["vctrl"].match

    def test_per_name_override(self):
        golden = {"vctrl": analog("vctrl", [2.5] * 10)}
        faulty = {"vctrl": analog("vctrl", [2.505] * 10)}
        results = compare_probe_sets(
            golden, faulty, tolerances={"vctrl": 0.001}
        )
        assert results["vctrl"].diverged

    def test_probe_set_mismatch_raises(self):
        with pytest.raises(MeasurementError):
            compare_probe_sets(
                {"a": analog("a", [0.0, 0.0])}, {"b": analog("b", [0.0, 0.0])}
            )


class TestDigitalEdgeTolerance:
    """compare_digital_edges: edge-time-tolerant clock comparison."""

    def _clock(self, name, edges, t_end=100e-9):
        tr = digital(name, [(0.0, L0)])
        level = L0
        for t in edges:
            level = L1 if level is L0 else L0
            tr.append(t, level)
        tr.append(t_end, level)
        return tr

    def test_identical_clocks_match(self):
        from repro.campaign import compare_probe_sets
        from repro.campaign.compare import compare_digital_edges

        a = self._clock("clk", [10e-9, 20e-9, 30e-9])
        b = self._clock("clk", [10e-9, 20e-9, 30e-9])
        assert compare_digital_edges(a, b, 1e-9).match

    def test_small_shift_within_tolerance(self):
        from repro.campaign.compare import compare_digital_edges

        a = self._clock("clk", [10e-9, 20e-9, 30e-9])
        b = self._clock("clk", [10.4e-9, 20e-9, 29.7e-9])
        result = compare_digital_edges(a, b, 0.5e-9)
        assert result.match
        assert result.max_deviation == pytest.approx(0.4e-9)

    def test_large_shift_diverges(self):
        from repro.campaign.compare import compare_digital_edges

        a = self._clock("clk", [10e-9, 20e-9, 30e-9])
        b = self._clock("clk", [10e-9, 22e-9, 30e-9])
        result = compare_digital_edges(a, b, 0.5e-9)
        assert result.diverged
        assert result.first_divergence == pytest.approx(20e-9)

    def test_extra_edge_diverges(self):
        from repro.campaign.compare import compare_digital_edges

        a = self._clock("clk", [10e-9, 20e-9])
        b = self._clock("clk", [10e-9, 20e-9, 30e-9, 31e-9])
        result = compare_digital_edges(a, b, 1e-9)
        assert result.diverged

    def test_probe_set_uses_time_tolerance(self):
        from repro.campaign import compare_probe_sets

        golden = {"clk": self._clock("clk", [10e-9, 20e-9])}
        faulty = {"clk": self._clock("clk", [10.2e-9, 20e-9])}
        exact = compare_probe_sets(golden, faulty)
        tolerant = compare_probe_sets(
            golden, faulty, time_tolerances={"clk": 0.5e-9}
        )
        assert exact["clk"].diverged
        assert tolerant["clk"].match
