"""Tests for the fault dictionary."""

import pytest

from repro.campaign import CampaignSpec, Design, exhaustive_bitflips, run_campaign
from repro.campaign.dictionary import FaultDictionary, Signature, signature_of
from repro.core import Component, L0, Simulator
from repro.core.errors import CampaignError
from repro.digital import Bus, ClockGen, Counter, ParityGen


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
        "cnt[2]": sim.probe(q.bits[2]),
    }
    return Design(sim=sim, root=top, probes=probes)


@pytest.fixture(scope="module")
def result():
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [33e-9, 73e-9]
    )
    spec = CampaignSpec(name="dict", faults=faults, t_end=300e-9,
                        outputs=["parity"])
    return run_campaign(factory, spec)


class TestSignature:
    def test_signature_is_hashable_and_stable(self, result):
        run = result.runs[0]
        a = signature_of(run)
        b = signature_of(run)
        assert a == b
        assert hash(a) == hash(b)

    def test_bucket_quantisation(self, result):
        run = result.runs[0]
        fine = signature_of(run, time_bucket=1e-9)
        coarse = signature_of(run, time_bucket=1.0)
        assert fine.latency_bucket >= coarse.latency_bucket

    def test_bad_bucket(self, result):
        with pytest.raises(CampaignError):
            signature_of(result.runs[0], time_bucket=0.0)

    def test_describe(self, result):
        text = signature_of(result.runs[0]).describe()
        assert "->" in text or "(none)" in text

    def test_order_can_be_dropped(self, result):
        sig = signature_of(result.runs[0], include_order=False)
        assert sig.order == ()


class TestDictionary:
    def test_index_covers_all_faults(self, result):
        dictionary = FaultDictionary(result)
        total = sum(
            len(dictionary.candidates(s)) for s in dictionary.signatures()
        )
        assert total == len(result)

    def test_lookup_roundtrip(self, result):
        dictionary = FaultDictionary(result)
        fault = result.runs[0].fault
        signature = dictionary.signature_for(fault)
        assert fault in dictionary.candidates(signature)

    def test_unknown_fault_rejected(self, result):
        from repro.faults import BitFlip

        dictionary = FaultDictionary(result)
        with pytest.raises(CampaignError):
            dictionary.signature_for(BitFlip("ghost", 1e-9))

    def test_unseen_signature_has_no_candidates(self, result):
        dictionary = FaultDictionary(result)
        ghost = Signature("failure", ("nothing",), ("nothing",), 0)
        faults, n = dictionary.diagnose(ghost)
        assert faults == [] and n == 0

    def test_distinguishability_bounds(self, result):
        dictionary = FaultDictionary(result)
        assert 0.0 <= dictionary.distinguishability() <= 1.0

    def test_coarser_buckets_reduce_distinguishability(self, result):
        fine = FaultDictionary(result, time_bucket=1e-9)
        coarse = FaultDictionary(result, time_bucket=1.0)
        assert coarse.distinguishability() <= fine.distinguishability()

    def test_ambiguity_histogram_sums(self, result):
        dictionary = FaultDictionary(result)
        histogram = dictionary.ambiguity_histogram()
        assert sum(size * count for size, count in histogram.items()) \
            == len(result)

    def test_largest_class(self, result):
        dictionary = FaultDictionary(result)
        signature, faults = dictionary.largest_ambiguity_class()
        assert len(faults) >= 1
        assert dictionary.candidates(signature) == faults

    def test_report_text(self, result):
        dictionary = FaultDictionary(result)
        text = dictionary.report()
        assert "distinguishability" in text
        assert "signatures" in text

    def test_empty_campaign_rejected(self):
        from repro.campaign.results import CampaignResult

        class FakeSpec:
            name = "empty"

        with pytest.raises(CampaignError):
            FaultDictionary(CampaignResult(FakeSpec()))


class TestRoundTrip:
    """to_dict / from_dict round trips and spec-serialization identity."""

    def test_to_dict_from_dict_exact(self, result):
        dictionary = FaultDictionary(result)
        exported = dictionary.to_dict()
        reloaded = FaultDictionary.from_dict(exported)
        assert reloaded.to_dict() == exported

    def test_signature_ordering_survives_reload(self, result):
        dictionary = FaultDictionary(result)
        reloaded = FaultDictionary.from_dict(dictionary.to_dict())
        assert reloaded.signatures() == dictionary.signatures()
        for signature in dictionary.signatures():
            assert reloaded.candidates(signature) == [
                fault.describe()
                for fault in dictionary.candidates(signature)
            ]

    def test_reloaded_metrics_match(self, result):
        dictionary = FaultDictionary(result)
        reloaded = FaultDictionary.from_dict(dictionary.to_dict())
        assert reloaded.distinguishability() \
            == dictionary.distinguishability()
        assert reloaded.ambiguity_histogram() \
            == dictionary.ambiguity_histogram()
        assert reloaded.report() == dictionary.report()

    def test_signature_for_unavailable_after_reload(self, result):
        dictionary = FaultDictionary(result)
        reloaded = FaultDictionary.from_dict(dictionary.to_dict())
        fault = result.runs[0].fault
        with pytest.raises(CampaignError):
            reloaded.signature_for(fault)

    def test_malformed_export_rejected(self):
        with pytest.raises(CampaignError):
            FaultDictionary.from_dict({"n_faults": 3})

    def test_spec_round_trip_plans_identical_batches(self, result):
        """spec_to_dict/spec_from_dict preserve batch planning exactly.

        Distributed shards ship the spec as a dict; the worker's
        runner must split the reconstructed spec into the very same
        batches (kind, checkpoint, member order) the serial runner
        would use, or shard results stop being comparable.
        """
        from repro.campaign.runner import CampaignRunner
        from repro.store.serialize import spec_from_dict, spec_to_dict

        spec = result.spec
        clone = spec_from_dict(spec_to_dict(spec))
        pending = list(range(len(spec.faults)))
        original = CampaignRunner(factory, spec)._plan_batches(pending)
        round_tripped = CampaignRunner(factory, clone)._plan_batches(pending)
        assert round_tripped == original
        assert [f.describe() for f in clone.faults] \
            == [f.describe() for f in spec.faults]
