"""Unit tests for propagation-model helpers."""

import networkx as nx
import pytest

from repro.campaign.classify import Classification, SILENT
from repro.campaign.compare import TraceComparison
from repro.campaign.propagation import (
    build_propagation_graph,
    divergence_order,
    dominant_paths,
    format_propagation_report,
    propagation_path,
    reachable_outputs,
)
from repro.campaign.results import CampaignResult, FaultResult
from repro.core.errors import CampaignError
from repro.faults import BitFlip


def cmp_at(name, t):
    return TraceComparison(
        name=name, match=False, first_divergence=t, last_divergence=t,
        mismatch_time=1e-9, max_deviation=1.0, final_match=True,
    )


def cmp_ok(name):
    return TraceComparison(
        name=name, match=True, first_divergence=None, last_divergence=None,
        mismatch_time=0.0, max_deviation=0.0, final_match=True,
    )


def fake_result(runs):
    class FakeSpec:
        name = "fake"

    result = CampaignResult(FakeSpec())
    for fault, comparisons in runs:
        result.add(FaultResult(
            fault=fault,
            classification=Classification(label=SILENT),
            comparisons=comparisons,
        ))
    return result


class TestDivergenceOrder:
    def test_sorted_by_time(self):
        comparisons = {
            "late": cmp_at("late", 3e-9),
            "early": cmp_at("early", 1e-9),
            "clean": cmp_ok("clean"),
        }
        order = divergence_order(comparisons)
        assert [name for _t, name in order] == ["early", "late"]

    def test_empty_when_all_match(self):
        assert divergence_order({"a": cmp_ok("a")}) == []


class TestPropagationPath:
    def test_chain_from_fault_target(self):
        fault = BitFlip("top/ff.q", 0.0)
        comparisons = {
            "mid": cmp_at("mid", 2e-9),
            "out": cmp_at("out", 5e-9),
        }
        path = propagation_path(fault, comparisons)
        assert path[0][0] == "top/ff.q"
        assert path[0][1] == "mid"
        assert path[1] == ("mid", "out", pytest.approx(3e-9))

    def test_empty_for_silent_run(self):
        fault = BitFlip("top/ff.q", 0.0)
        assert propagation_path(fault, {"a": cmp_ok("a")}) == []


class TestGraphBuild:
    def test_edge_counts_accumulate(self):
        fault = BitFlip("top/ff.q", 0.0)
        runs = [
            (fault, {"out": cmp_at("out", 1e-9)}),
            (fault, {"out": cmp_at("out", 2e-9)}),
        ]
        graph = build_propagation_graph(fake_result(runs))
        assert graph["top/ff.q"]["out"]["count"] == 2
        assert graph.nodes["out"]["hits"] == 2

    def test_mean_latency(self):
        fault = BitFlip("top/ff.q", 0.0)
        runs = [
            (fault, {"a": cmp_at("a", 1e-9), "b": cmp_at("b", 3e-9)}),
            (fault, {"a": cmp_at("a", 1e-9), "b": cmp_at("b", 5e-9)}),
        ]
        graph = build_propagation_graph(fake_result(runs))
        assert graph["a"]["b"]["mean_latency"] == pytest.approx(3e-9)

    def test_dominant_paths_ordering(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b", count=5, mean_latency=0.0)
        graph.add_edge("b", "c", count=9, mean_latency=0.0)
        top = dominant_paths(graph, n=1)
        assert top[0][:2] == ("b", "c")

    def test_format_empty_graph(self):
        text = format_propagation_report(nx.DiGraph())
        assert "no error propagation" in text

    def test_reachable_outputs(self):
        graph = nx.DiGraph()
        graph.add_edge("fault", "internal", count=1, mean_latency=0.0)
        graph.add_edge("internal", "out1", count=1, mean_latency=0.0)
        # "out2" never diverged in any run, so it is absent from the
        # propagation graph and therefore not reachable.
        reached = reachable_outputs(graph, ["out1", "out2"])
        assert reached == ["out1"]

    def test_reachable_outputs_empty_graph(self):
        with pytest.raises(CampaignError):
            reachable_outputs(nx.DiGraph(), ["out"])
