"""Warm-started campaigns must be indistinguishable from cold ones.

The contract: ``run_campaign(..., warm_start=True)`` produces the same
golden traces, the same per-fault classifications and the same CSV
export as the cold-start flow, while executing fewer kernel events.
"""

import multiprocessing
import sys

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    analog_injections,
    exhaustive_bitflips,
    run_campaign,
    to_csv,
)
from repro.campaign.runner import CampaignRunner
from repro.core import Component, L0, Simulator
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.faults import ParametricFault, TrapezoidPulse


def counter_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "pargen", q, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "cnt[0]": sim.probe(q.bits[0]),
        "cnt[3]": sim.probe(q.bits[3]),
    }
    return Design(sim=sim, root=top, probes=probes)


def counter_spec(faults=None):
    if faults is None:
        faults = exhaustive_bitflips(
            ["top/counter.q[0]", "top/counter.q[3]"], [33e-9, 55e-9, 120e-9]
        )
    return CampaignSpec(
        name="warm-test", faults=faults, t_end=200e-9, outputs=["parity"]
    )


def pll_factory():
    from tests.conftest import make_fast_pll

    sim = Simulator(dt=1e-9)
    pll = make_fast_pll(sim, preset_locked=True)
    probes = {
        "vctrl": sim.probe(pll.vctrl),
        "fout": sim.probe(pll.vco_out, min_interval=0.0),
    }
    return Design(sim=sim, root=pll, probes=probes)


def pll_spec():
    pulse = TrapezoidPulse(rt=100e-12, ft=300e-12, pw=500e-12, pa=5e-3)
    faults = analog_injections(["pll.icp"], [4.0e-6, 5.0e-6, 6.0e-6], [pulse])
    return CampaignSpec(
        name="pll-warm",
        faults=faults,
        t_end=8e-6,
        outputs=["vctrl"],
        analog_tolerance=0.02,
    )


def assert_same_outcome(cold, warm):
    assert to_csv(cold) == to_csv(warm)
    assert set(cold.golden_probes) == set(warm.golden_probes)
    for name, golden in cold.golden_probes.items():
        other = warm.golden_probes[name]
        assert golden._times == other._times
        assert golden._values == other._values
    for run_cold, run_warm in zip(cold.runs, warm.runs):
        assert run_cold.label == run_warm.label
        for name in run_cold.comparisons:
            assert (
                run_cold.comparisons[name].match
                == run_warm.comparisons[name].match
            )


class TestDigitalWarmStart:
    def test_matches_cold(self):
        spec = counter_spec()
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(counter_factory, spec, warm_start=True)
        assert_same_outcome(cold, warm)

    def test_executes_fewer_events(self):
        spec = counter_spec()
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(counter_factory, spec, warm_start=True)
        assert warm.execution["mode"] == "warm"
        assert warm.execution["checkpoints"] >= 1
        assert (
            warm.execution["kernel_events"] < cold.execution["kernel_events"]
        )

    def test_checkpoint_granularity(self):
        spec = counter_spec()
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(
            counter_factory, spec, warm_start=True, checkpoint_every=50e-9
        )
        assert_same_outcome(cold, warm)
        # 33/55/120 ns quantised to 50 ns -> {0, 50, 100} (0 merges
        # with the base checkpoint).
        assert warm.execution["checkpoints"] == 3

    def test_max_checkpoints_thinning(self):
        spec = counter_spec()
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(
            counter_factory, spec, warm_start=True, max_checkpoints=2
        )
        assert_same_outcome(cold, warm)
        assert warm.execution["checkpoints"] == 2

    def test_single_checkpoint_degrades_to_full_replay(self):
        spec = counter_spec()
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(
            counter_factory, spec, warm_start=True, max_checkpoints=1
        )
        assert_same_outcome(cold, warm)
        assert warm.execution["checkpoints"] == 1

    def test_invalid_max_checkpoints_rejected(self):
        from repro.core.errors import CampaignError

        with pytest.raises(CampaignError):
            run_campaign(
                counter_factory,
                counter_spec(),
                warm_start=True,
                max_checkpoints=0,
            )

    def test_warm_parallel_matches_cold(self):
        if sys.platform == "win32" or (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        spec = counter_spec()
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(
            counter_factory, spec, warm_start=True, workers=2
        )
        assert_same_outcome(cold, warm)
        assert warm.execution["workers"] == 2

    def test_checkpoint_times_schedule(self):
        runner = CampaignRunner(counter_factory, counter_spec())
        times = runner.checkpoint_times()
        assert times[0] == 0.0
        assert times == sorted(set(times))
        # one candidate per distinct injection time inside the window
        assert set(times) == {0.0, 33e-9, 55e-9, 120e-9}

    def test_parametric_fault_restores_strictly_before(self):
        fault = ParametricFault(
            "top/ck", "period", factor=1.5, t_start=50e-9
        )
        spec = counter_spec(faults=[fault])
        cold = run_campaign(counter_factory, spec)
        warm = run_campaign(counter_factory, spec, warm_start=True)
        assert_same_outcome(cold, warm)


class TestMixedPLLWarmStart:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = pll_spec()
        cold = run_campaign(pll_factory, spec)
        warm = run_campaign(pll_factory, spec, warm_start=True)
        return cold, warm

    def test_matches_cold(self, outcome):
        cold, warm = outcome
        assert_same_outcome(cold, warm)

    def test_faults_are_observable(self, outcome):
        cold, _ = outcome
        # Guard against vacuous equality: the pulses must actually
        # disturb the loop, otherwise "identical classifications"
        # would hold for any broken execution path too.
        assert any(run.label != "silent" for run in cold.runs)

    def test_fault_events_reduced(self, outcome):
        cold, warm = outcome
        # Injections sit in the second half of the window, so each
        # warm run replays less than half of its cold counterpart.
        assert warm.execution["fault_events"] * 2 < (
            cold.execution["fault_events"]
        )


class TestQuietedProbeRestore:
    """Warm restores after a run that *quieted* a probe.

    A fault can leave a probe trace with fewer samples than the golden
    run had recorded by the *next* fault's checkpoint (an upset that
    halts activity stops the probe toggling).  A checkpoint restore
    truncates traces to the golden length, so without reloading the
    golden record first, the next run compares against a corrupted
    prefix and mislabels — divergence apparently *before* its own
    injection time.  Regression test for exactly that leak, on the
    accumulator CPU whose PC upsets halt the program early.
    """

    @staticmethod
    def _cpu_factory():
        from repro.digital import Accumulator8, assemble

        program = assemble([
            ("LDI", 5),
            ("OUT",),
            ("SUB", 1),
            ("JNZ", 1),
            ("OUT",),
            ("HALT",),
        ])
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9, parent=top)
        cpu = Accumulator8(sim, "cpu", clk, program, parent=top)
        probes = {
            "out[0]": sim.probe(cpu.out.bits[0]),
            "out_valid": sim.probe(cpu.out_valid),
            "halted": sim.probe(cpu.halted),
        }
        return Design(sim=sim, root=top, probes=probes)

    def _spec(self):
        # Consecutive upsets on the same PC bit: the first halts the
        # CPU early (quiet probes), the second restores a *later*
        # checkpoint than the first left samples for.
        faults = exhaustive_bitflips(
            ["top/cpu.pc[2]"], [35e-9, 45e-9, 55e-9, 65e-9]
        )
        return CampaignSpec(
            name="warm-quiet", faults=faults, t_end=800e-9,
            outputs=["out[0]", "out_valid", "halted"],
        )

    def test_warm_matches_cold_after_quieting_fault(self):
        cold = run_campaign(self._cpu_factory, self._spec())
        warm = run_campaign(self._cpu_factory, self._spec(),
                            warm_start=True)
        assert to_csv(warm) == to_csv(cold)

    def test_no_divergence_before_injection(self):
        warm = run_campaign(self._cpu_factory, self._spec(),
                            warm_start=True)
        for run in warm:
            for cmp_result in run.comparisons.values():
                if cmp_result.diverged:
                    assert cmp_result.first_divergence \
                        >= run.fault.time - 1e-12
