"""Tests for fault classification."""

from repro.campaign import (
    FAILURE,
    LATENT,
    SILENT,
    TRANSIENT_ERROR,
    classify,
)
from repro.campaign.compare import TraceComparison


def cmp_result(name, diverged=False, final_match=True, first=None,
               mismatch=0.0):
    return TraceComparison(
        name=name,
        match=not diverged,
        first_divergence=first if diverged else None,
        last_divergence=first if diverged else None,
        mismatch_time=mismatch,
        max_deviation=1.0 if diverged else 0.0,
        final_match=final_match,
    )


class TestLabels:
    def test_all_matching_is_silent(self):
        comparisons = {
            "out": cmp_result("out"),
            "state": cmp_result("state"),
        }
        assert classify(comparisons, ["out"]).label == SILENT

    def test_internal_persistent_divergence_is_latent(self):
        comparisons = {
            "out": cmp_result("out"),
            "state": cmp_result("state", diverged=True, final_match=False,
                                first=1e-6),
        }
        result = classify(comparisons, ["out"])
        assert result.label == LATENT
        assert result.latent_traces == ["state"]

    def test_internal_healed_divergence_is_silent(self):
        comparisons = {
            "out": cmp_result("out"),
            "state": cmp_result("state", diverged=True, final_match=True,
                                first=1e-6),
        }
        result = classify(comparisons, ["out"])
        assert result.label == SILENT
        assert result.diverged_internal == ["state"]

    def test_recovered_output_is_transient_error(self):
        comparisons = {
            "out": cmp_result("out", diverged=True, final_match=True,
                              first=2e-6, mismatch=1e-7),
        }
        result = classify(comparisons, ["out"])
        assert result.label == TRANSIENT_ERROR
        assert result.first_output_divergence == 2e-6
        assert result.output_mismatch_time == 1e-7

    def test_persistent_output_divergence_is_failure(self):
        comparisons = {
            "out": cmp_result("out", diverged=True, final_match=False,
                              first=2e-6),
        }
        assert classify(comparisons, ["out"]).label == FAILURE

    def test_failure_dominates_latent(self):
        comparisons = {
            "out": cmp_result("out", diverged=True, final_match=False,
                              first=3e-6),
            "state": cmp_result("state", diverged=True, final_match=False,
                                first=1e-6),
        }
        result = classify(comparisons, ["out"])
        assert result.label == FAILURE
        assert result.diverged_internal == ["state"]

    def test_earliest_output_divergence_reported(self):
        comparisons = {
            "out1": cmp_result("out1", diverged=True, first=5e-6),
            "out2": cmp_result("out2", diverged=True, first=2e-6),
        }
        result = classify(comparisons, ["out1", "out2"])
        assert result.first_output_divergence == 2e-6
        assert sorted(result.diverged_outputs) == ["out1", "out2"]


class TestSeverity:
    def test_severity_ordering(self):
        comparisons_silent = {"out": cmp_result("out")}
        comparisons_failure = {
            "out": cmp_result("out", diverged=True, final_match=False,
                              first=1e-6)
        }
        silent = classify(comparisons_silent, ["out"])
        failure = classify(comparisons_failure, ["out"])
        assert failure.severity > silent.severity
        assert not silent.is_error()
        assert failure.is_error()
