"""Tests for supervised campaign execution.

Covers the robustness contract end to end: run budgets and guards
armed on faulty runs, retry with backoff, quarantine, worker crash
and deadline supervision, serial fallback without ``fork``, and the
statuses flowing through results, reports and the store.
"""

import logging
import multiprocessing
import os
import sys
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    Design,
    RetryPolicy,
    RUN_CRASHED,
    RUN_DIVERGED,
    RUN_ERROR,
    RUN_OK,
    RUN_QUARANTINED,
    RUN_TIMEOUT,
    classify_failure,
    exhaustive_bitflips,
    execution_summary,
    full_report,
    run_campaign,
)
from repro.core import (
    BudgetExceededError,
    Component,
    L0,
    NumericalDivergenceError,
    Simulator,
    WorkerCrashError,
)
from repro.core.errors import ReproError, SimulationError
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.store import SCHEMA_VERSION, CampaignStore

needs_fork = pytest.mark.skipif(
    sys.platform == "win32"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel campaigns need the fork start method",
)


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {"parity": sim.probe(par), "cnt[0]": sim.probe(q.bits[0])}
    return Design(sim=sim, root=top, probes=probes)


def make_spec(name="sup"):
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [33e-9, 55e-9, 77e-9]
    )
    return CampaignSpec(name=name, faults=faults, t_end=300e-9,
                        outputs=["parity"])


def targets_time(fault):
    return fault.targets()[0], fault.time


def hook_raising_on(target, t_inj, exc_type=RuntimeError):
    def hook(design, fault):
        if targets_time(fault) == (target, t_inj):
            raise exc_type("injected test failure")
        return {}

    return hook


FAST_RETRY = RetryPolicy(attempts=2, backoff_s=0.01)


class TestClassifyFailure:
    def test_mapping(self):
        assert classify_failure(BudgetExceededError("b")) == RUN_TIMEOUT
        assert classify_failure(NumericalDivergenceError("n")) == RUN_DIVERGED
        assert classify_failure(WorkerCrashError("w")) == RUN_CRASHED
        assert classify_failure(SimulationError("s")) == RUN_ERROR
        assert classify_failure(ValueError("v")) == RUN_ERROR


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(attempts=5, backoff_s=1.0, backoff_cap_s=3.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 3.0  # capped
        assert policy.delay(4) == 3.0

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff_s=-1.0)


class TestSerialSupervision:
    def test_collect_records_status_and_attempts(self):
        result = run_campaign(
            factory, make_spec(),
            metric_hooks=[hook_raising_on("top/counter.q[2]", 55e-9)],
            on_error="collect", retry=FAST_RETRY,
        )
        assert len(result.runs) == 11
        (err,) = result.errors
        assert err.status == RUN_ERROR
        assert err.attempts == 2
        assert err.quarantined
        assert "[error]" in err.describe()
        assert "(2 attempts)" in err.describe()

    def test_retry_then_succeed(self, tmp_path):
        marker = tmp_path / "failed-once"

        def flaky(design, fault):
            if targets_time(fault) == ("top/counter.q[1]", 33e-9):
                if not marker.exists():
                    marker.write_text("x")
                    raise RuntimeError("transient glitch")
            return {}

        result = run_campaign(factory, make_spec(), metric_hooks=[flaky],
                              on_error="collect", retry=FAST_RETRY)
        assert not result.errors
        assert len(result.runs) == 12
        assert result.execution["retries"] == 1
        assert result.execution["quarantined"] == 0

    def test_retries_zero_disables(self):
        result = run_campaign(
            factory, make_spec(),
            metric_hooks=[hook_raising_on("top/counter.q[2]", 55e-9)],
            on_error="collect", retries=0,
        )
        (err,) = result.errors
        assert err.attempts == 1
        assert result.execution["retries"] == 0

    def test_raise_mode_propagates_first_error(self):
        with pytest.raises(RuntimeError):
            run_campaign(
                factory, make_spec(),
                metric_hooks=[hook_raising_on("top/counter.q[2]", 55e-9)],
                on_error="raise",
            )

    def test_event_budget_classifies_timeout(self):
        result = run_campaign(factory, make_spec(), on_error="collect",
                              event_budget=40, retries=0)
        assert len(result.errors) == 12
        assert all(err.status == RUN_TIMEOUT for err in result.errors)
        assert result.execution["timeouts"] == 12
        assert "BudgetExceededError" in result.errors[0].message

    def test_status_counts(self):
        result = run_campaign(
            factory, make_spec(),
            metric_hooks=[hook_raising_on("top/counter.q[2]", 55e-9)],
            on_error="collect", retry=FAST_RETRY,
        )
        counts = result.status_counts()
        assert counts[RUN_OK] == 11
        assert counts[RUN_ERROR] == 1
        assert counts[RUN_QUARANTINED] == 1

    def test_execution_summary_renders_supervision(self):
        result = run_campaign(
            factory, make_spec(),
            metric_hooks=[hook_raising_on("top/counter.q[2]", 55e-9)],
            on_error="collect", retry=FAST_RETRY,
        )
        text = execution_summary(result)
        assert "retries" in text
        assert "quarantined" in text
        report = full_report(result)
        assert "[error]" in report


class TestSerialFallback:
    def test_missing_fork_degrades_to_serial(self, monkeypatch, caplog):
        monkeypatch.setattr(
            CampaignRunner, "_fork_context", staticmethod(lambda: None)
        )
        with caplog.at_level(logging.WARNING, logger="repro.campaign"):
            result = run_campaign(factory, make_spec(), workers=4)
        assert len(result.runs) == 12
        assert any("falling back to serial" in rec.message
                   for rec in caplog.records)


@needs_fork
class TestParallelSupervision:
    def test_collect_with_raising_worker(self, tmp_path):
        store = CampaignStore(tmp_path / "c.sqlite")
        with store:
            result = run_campaign(
                factory, make_spec(),
                metric_hooks=[hook_raising_on("top/counter.q[2]", 55e-9)],
                workers=3, on_error="collect", retry=FAST_RETRY,
                store=store,
            )
            assert len(result.runs) == 11
            (err,) = result.errors
            assert err.status == RUN_ERROR
            assert err.attempts == 2
            # The store holds every completed row plus the error row.
            campaign_id = store.campaign_id("sup")
            assert len(store.completed_indices(campaign_id)) == 11
            stored_errors = store.load_errors(
                campaign_id, make_spec().faults
            )
            assert [e.index for e in stored_errors] == [err.index]
            assert stored_errors[0].quarantined

    def test_collect_with_sigkilled_worker(self, tmp_path):
        def killer(design, fault):
            if targets_time(fault) == ("top/counter.q[0]", 77e-9):
                os.kill(os.getpid(), 9)
            return {}

        store = CampaignStore(tmp_path / "c.sqlite")
        with store:
            result = run_campaign(
                factory, make_spec("kill"), metric_hooks=[killer],
                workers=3, on_error="collect", retry=FAST_RETRY,
                store=store,
            )
            assert len(result.runs) + len(result.errors) == 12
            (err,) = result.errors
            assert err.status == RUN_CRASHED
            assert err.attempts == 2
            assert "exitcode -9" in err.message
            assert result.execution["crashed"] == 1
            # Every completed run was persisted despite the dead worker.
            campaign_id = store.campaign_id("kill")
            assert len(store.completed_indices(campaign_id)) == 11

    def test_deadline_kill_classifies_timeout(self):
        def sleeper(design, fault):
            if targets_time(fault) == ("top/counter.q[1]", 33e-9):
                time.sleep(60)
            return {}

        result = run_campaign(
            factory, make_spec(), metric_hooks=[sleeper],
            workers=3, on_error="collect", timeout=0.5, retries=0,
        )
        assert len(result.runs) == 11
        (err,) = result.errors
        assert err.status == RUN_TIMEOUT
        assert result.execution["timeouts"] == 1

    def test_raise_mode_propagates_crash(self):
        def killer(design, fault):
            if targets_time(fault) == ("top/counter.q[0]", 77e-9):
                os.kill(os.getpid(), 9)
            return {}

        with pytest.raises(WorkerCrashError):
            run_campaign(factory, make_spec(), metric_hooks=[killer],
                         workers=3, on_error="raise")

    def test_matches_serial_classifications(self):
        serial = run_campaign(factory, make_spec(), on_error="collect")
        parallel = run_campaign(factory, make_spec(), workers=4,
                                on_error="collect")
        assert [r.label for r in serial.runs] == \
            [r.label for r in parallel.runs]


class TestQuarantineResume:
    def test_quarantined_skipped_then_retried_on_request(self, tmp_path):
        path = tmp_path / "c.sqlite"
        bad = hook_raising_on("top/counter.q[2]", 55e-9)

        with CampaignStore(path) as store:
            first = run_campaign(factory, make_spec(), metric_hooks=[bad],
                                 on_error="collect", retry=FAST_RETRY,
                                 store=store)
            assert first.errors and first.errors[0].quarantined

        # Plain resume skips the quarantined fault but still reports it.
        with CampaignStore(path) as store:
            resumed = run_campaign(factory, make_spec(), metric_hooks=[bad],
                                   on_error="collect", retry=FAST_RETRY,
                                   store=store, resume=True)
            assert resumed.execution["completed"] == 0
            assert len(resumed.errors) == 1
            assert resumed.errors[0].quarantined
            assert len(resumed.runs) == 11

        # retry_quarantined re-runs it; with the hook gone it succeeds,
        # and the merged result matches an uninterrupted campaign.
        with CampaignStore(path) as store:
            final = run_campaign(factory, make_spec(), on_error="collect",
                                 retry=FAST_RETRY, store=store, resume=True,
                                 retry_quarantined=True)
            assert not final.errors
            assert len(final.runs) == 12

        clean = run_campaign(factory, make_spec(), on_error="collect")
        with CampaignStore(path) as store:
            loaded = store.load_result("sup")
        assert [r.label for r in loaded.runs] == \
            [r.label for r in clean.runs]

    def test_failed_but_not_quarantined_is_retried(self, tmp_path):
        path = tmp_path / "c.sqlite"
        bad = hook_raising_on("top/counter.q[2]", 55e-9)

        with CampaignStore(path) as store:
            first = run_campaign(factory, make_spec(), metric_hooks=[bad],
                                 on_error="collect", retries=0, store=store)
            # retries=0 still quarantines? No: quarantine marks retry
            # exhaustion, and attempts(1) >= policy attempts(1).
            assert first.errors[0].quarantined

    def test_store_migrates_v1_database(self, tmp_path):
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            INSERT INTO meta VALUES ('schema_version', '1');
            CREATE TABLE campaigns (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                name TEXT UNIQUE NOT NULL, spec_json TEXT NOT NULL,
                fault_digest TEXT NOT NULL, golden_json TEXT,
                execution_json TEXT,
                status TEXT NOT NULL DEFAULT 'running',
                created_at TEXT NOT NULL, updated_at TEXT NOT NULL);
            CREATE TABLE faults (
                campaign_id INTEGER NOT NULL, idx INTEGER NOT NULL,
                kind TEXT NOT NULL, key TEXT NOT NULL,
                description TEXT NOT NULL, descriptor_json TEXT NOT NULL,
                PRIMARY KEY (campaign_id, idx));
            CREATE TABLE runs (
                campaign_id INTEGER NOT NULL, fault_idx INTEGER NOT NULL,
                status TEXT NOT NULL, label TEXT,
                classification_json TEXT, comparisons_json TEXT,
                metrics_json TEXT, error TEXT, wall_s REAL,
                kernel_events INTEGER, completed_at TEXT NOT NULL,
                PRIMARY KEY (campaign_id, fault_idx));
            INSERT INTO runs VALUES
                (1, 0, 'error', NULL, NULL, NULL, NULL, 'old', 0.1,
                 NULL, 'now');
            """
        )
        conn.commit()
        conn.close()

        with CampaignStore(path) as store:
            row = store._conn.execute(
                "SELECT attempts, quarantined FROM runs"
            ).fetchone()
            # v1 rows read back as single-attempt, not quarantined.
            assert row["attempts"] is None
            assert row["quarantined"] == 0
            version = store._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()["value"]
            assert version == str(SCHEMA_VERSION)
            # And v2 writes work against the migrated table.
            store.record_error(1, 1, "new", status=RUN_TIMEOUT,
                               attempts=2, quarantined=True)
            assert store.quarantined_indices(1) == {1}
