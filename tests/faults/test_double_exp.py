"""Tests for the Messenger double-exponential model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import FaultModelError
from repro.faults import DoubleExponentialPulse


class TestConstruction:
    def test_basic(self):
        d = DoubleExponentialPulse("14mA", "50ps", "300ps")
        assert d.i0 == pytest.approx(0.014)
        assert d.tau_r == pytest.approx(50e-12)
        assert d.tau_f == pytest.approx(300e-12)

    def test_tau_ordering_enforced(self):
        with pytest.raises(FaultModelError):
            DoubleExponentialPulse(0.01, 3e-10, 5e-11)

    def test_equal_taus_rejected(self):
        with pytest.raises(FaultModelError):
            DoubleExponentialPulse(0.01, 1e-10, 1e-10)

    def test_zero_i0_rejected(self):
        with pytest.raises(FaultModelError):
            DoubleExponentialPulse(0.0, 5e-11, 3e-10)

    def test_from_peak(self):
        d = DoubleExponentialPulse.from_peak("10mA", "50ps", "300ps")
        assert d.peak() == pytest.approx(0.01, rel=1e-9)

    def test_from_charge(self):
        d = DoubleExponentialPulse.from_charge(6e-12, 5e-11, 3e-10)
        assert d.charge() == pytest.approx(6e-12)


class TestClosedForms:
    def test_peak_time_formula(self):
        d = DoubleExponentialPulse(0.01, 5e-11, 3e-10)
        taus = np.linspace(0, 2e-9, 200001)
        numeric_peak_t = taus[np.argmax(d.current_array(taus))]
        assert d.t_peak == pytest.approx(float(numeric_peak_t), abs=2e-13)

    def test_charge_formula(self):
        d = DoubleExponentialPulse(0.01, 5e-11, 3e-10)
        taus = np.linspace(0, 30 * d.tau_f, 400001)
        numeric = float(np.trapezoid(d.current_array(taus), taus))
        assert d.charge() == pytest.approx(numeric, rel=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=1e-3, max_value=0.1),
        st.floats(min_value=1e-11, max_value=1e-10),
        st.floats(min_value=1.5, max_value=50.0),
    )
    def test_peak_formula_property(self, i0, tau_r, ratio):
        d = DoubleExponentialPulse(i0, tau_r, tau_r * ratio)
        taus = np.linspace(0, 10 * d.tau_f, 50001)
        numeric = float(np.max(d.current_array(taus)))
        assert d.peak() == pytest.approx(numeric, rel=1e-3)

    def test_current_zero_before_onset(self):
        d = DoubleExponentialPulse(0.01, 5e-11, 3e-10)
        assert d.current(-1e-12) == 0.0
        assert d.current(0.0) == 0.0


class TestTail:
    def test_tail_time_bounds_decay(self):
        d = DoubleExponentialPulse(0.01, 5e-11, 3e-10)
        t = d.tail_time(1e-3)
        assert abs(d.current(t)) <= 1.1e-3 * d.peak()

    def test_tail_fraction_validated(self):
        d = DoubleExponentialPulse(0.01, 5e-11, 3e-10)
        with pytest.raises(FaultModelError):
            d.tail_time(0.0)
        with pytest.raises(FaultModelError):
            d.tail_time(1.5)

    def test_duration_covers_pulse(self):
        d = DoubleExponentialPulse(0.01, 5e-11, 3e-10)
        assert abs(d.current(d.duration)) < 1e-3 * d.peak()
        assert d.duration > d.t_peak


class TestMisc:
    def test_suggested_dt(self):
        d = DoubleExponentialPulse(0.01, 8e-11, 3e-10)
        assert d.suggested_dt(8) == pytest.approx(1e-11)

    def test_describe(self):
        d = DoubleExponentialPulse("14mA", "50ps", "300ps")
        assert "tau_r" in d.describe()

    def test_negative_polarity(self):
        d = DoubleExponentialPulse(-0.01, 5e-11, 3e-10)
        assert d.current(d.t_peak) < 0
        assert d.peak() > 0
