"""Tests for digital fault descriptions: bit-flips, MBUs, SETs, stuck-ats,
and the analog parametric model."""

import pytest

from repro.core.errors import FaultModelError
from repro.core.logic import Logic
from repro.faults import (
    BitFlip,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
)


class TestBitFlip:
    def test_basic(self):
        f = BitFlip("top/ff.q", 1e-6)
        assert f.target == "top/ff.q"
        assert f.time == 1e-6
        assert f.targets() == ("top/ff.q",)

    def test_engineering_time(self):
        f = BitFlip("t", "170us")
        assert f.time == pytest.approx(170e-6)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultModelError):
            BitFlip("t", -1.0)

    def test_empty_target_rejected(self):
        with pytest.raises(FaultModelError):
            BitFlip("", 1.0)

    def test_equality_and_hash(self):
        assert BitFlip("t", 1e-6) == BitFlip("t", 1e-6)
        assert BitFlip("t", 1e-6) != BitFlip("t", 2e-6)
        assert len({BitFlip("t", 1e-6), BitFlip("t", 1e-6)}) == 1

    def test_describe(self):
        assert "SEU" in BitFlip("t", 1e-6).describe()


class TestMBU:
    def test_basic(self):
        f = MultipleBitUpset(["a", "b", "c"], 1e-6)
        assert f.targets() == ("a", "b", "c")

    def test_single_target_rejected(self):
        with pytest.raises(FaultModelError):
            MultipleBitUpset(["a"], 1e-6)

    def test_duplicate_targets_rejected(self):
        with pytest.raises(FaultModelError):
            MultipleBitUpset(["a", "a"], 1e-6)

    def test_describe_counts_bits(self):
        assert "2 bits" in MultipleBitUpset(["a", "b"], 1e-6).describe()


class TestSETPulse:
    def test_basic(self):
        f = SETPulse("wire", "10ns", "500ps")
        assert f.width == pytest.approx(5e-10)
        assert f.value is None

    def test_forced_value(self):
        f = SETPulse("wire", 1e-8, 1e-9, value="1")
        assert "force" in f.describe()

    def test_zero_width_rejected(self):
        with pytest.raises(FaultModelError):
            SETPulse("wire", 1e-8, 0.0)

    def test_invert_describe(self):
        assert "invert" in SETPulse("wire", 1e-8, 1e-9).describe()


class TestStuckAt:
    def test_basic(self):
        f = StuckAt("wire", 1)
        assert f.value is Logic.L1
        assert f.t_end is None

    def test_windowed(self):
        f = StuckAt("wire", "X", t_start="1us", t_end="2us")
        assert f.t_end == pytest.approx(2e-6)

    def test_bad_window_rejected(self):
        with pytest.raises(FaultModelError):
            StuckAt("wire", 0, t_start=2e-6, t_end=1e-6)

    def test_describe(self):
        assert "stuck-at-1" in StuckAt("wire", 1).describe()


class TestParametric:
    def test_factor(self):
        f = ParametricFault("pll/vco", "kvco", factor=1.2)
        assert f.faulty_value(10e6) == pytest.approx(12e6)

    def test_delta(self):
        f = ParametricFault("pll/vco", "kvco", delta=-1e6)
        assert f.faulty_value(10e6) == pytest.approx(9e6)

    def test_exactly_one_mode(self):
        with pytest.raises(FaultModelError):
            ParametricFault("c", "a", factor=1.1, delta=0.1)
        with pytest.raises(FaultModelError):
            ParametricFault("c", "a")

    def test_window_validation(self):
        with pytest.raises(FaultModelError):
            ParametricFault("c", "a", factor=2.0, t_start=2.0, t_end=1.0)

    def test_describe(self):
        text = ParametricFault("pll/vco", "kvco", factor=1.2).describe()
        assert "pll/vco.kvco" in text and "x1.2" in text
