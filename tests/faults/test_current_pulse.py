"""Tests for the paper's trapezoid current-pulse model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import FaultModelError
from repro.faults import FIGURE6_PULSE, FIGURE8_PULSES, TrapezoidPulse


class TestConstruction:
    def test_engineering_strings(self):
        p = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        assert p.pa == pytest.approx(0.01)
        assert p.rt == pytest.approx(100e-12)
        assert p.ft == pytest.approx(300e-12)
        assert p.pw == pytest.approx(500e-12)

    def test_floats_accepted(self):
        p = TrapezoidPulse(0.01, 1e-10, 3e-10, 5e-10)
        assert p.duration == pytest.approx(8e-10)

    def test_zero_amplitude_rejected(self):
        with pytest.raises(FaultModelError):
            TrapezoidPulse(0.0, 1e-10, 1e-10, 3e-10)

    def test_pw_shorter_than_rt_rejected(self):
        with pytest.raises(FaultModelError):
            TrapezoidPulse(0.01, 5e-10, 1e-10, 3e-10)

    def test_negative_amplitude_allowed(self):
        p = TrapezoidPulse(-0.01, 1e-10, 1e-10, 3e-10)
        assert p.peak() == pytest.approx(0.01)
        assert p.charge() < 0


class TestWaveform:
    def test_figure6_shape(self):
        p = FIGURE6_PULSE
        assert p.current(-1e-12) == 0.0
        assert p.current(50e-12) == pytest.approx(0.005)   # mid-rise
        assert p.current(100e-12) == pytest.approx(0.01)   # top of rise
        assert p.current(300e-12) == pytest.approx(0.01)   # plateau
        assert p.current(650e-12) == pytest.approx(0.005)  # mid-fall
        assert p.current(800e-12) == 0.0                   # end

    def test_duration_and_plateau(self):
        p = FIGURE6_PULSE
        assert p.duration == pytest.approx(800e-12)
        assert p.plateau == pytest.approx(400e-12)

    def test_charge_closed_form(self):
        # Q = PA * (PW - RT/2 + FT/2) = 10mA * 600ps = 6 pC.
        assert FIGURE6_PULSE.charge() == pytest.approx(6e-12)

    def test_breakpoints(self):
        p = FIGURE6_PULSE
        assert p.breakpoints() == pytest.approx(
            (0.0, 100e-12, 500e-12, 800e-12)
        )

    def test_current_array_matches_scalar(self):
        p = FIGURE6_PULSE
        taus = np.linspace(-1e-10, 9e-10, 101)
        arr = p.current_array(taus)
        for tau, value in zip(taus, arr):
            assert value == p.current(float(tau))

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=1e-4, max_value=0.1),
        st.floats(min_value=1e-12, max_value=2e-10),
        st.floats(min_value=1e-12, max_value=5e-10),
        st.floats(min_value=2e-10, max_value=1e-9),
    )
    def test_closed_form_charge_matches_numeric(self, pa, rt, ft, pw):
        p = TrapezoidPulse(pa, rt, ft, pw)
        numeric = np.trapezoid(
            p.current_array(np.linspace(0, p.duration, 40001)),
            np.linspace(0, p.duration, 40001),
        )
        assert p.charge() == pytest.approx(float(numeric), rel=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=1e-4, max_value=0.1),
        st.floats(min_value=1e-12, max_value=2e-10),
        st.floats(min_value=1e-12, max_value=5e-10),
        st.floats(min_value=2e-10, max_value=1e-9),
    )
    def test_peak_never_exceeded(self, pa, rt, ft, pw):
        p = TrapezoidPulse(pa, rt, ft, pw)
        taus = np.linspace(0, p.duration, 2001)
        assert np.max(np.abs(p.current_array(taus))) <= p.peak() + 1e-15


class TestHelpers:
    def test_scaled_amplitude(self):
        p = FIGURE6_PULSE.scaled(amplitude_factor=0.5)
        assert p.pa == pytest.approx(0.005)
        assert p.rt == FIGURE6_PULSE.rt

    def test_scaled_time(self):
        p = FIGURE6_PULSE.scaled(time_factor=2.0)
        assert p.duration == pytest.approx(1.6e-9)
        assert p.charge() == pytest.approx(12e-12)

    def test_suggested_dt_resolves_fastest_edge(self):
        p = FIGURE6_PULSE
        assert p.suggested_dt(points_per_edge=10) == pytest.approx(10e-12)

    def test_parameters_dict(self):
        assert set(FIGURE6_PULSE.parameters()) == {"pa", "rt", "ft", "pw"}

    def test_describe_mentions_values(self):
        text = FIGURE6_PULSE.describe()
        assert "10mA" in text and "500ps" in text

    def test_equality_and_hash(self):
        a = TrapezoidPulse("2mA", "100ps", "100ps", "300ps")
        b = TrapezoidPulse(2e-3, 1e-10, 1e-10, 3e-10)
        assert a == b
        assert hash(a) == hash(b)

    def test_figure8_pulse_set(self):
        assert len(FIGURE8_PULSES) == 4
        charges = [p.charge() for p in FIGURE8_PULSES]
        # amplitude & length cumulative: the big slow pulse carries the
        # most charge, the small one the least.
        assert charges[0] == min(charges)
        assert charges[3] == max(charges)
