"""Tests for the Figure 1b trapezoid <-> double-exponential derivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import FaultModelError
from repro.faults import (
    DoubleExponentialPulse,
    TrapezoidPulse,
    fit_double_exp,
    fit_trapezoid,
    rise_fall_times,
    waveform_distance,
)


def reference_dexp():
    return DoubleExponentialPulse.from_peak("10mA", "50ps", "300ps")


class TestRiseFallTimes:
    def test_trapezoid_edges_recovered(self):
        p = TrapezoidPulse(0.01, 100e-12, 300e-12, 500e-12)
        t_rise, t_fall, t_peak = rise_fall_times(p)
        # 10-90% of a linear edge = 0.8 * full edge.
        assert t_rise == pytest.approx(0.8 * 100e-12, rel=1e-3)
        assert t_fall == pytest.approx(0.8 * 300e-12, rel=1e-3)
        assert 100e-12 <= t_peak <= 500e-12

    def test_double_exp_monotonic_edges(self):
        d = reference_dexp()
        t_rise, t_fall, t_peak = rise_fall_times(d)
        assert 0 < t_rise < t_peak
        assert t_fall > t_rise  # slow collection tail


class TestFitTrapezoid:
    def test_charge_method_preserves_peak_and_charge(self):
        d = reference_dexp()
        fit = fit_trapezoid(d, method="charge")
        assert fit.peak() == pytest.approx(d.peak(), rel=1e-6)
        assert fit.charge() == pytest.approx(d.charge(), rel=1e-6)

    def test_waveforms_similar(self):
        """The Figure 7 claim: 'very similar, although the numeric
        values are slightly different' — L2 distance well under 1."""
        d = reference_dexp()
        fit = fit_trapezoid(d, method="charge")
        assert waveform_distance(d, fit) < 0.35

    def test_lsq_refines_or_matches_analytic(self):
        d = reference_dexp()
        analytic = fit_trapezoid(d, method="charge")
        refined = fit_trapezoid(d, method="lsq")
        assert waveform_distance(d, refined) <= waveform_distance(d, analytic) + 1e-6

    def test_unknown_method_rejected(self):
        with pytest.raises(FaultModelError):
            fit_trapezoid(reference_dexp(), method="magic")

    def test_negative_polarity_preserved(self):
        d = DoubleExponentialPulse.from_peak(-0.01, 5e-11, 3e-10)
        fit = fit_trapezoid(d)
        assert fit.pa < 0
        assert fit.charge() == pytest.approx(d.charge(), rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=1e-3, max_value=0.05),
        st.floats(min_value=2e-11, max_value=1.5e-10),
        st.floats(min_value=2.0, max_value=20.0),
    )
    def test_charge_conserved_property(self, ipeak, tau_r, ratio):
        d = DoubleExponentialPulse.from_peak(ipeak, tau_r, tau_r * ratio)
        fit = fit_trapezoid(d, method="charge")
        assert fit.charge() == pytest.approx(d.charge(), rel=1e-3)
        assert fit.pw >= fit.rt  # always a valid trapezoid


class TestFitDoubleExp:
    def test_roundtrip_preserves_peak_and_charge(self):
        p = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        d = fit_double_exp(p)
        assert d.peak() == pytest.approx(p.peak(), rel=1e-3)
        assert abs(d.charge()) == pytest.approx(abs(p.charge()), rel=1e-3)

    def test_roundtrip_stays_similar(self):
        p = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        d = fit_double_exp(p)
        back = fit_trapezoid(d, method="charge")
        assert back.peak() == pytest.approx(p.peak(), rel=1e-3)
        assert back.charge() == pytest.approx(p.charge(), rel=1e-3)

    def test_figure8_pulses_invertible(self):
        from repro.faults import FIGURE8_PULSES

        for p in FIGURE8_PULSES:
            d = fit_double_exp(p)
            assert d.tau_f > d.tau_r
            assert abs(d.charge()) == pytest.approx(abs(p.charge()), rel=5e-3)


class TestWaveformDistance:
    def test_identical_is_zero(self):
        p = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        assert waveform_distance(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_zero_reference_rejected(self):
        p = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")

        class Null(TrapezoidPulse):
            def current_array(self, taus):
                import numpy as np

                return np.zeros_like(taus)

        null = Null("1mA", "100ps", "100ps", "300ps")
        with pytest.raises(FaultModelError):
            waveform_distance(null, p)

    def test_scaled_amplitude_distance(self):
        p = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")
        half = p.scaled(amplitude_factor=0.5)
        assert waveform_distance(p, half) == pytest.approx(0.5, rel=1e-6)
