"""The code in docs/extending.md must actually work.

Each test re-implements one documented extension pattern verbatim and
exercises it, so the documentation cannot rot silently.
"""

import math

import pytest

from repro.core import AnalogBlock, DigitalComponent, L0, Logic, Simulator
from repro.core.logic import bits_from_int
from repro.core.node import as_current_node
from repro.digital import Bus, ClockGen
from repro.faults.models import AnalogTransient, check_positive


class GrayCounter(DigitalComponent):
    """2-bit Gray-code counter (docs/extending.md section 1)."""

    SEQUENCE = [0b00, 0b01, 0b11, 0b10]

    def __init__(self, sim, name, clk, q, parent=None):
        super().__init__(sim, name, parent=parent)
        self.clk, self.q = clk, q
        self._drivers = [sig.driver(owner=self) for sig in q.bits]
        for drv in self._drivers:
            drv.set(Logic.L0)
        self.process(self._tick, sensitivity=[clk])

    def _tick(self):
        if not self.clk.rose():
            return
        code = self.q.to_int_or_none()
        if code is None:
            for drv in self._drivers:
                drv.set(Logic.X)
            return
        index = self.SEQUENCE.index(code) if code in self.SEQUENCE else 0
        nxt = self.SEQUENCE[(index + 1) % 4]
        for drv, bit in zip(self._drivers, bits_from_int(nxt, 2)):
            drv.set(bit)

    def state_signals(self):
        return self.q.state_map()


class RCIntegratorLeak(AnalogBlock):
    """Leaky current integrator (docs/extending.md section 2)."""

    is_state = True

    def __init__(self, sim, name, inp, out, r, c, parent=None):
        super().__init__(sim, name, parent=parent)
        self.inp = self.reads_node(as_current_node(inp))
        self.out = self.writes_node(out)
        self.r, self.c = r, c
        self._v = 0.0

    def step(self, t, dt):
        if dt > 0:
            alpha = math.exp(-dt / (self.r * self.c))
            self._v = self._v * alpha + self.inp.i * self.r * (1 - alpha)
        self.out.set(self._v)


class RectangularPulse(AnalogTransient):
    """Rectangular current pulse (docs/extending.md section 3)."""

    def __init__(self, pa, pw):
        self.pa = float(pa)
        self.pw = check_positive("pw", pw)

    @property
    def duration(self):
        return self.pw

    def current(self, tau):
        return self.pa if 0 <= tau < self.pw else 0.0

    def charge(self, n=None):
        return self.pa * self.pw

    def suggested_dt(self, points_per_edge=8):
        return self.pw / (4 * points_per_edge)


class TestGrayCounterPattern:
    def test_gray_sequence(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        q = Bus(sim, "q", 2)
        GrayCounter(sim, "gc", clk, q)
        codes = []
        sim.every(10e-9, lambda: codes.append(q.to_int()), start=5e-9)
        sim.run(45e-9)
        assert codes == [1, 3, 2, 0]

    def test_exposes_state_for_mutants(self):
        from repro.injection import MutantInjector

        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        q = Bus(sim, "q", 2)
        gc = GrayCounter(sim, "gc", clk, q)
        injector = MutantInjector(sim, gc)
        assert injector.targets() == ["gc.q[0]", "gc.q[1]"]

    def test_x_poisoning(self):
        sim = Simulator()
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        q = Bus(sim, "q", 2)
        GrayCounter(sim, "gc", clk, q)
        sim.run(15e-9)
        q.bits[0].deposit(Logic.X)
        sim.run(25e-9)
        assert q.to_int_or_none() is None


class TestLeakyIntegratorPattern:
    def test_settles_to_ir(self):
        from repro.analog import DCCurrent

        sim = Simulator(dt=10e-9)
        node = sim.current_node("i")
        out = sim.node("v")
        DCCurrent(sim, "src", node, 1e-4)
        RCIntegratorLeak(sim, "leak", node, out, r=1e4, c=1e-9)
        sim.run(100e-6)
        assert out.v == pytest.approx(1.0, rel=1e-2)


class TestRectangularPulsePattern:
    def test_works_with_saboteur(self):
        import numpy as np

        from repro.injection import CurrentPulseSaboteur

        sim = Simulator(dt=1e-9)
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        pulse = RectangularPulse(0.01, 2e-9)
        sab.schedule(pulse, 50e-9)
        trace = sim.probe_current(node)
        sim.run(100e-9)
        delivered = float(np.trapezoid(trace.values, trace.times))
        assert delivered == pytest.approx(pulse.charge(), rel=0.05)

    def test_works_with_campaign_wrapper(self):
        from repro.injection import CurrentInjection

        fault = CurrentInjection(RectangularPulse(0.01, 2e-9), "icp", 1e-6)
        assert "icp" in fault.describe()


class TestRegistryPattern:
    def test_register_and_elaborate(self):
        from repro.netlist import Netlist, elaborate, lookup, register
        from repro.core.errors import NetlistError

        try:
            lookup("GrayCounter")
        except NetlistError:
            @register("GrayCounter", inputs=("clk",), outputs=("q",))
            def _build_gray(sim, name, parent, ports, params):
                return GrayCounter(sim, name, ports["clk"], ports["q"],
                                   parent=parent)

        design = elaborate(Netlist.from_dict({
            "name": "d",
            "signals": [{"name": "clk", "init": "0"}],
            "buses": [{"name": "q", "width": 2, "init": 0}],
            "instances": [
                {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
                 "params": {"period": 1e-8}},
                {"type": "GrayCounter", "name": "gc",
                 "ports": {"clk": "clk", "q": "q"}},
            ],
        }))
        design.sim.run(25e-9)
        assert design.extras["q"].to_int() in (0, 1, 2, 3)
