"""Acceptance test: a hostile PLL campaign always terminates classified.

The robustness contract of supervised execution, exercised end to end
on the paper's mixed-signal PLL: a fault list containing

* a tiny current pulse (masked — classifies ``silent``),
* the Figure 6 pulse (classifies ``transient-error``),
* a mega pulse that drives an unclamped parasitic node into numerical
  runaway (run status ``diverged``), and
* a pulse whose worker is SIGKILLed mid-campaign (run status
  ``crashed``)

must complete with a classified, persisted outcome for **every** fault
— no hangs, no lost rows — and a store-backed resume must reproduce
the same merged result without re-simulating.

The stock PLL blocks clamp every node to the supply rails (which is
why the divergence guard never fires on them); the parasitic
integrator below models the realistic case of a behavioural node
*without* a rail clamp.
"""

import multiprocessing
import os
import sys

import pytest

from repro.campaign import (
    RUN_CRASHED,
    RUN_DIVERGED,
    SILENT,
    TRANSIENT_ERROR,
    CampaignSpec,
    Design,
    analog_injections,
    run_campaign,
)
from repro.core import AnalogBlock, NumericalGuard, Simulator
from repro.faults import FIGURE6_PULSE, TrapezoidPulse
from repro.obs.journal import close_journal, open_journal, read_journal
from repro.store import CampaignStore

from tests.conftest import make_fast_pll

needs_fork = pytest.mark.skipif(
    sys.platform == "win32"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervised parallel campaigns need the fork start method",
)

T_END = 14e-6
T_INJ = 8e-6
T_KILL = 9e-6

TINY = TrapezoidPulse("10uA", "100ps", "300ps", "500ps")
#: Large enough to integrate the 1 pF parasitic past the guard ceiling.
MEGA = TrapezoidPulse("10A", "1ns", "100ns", "1ns")


class ParasiticIntegrator(AnalogBlock):
    """An unclamped charge integrator hanging off a current node."""

    is_state = True

    def __init__(self, sim, name, current_node, out, cap=1e-12):
        super().__init__(sim, name)
        self.src = self.reads_node(current_node)
        self.out = self.writes_node(out)
        self.cap = cap
        self.v = 0.0

    def step(self, t, dt):
        self.v += self.src.i * dt / self.cap
        self.out.set(self.v)


def hostile_pll_factory():
    sim = Simulator(dt=1e-9)
    pll = make_fast_pll(sim, preset_locked=True)
    ParasiticIntegrator(sim, "parasitic", pll.icp, sim.node("pll.vpar"))
    probes = {
        "vctrl": sim.probe(pll.vctrl, min_interval=5e-9),
        "fout": sim.probe(pll.fout),
        "fb": sim.probe(pll.fb),
    }
    return Design(sim=sim, root=pll, probes=probes)


def make_spec(name="pll-supervised"):
    faults = analog_injections(
        nodes=["pll.icp"], times=[T_INJ],
        transients=[TINY, FIGURE6_PULSE, MEGA],
    ) + analog_injections(
        nodes=["pll.icp"], times=[T_KILL], transients=[TINY],
    )
    return CampaignSpec(
        name=name,
        faults=faults,
        t_end=T_END,
        outputs=["fout", "fb"],
        tolerances={"vctrl": 0.01},
        time_tolerances={"fout": 2e-9, "fb": 2e-9},
        compare_from=2e-6,
    )


GUARD = NumericalGuard(max_abs=1e4, check_every=1)


def kill_hook(design, fault):
    if fault.time == T_KILL:
        os.kill(os.getpid(), 9)
    return {}


@needs_fork
class TestSupervisedPLLCampaign:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        return tmp_path_factory.mktemp("campaign") / "pll.sqlite"

    @pytest.fixture(scope="class")
    def artifact_dir(self, tmp_path_factory):
        """Where the journal and post-mortems land.

        ``REPRO_ARTIFACT_DIR`` (set by CI) redirects them to a
        directory the workflow uploads as build artifacts, so a failed
        acceptance run ships its own flight-recorder evidence.
        """
        root = os.environ.get("REPRO_ARTIFACT_DIR")
        if root:
            path = os.path.join(root, "supervised-pll")
            os.makedirs(path, exist_ok=True)
            return path
        return str(tmp_path_factory.mktemp("telemetry"))

    @pytest.fixture(scope="class")
    def hostile_result(self, store_path, artifact_dir):
        open_journal(os.path.join(artifact_dir, "pll-campaign.jsonl"))
        try:
            with CampaignStore(store_path) as store:
                yield run_campaign(
                    hostile_pll_factory, make_spec(),
                    metric_hooks=[kill_hook],
                    workers=2, on_error="collect", retries=0,
                    guard=GUARD, store=store,
                    postmortem_dir=os.path.join(
                        artifact_dir, "postmortems"
                    ),
                )
        finally:
            close_journal()

    def test_every_fault_terminates_classified(self, hostile_result):
        result = hostile_result
        assert len(result.runs) + len(result.errors) == 4
        statuses = {err.fault.transient.peak(): err.status
                    for err in result.errors}
        assert statuses[MEGA.peak()] == RUN_DIVERGED
        assert statuses[TINY.peak()] == RUN_CRASHED
        assert all(err.quarantined for err in result.errors)
        assert result.execution["diverged"] == 1
        assert result.execution["crashed"] == 1

    def test_surviving_runs_classify_as_unsupervised(self, hostile_result):
        by_peak = {run.fault.transient.peak(): run
                   for run in hostile_result.runs}
        assert by_peak[TINY.peak()].label == SILENT
        assert by_peak[FIGURE6_PULSE.peak()].label == TRANSIENT_ERROR

    def test_divergence_names_the_parasitic_node(self, hostile_result):
        (diverged,) = [err for err in hostile_result.errors
                       if err.status == RUN_DIVERGED]
        assert "pll.vpar" in diverged.message

    def test_all_rows_persisted(self, hostile_result, store_path):
        with CampaignStore(store_path) as store:
            campaign_id = store.campaign_id("pll-supervised")
            assert len(store.completed_indices(campaign_id)) == 2
            errors = store.load_errors(campaign_id, make_spec().faults)
            assert sorted(err.status for err in errors) == \
                sorted([RUN_DIVERGED, RUN_CRASHED])

    def test_journal_tells_the_whole_story(self, hostile_result,
                                           artifact_dir):
        import json

        path = os.path.join(artifact_dir, "pll-campaign.jsonl")
        events = list(read_journal(path))  # raises if any line is bad
        names = [e["event"] for e in events]
        assert names[0] == "campaign_started"
        assert names[-1] == "campaign_finished"
        assert names.count("run_finished") == 4
        assert "worker_spawned" in names
        # The SIGKILLed worker's death is attributed to its fault.
        died = [e for e in events if e["event"] == "worker_died"]
        assert any(e["exitcode"] == -9 for e in died)
        statuses = sorted(
            e["status"] for e in events if e["event"] == "run_finished"
        )
        assert statuses == ["crashed", "diverged", "ok", "ok"]
        # Every line is self-contained JSON a foreign consumer can load.
        with open(path) as handle:
            for line in handle:
                json.loads(line)

    def test_postmortems_referenced_from_store(self, hostile_result,
                                               store_path):
        import json

        by_status = {err.status: err for err in hostile_result.errors}
        diverged = by_status[RUN_DIVERGED]
        assert diverged.postmortem and os.path.exists(diverged.postmortem)
        payload = json.load(open(diverged.postmortem))
        assert payload["status"] == RUN_DIVERGED
        assert payload["recorder"]["solver_steps"]
        assert "pll.vpar" in payload["recorder"]["nodes_now"]
        crashed = by_status[RUN_CRASHED]
        assert crashed.postmortem and os.path.exists(crashed.postmortem)
        assert json.load(open(crashed.postmortem))["kind"] == "worker_death"
        # The store rows carry the same references.
        with CampaignStore(store_path) as store:
            campaign_id = store.campaign_id("pll-supervised")
            stored = store.load_errors(campaign_id, make_spec().faults)
        assert {err.postmortem for err in stored} == \
            {diverged.postmortem, crashed.postmortem}

    def test_resume_reproduces_merged_result(self, hostile_result,
                                             store_path):
        with CampaignStore(store_path) as store:
            resumed = run_campaign(
                hostile_pll_factory, make_spec(),
                workers=2, on_error="collect", retries=0,
                guard=GUARD, store=store, resume=True,
            )
        assert resumed.execution["completed"] == 0
        assert [r.label for r in resumed.runs] == \
            [r.label for r in hostile_result.runs]
        assert [(e.index, e.status) for e in resumed.errors] == \
            [(e.index, e.status) for e in hostile_result.errors]

    def test_retry_quarantined_reclassifies_deterministically(
        self, hostile_result, store_path
    ):
        # Without the kill hook the crashed fault completes; the
        # diverging pulse diverges again — deterministic, terminal.
        with CampaignStore(store_path) as store:
            final = run_campaign(
                hostile_pll_factory, make_spec(),
                workers=2, on_error="collect", retries=0,
                guard=GUARD, store=store, resume=True,
                retry_quarantined=True,
            )
        assert len(final.runs) == 3
        (err,) = final.errors
        assert err.status == RUN_DIVERGED
        assert err.quarantined
