"""Integration test: the full Section 4 AMS analysis flow on the PLL.

Build -> instrument (saboteurs on current nodes) -> campaign over
injection times and pulse amplitudes -> golden comparison with analog
tolerance -> classification.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    SILENT,
    TRANSIENT_ERROR,
    analog_injections,
    run_campaign,
)
from repro.core import Simulator
from repro.faults import FIGURE6_PULSE, TrapezoidPulse
from repro.injection import instrument

from tests.conftest import make_fast_pll

T_END = 20e-6
T_INJ = 8e-6


def pll_factory():
    sim = Simulator(dt=1e-9)
    pll = make_fast_pll(sim, preset_locked=True)
    probes = {
        "vctrl": sim.probe(pll.vctrl, min_interval=5e-9),
        "fout": sim.probe(pll.fout),
        "fb": sim.probe(pll.fb),
    }
    return Design(sim=sim, root=pll, probes=probes)


@pytest.fixture(scope="module")
def campaign_result():
    tiny = TrapezoidPulse("10uA", "100ps", "300ps", "500ps")
    faults = analog_injections(
        nodes=["pll.icp"],
        times=[T_INJ],
        transients=[tiny, FIGURE6_PULSE],
    )
    spec = CampaignSpec(
        name="pll-analog",
        faults=faults,
        t_end=T_END,
        outputs=["fout", "fb"],
        tolerances={"vctrl": 0.01},
        # Regenerated clocks never reproduce golden edges exactly, and
        # the digitizer quantises edges to the 1 ns solver step — so
        # the edge tolerance must exceed one step.  2 ns separates
        # benign sub-step wander from the Figure 6 pulse's multi-cycle
        # phase slip (tens of ns).
        time_tolerances={"fout": 2e-9, "fb": 2e-9},
        compare_from=2e-6,  # skip preset settling
    )
    return run_campaign(pll_factory, spec)


class TestAnalogCampaign:
    def test_instrumentation_finds_the_paper_target(self):
        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        inst = instrument(sim, pll)
        assert inst.analog_targets == ["pll.icp"]
        # digital mutant targets exist inside the same design (PFD
        # flops, divider count): the *unified* flow of the paper.
        assert any("divider" in t for t in inst.digital_targets)

    def test_tiny_pulse_is_silent(self, campaign_result):
        tiny_run = campaign_result.runs[0]
        assert tiny_run.fault.transient.peak() == pytest.approx(10e-6)
        assert tiny_run.label == SILENT

    def test_figure6_pulse_is_transient_error(self, campaign_result):
        big_run = campaign_result.runs[1]
        assert big_run.fault.transient.peak() == pytest.approx(10e-3)
        # The clock is disturbed for many cycles but the loop
        # re-locks: a recovered (transient) error, not a hard failure.
        assert big_run.label == TRANSIENT_ERROR
        assert "vctrl" in big_run.classification.diverged_internal
        assert big_run.classification.first_output_divergence >= T_INJ

    def test_output_divergence_starts_at_injection(self, campaign_result):
        big_run = campaign_result.runs[1]
        first = big_run.classification.first_output_divergence
        assert T_INJ <= first <= T_INJ + 2e-6
