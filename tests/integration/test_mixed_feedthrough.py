"""Integration test: analog fault feed-through into a digital block.

The paper's complete test case is a PLL "generating the clock signal of
a digital block" (Section 5.1); Section 5.2 observes that the perturbed
clock frequency "may not directly induce logical errors in the
simulation results of the digital part, if described at the behavioral
level", while potentially corrupting many cycles on silicon.  This test
reproduces both halves of that observation.
"""

import pytest

from repro.ams import DigitalLoad
from repro.analysis import analyze_perturbation
from repro.core import Simulator
from repro.faults import FIGURE6_PULSE
from repro.injection import CurrentPulseSaboteur

from tests.conftest import make_fast_pll

T_INJ = 10e-6


def build(inject):
    sim = Simulator(dt=1e-9)
    pll = make_fast_pll(sim, preset_locked=True)
    load = DigitalLoad(sim, "load", pll.fout)
    if inject:
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        sab.schedule(FIGURE6_PULSE, T_INJ)
    else:
        # Identical solver grid for the golden run (see
        # CampaignRunner._collect_windows for why).
        t0, t1, dt = CurrentPulseSaboteur.window_for(FIGURE6_PULSE, T_INJ)
        sim.analog.add_refinement_window(t0, t1, dt)
    probes = {
        "vco": sim.probe(pll.vco_out),
        "vctrl": sim.probe(pll.vctrl),
        "parity": sim.probe(load.parity),
    }
    return sim, pll, load, probes


class TestFeedthrough:
    @pytest.fixture(scope="class")
    def runs(self):
        sim_g, _pll, load_g, _probes = build(inject=False)
        sim_g.run(25e-6)
        golden_snapshot = load_g.snapshot()

        sim_f, pll, load_f, probes = build(inject=True)
        sim_f.run(25e-6)
        return golden_snapshot, load_f.snapshot(), pll, probes

    def test_analog_fault_perturbs_clock_many_cycles(self, runs):
        _golden, _faulty, pll, probes = runs
        report = analyze_perturbation(
            probes["vco"].segment(5e-6, None), T_INJ, FIGURE6_PULSE.pw,
            pll.t_out_nominal, tol_frac=0.003,
        )
        assert report.perturbed_cycles > 5

    def test_cycle_count_shift_is_bounded(self, runs):
        """The frequency excursion advances/retards the digital block
        by at most a few clock cycles: the behavioural digital part
        sees a bounded counting error, not garbage."""
        golden, faulty, _pll, _probes = runs
        g_count, g_pattern = golden
        f_count, f_pattern = faulty
        assert g_count is not None and f_count is not None
        shift = (f_count - g_count) % 256
        shift = min(shift, 256 - shift)
        assert shift <= 8

    def test_no_undefined_values_reach_digital(self, runs):
        """A pure frequency perturbation never produces X values in
        the behavioural digital part — matching the paper's note that
        behavioural simulation may show no direct logic error."""
        _golden, faulty, _pll, _probes = runs
        count, pattern = faulty
        assert count is not None
        assert pattern is not None
