"""Crash-tolerance acceptance: chaos transport, coordinator kill, resume.

The guarantees this PR's failure model makes, exercised end to end
over real sockets with real process kills:

* a distributed campaign whose workers dial through a misbehaving
  :class:`~repro.dist.ChaosProxy` (delays, connection drops) still
  produces a final store **row-identical** to a serial run — worker
  reconnect plus row dedup absorb every injected fault;
* SIGKILLing the *coordinator* mid-campaign and restarting it with
  ``resume_from_ledger`` adopts already-merged shards from disk,
  requeues the rest, lets the (still running, backoff-looping)
  workers reconnect, and finishes — again row-identical, every fault
  exactly once;
* the ledger records the resume, and the restarted coordinator's
  journal narrates it.

Artifacts (ledger + journals) land in ``REPRO_ARTIFACT_DIR`` when CI
sets it, so a failed run ships its own flight recording.
"""

import json
import multiprocessing
import os
import signal
import socket
import time

import pytest

from repro.campaign import run_campaign
from repro.dist import (
    ChaosConfig,
    ChaosProxy,
    Coordinator,
    read_ledger,
    spawn_local_workers,
)
from repro.obs import journal as obs_journal
from repro.store import CampaignStore

from ..store.test_resume import factory, make_spec, needs_fork
from .test_distributed_campaign import (
    ROW_IDENTITY,
    identity,
    slow_factory,
    store_rows,
)


def free_port():
    """Reserve-and-release an ephemeral port for a child to bind."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _coordinator_main(store_path, ledger_path, journal_path, port,
                      resume):
    """Coordinator child body: serve one job to completion, then exit.

    First incarnation (``resume=False``) submits the campaign; a
    restarted incarnation rebuilds its world from the ledger instead.
    Exit code 0 means every job reached ``complete``.
    """
    obs_journal.JOURNAL.close()   # the fork duplicated the parent's
    obs_journal.open_journal(journal_path)
    coordinator = Coordinator(
        store_path, host="127.0.0.1", port=port, shard_size=2,
        lease_timeout_s=60.0, ledger_path=ledger_path,
        reconnect_grace_s=30.0,
    )
    coordinator.drain_when_idle(True)
    try:
        if resume:
            job_ids = coordinator.resume_from_ledger(ledger_path)
        else:
            job_ids = [coordinator.submit(make_spec())]
        coordinator.start()
        ok = True
        for job_id in job_ids:
            status = coordinator.wait(job_id, timeout=300)
            ok = ok and status["state"] == "complete"
    finally:
        coordinator.stop()
        obs_journal.close_journal()
    os._exit(0 if ok else 1)


def spawn_coordinator(context, store_path, ledger_path, journal_path,
                      port, resume=False):
    process = context.Process(
        target=_coordinator_main,
        args=(str(store_path), str(ledger_path), str(journal_path),
              port, resume),
        daemon=True,
    )
    process.start()
    return process


def wait_for_ledger_record(ledger_path, kind, timeout=120.0):
    """Poll the ledger until a record of ``kind`` lands (durably)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(ledger_path):
            if any(r.get("rec") == kind for r in read_ledger(ledger_path)):
                return
        time.sleep(0.05)
    raise AssertionError(
        f"no {kind!r} record appeared in {ledger_path} "
        f"within {timeout}s"
    )


def reap(processes, timeout=10.0):
    for process in processes:
        process.join(timeout=timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)


@needs_fork
class TestChaosIdentity:
    """Row identity under a misbehaving transport (no kills)."""

    @pytest.fixture(scope="class")
    def serial_rows(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serial") / "serial.db"
        spec = make_spec()
        with CampaignStore(path) as store:
            run_campaign(factory, spec, store=store)
        return store_rows(path, spec.name)

    @pytest.fixture(scope="class")
    def chaotic_run(self, tmp_path_factory):
        spec = make_spec()
        store_path = tmp_path_factory.mktemp("chaos") / "dist.db"
        coordinator = Coordinator(store_path, shard_size=2,
                                  lease_timeout_s=60.0,
                                  reconnect_grace_s=30.0)
        coordinator.drain_when_idle(True)
        processes = []
        proxy = ChaosProxy(
            coordinator.address,
            ChaosConfig(delay_p=0.3, delay_s=0.02, drop_p=0.03, seed=11),
        ).start()
        try:
            job_id = coordinator.submit(spec)
            coordinator.start()
            processes = spawn_local_workers(
                proxy.address, 2, slow_factory,
                backoff_s=0.05, backoff_max_s=0.5, max_reconnects=None,
            )
            status = coordinator.wait(job_id, timeout=240)
        finally:
            coordinator.stop()
            proxy.stop()
            reap(processes)
        return status, store_path, proxy.stats

    def test_job_completes_under_chaos(self, chaotic_run):
        status, _store, _stats = chaotic_run
        assert status["state"] == "complete"
        assert not status["failed"]

    def test_rows_identical_to_serial(self, chaotic_run, serial_rows):
        _status, store_path, _stats = chaotic_run
        rows = store_rows(store_path, make_spec().name)
        assert [identity(row) for row in rows] \
            == [identity(row) for row in serial_rows]

    def test_chaos_actually_happened(self, chaotic_run):
        _status, _store, stats = chaotic_run
        assert stats["delays"] > 0


@needs_fork
class TestCoordinatorKillResume:
    """SIGKILL the coordinator mid-campaign; resume from the ledger."""

    @pytest.fixture(scope="class")
    def artifact_dir(self, tmp_path_factory):
        root = os.environ.get("REPRO_ARTIFACT_DIR")
        if root:
            path = os.path.join(root, "crash-tolerance")
            os.makedirs(path, exist_ok=True)
            return path
        return str(tmp_path_factory.mktemp("artifacts"))

    @pytest.fixture(scope="class")
    def serial_rows(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serial") / "serial.db"
        spec = make_spec()
        with CampaignStore(path) as store:
            run_campaign(factory, spec, store=store)
        return store_rows(path, spec.name)

    @pytest.fixture(scope="class")
    def survived_coordinator_kill(self, tmp_path_factory, artifact_dir):
        """Kill incarnation A after its first merge; resume as B.

        Workers dial through a chaos proxy the whole time and are
        never restarted — the same two processes must ride out both
        the injected socket faults and the coordinator outage on
        their reconnect loops alone.
        """
        context = multiprocessing.get_context("fork")
        store_path = tmp_path_factory.mktemp("killed") / "dist.db"
        ledger_path = os.path.join(artifact_dir, "coordinator.ledger.jsonl")
        journal_a = os.path.join(artifact_dir, "coordinator-a.jsonl")
        journal_b = os.path.join(artifact_dir, "coordinator-b.jsonl")
        port = free_port()
        proxy = ChaosProxy(
            ("127.0.0.1", port),
            ChaosConfig(delay_p=0.2, delay_s=0.02, drop_p=0.02, seed=23),
        ).start()
        workers = []
        incarnation_a = spawn_coordinator(
            context, store_path, ledger_path, journal_a, port,
        )
        try:
            workers = spawn_local_workers(
                proxy.address, 2, slow_factory,
                backoff_s=0.05, backoff_max_s=0.5, max_reconnects=None,
            )
            # Durable progress first: at least one shard must be
            # merged into the final store before the kill, so the
            # resume provably *adopts* work instead of redoing it all.
            wait_for_ledger_record(ledger_path, "shard_merged")
            os.kill(incarnation_a.pid, signal.SIGKILL)
            incarnation_a.join(timeout=10.0)
            incarnation_b = spawn_coordinator(
                context, store_path, ledger_path, journal_b, port,
                resume=True,
            )
            incarnation_b.join(timeout=300.0)
            assert not incarnation_b.is_alive(), \
                "resumed coordinator never finished the job"
            assert incarnation_b.exitcode == 0, \
                f"resumed coordinator exited {incarnation_b.exitcode}"
        finally:
            proxy.stop()
            reap(workers)
            if incarnation_a.is_alive():
                incarnation_a.terminate()
        return store_path, ledger_path, journal_b

    def test_rows_identical_to_serial(self, survived_coordinator_kill,
                                      serial_rows):
        store_path, _ledger, _journal = survived_coordinator_kill
        rows = store_rows(store_path, make_spec().name)
        assert [identity(row) for row in rows] \
            == [identity(row) for row in serial_rows]

    def test_every_fault_exactly_once(self, survived_coordinator_kill):
        store_path, _ledger, _journal = survived_coordinator_kill
        spec = make_spec()
        rows = store_rows(store_path, spec.name)
        assert [row["idx"] for row in rows] \
            == list(range(len(spec.faults)))

    def test_ledger_records_the_resume(self, survived_coordinator_kill):
        _store, ledger_path, _journal = survived_coordinator_kill
        kinds = [r["rec"] for r in read_ledger(ledger_path)]
        assert "resumed" in kinds
        assert kinds.count("job_submitted") == 1   # never re-submitted
        assert "job_finished" in kinds

    def test_resume_adopted_prior_work(self, survived_coordinator_kill):
        _store, ledger_path, journal_b = survived_coordinator_kill
        with open(journal_b) as handle:
            events = [json.loads(line) for line in handle if line.strip()]
        resumed = [e for e in events if e["event"] == "coordinator_resumed"]
        assert len(resumed) == 1
        assert resumed[0]["jobs"] == 1
        # The kill came after a durable merge, so incarnation B must
        # have adopted at least one shard from disk without re-running
        # it — and requeued the remainder.
        assert resumed[0]["adopted"] >= 1
        assert resumed[0]["requeued"] >= 1

    def test_store_execution_is_complete(self, survived_coordinator_kill):
        store_path, _ledger, _journal = survived_coordinator_kill
        spec = make_spec()
        with CampaignStore(store_path) as store:
            result = store.load_result(spec.name)
        assert result.execution["mode"] == "distributed"
        assert result.execution["completed"] == len(spec.faults)
