"""Reproducibility: identical campaigns must produce identical results.

Fault-injection results feed sign-off decisions; a campaign that is
not bit-reproducible cannot be reviewed.  These tests rerun complete
flows and require byte-identical reports.
"""

from repro.campaign import (
    CampaignSpec,
    Design,
    random_bitflips,
    run_campaign,
    to_csv,
)
from repro.core import Component, L0, Simulator
from repro.digital import Bus, ClockGen, Counter, LFSR, ParityGen


def factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    p = Bus(sim, "pat", 8, init=1)
    LFSR(sim, "lfsr", clk, p, parent=top)
    parity = sim.signal("parity")
    ParityGen(sim, "par", p, parity, parent=top)
    return Design(sim=sim, root=top, probes={"parity": sim.probe(parity)})


def make_spec(seed):
    targets = [f"top/counter.q[{i}]" for i in range(4)] + \
              [f"top/lfsr.q[{i}]" for i in range(8)]
    faults = random_bitflips(targets, (20e-9, 380e-9), 25, seed=seed)
    return CampaignSpec(name="repro-check", faults=faults, t_end=400e-9,
                        outputs=["parity"])


class TestDeterminism:
    def test_identical_reruns_are_byte_identical(self):
        a = run_campaign(factory, make_spec(seed=11))
        b = run_campaign(factory, make_spec(seed=11))
        assert to_csv(a) == to_csv(b)

    def test_different_seeds_differ(self):
        a = run_campaign(factory, make_spec(seed=11))
        b = run_campaign(factory, make_spec(seed=12))
        assert to_csv(a) != to_csv(b)

    def test_parallel_equals_serial(self):
        import multiprocessing
        import sys

        if sys.platform == "win32" or \
                "fork" not in multiprocessing.get_all_start_methods():
            return
        serial = run_campaign(factory, make_spec(seed=11))
        parallel = run_campaign(factory, make_spec(seed=11), workers=3)
        assert to_csv(serial) == to_csv(parallel)

    def test_analog_run_deterministic(self):
        """Two identical mixed-signal runs sample identical traces."""
        from repro.faults import FIGURE6_PULSE
        from repro.injection import CurrentPulseSaboteur
        from tests.conftest import make_fast_pll

        def run_once():
            sim = Simulator(dt=1e-9)
            pll = make_fast_pll(sim, preset_locked=True)
            sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
            sab.schedule(FIGURE6_PULSE, 10e-6)
            vctrl = sim.probe(pll.vctrl)
            sim.run(15e-6)
            return list(vctrl)

        assert run_once() == run_once()
