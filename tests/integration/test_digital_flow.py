"""Integration test: the Section 3 digital analysis flow.

A digital block (FSM-controlled datapath) is instrumented with mutants;
an exhaustive SEU campaign over flip-flops x cycles is classified and a
propagation model generated — plus the saboteur-vs-mutant agreement
check of the Section 3.2 discussion.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    Design,
    build_propagation_graph,
    exhaustive_bitflips,
    run_campaign,
)
from repro.core import Component, L0, L1, Simulator
from repro.digital import (
    Bus,
    ClockGen,
    Counter,
    MooreFSM,
    ParityGen,
    table_transition,
)

PERIOD = 10e-9
T_END = 400e-9


def dut_factory():
    """An FSM gating a counter: counts only while the FSM is in RUN.

    FSM: IDLE -> RUN (after 4 cycles) -> DONE (when count wraps 8).
    """
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)

    warmup = Bus(sim, "warmup", 3)
    Counter(sim, "warmupcnt", clk, warmup, parent=top)

    count = Bus(sim, "count", 3)
    run_flag = sim.signal("run_flag")
    done_flag = sim.signal("done_flag")

    def transition(state, fsm):
        if state == "IDLE":
            w = warmup.to_int_or_none()
            return "RUN" if w is not None and w >= 4 else "IDLE"
        if state == "RUN":
            c = count.to_int_or_none()
            return "DONE" if c == 7 else "RUN"
        return "DONE"

    fsm = MooreFSM(
        sim, "fsm", clk, ["IDLE", "RUN", "DONE"], transition,
        moore_outputs={run_flag: {"IDLE": L0, "RUN": L1, "DONE": L0},
                       done_flag: {"IDLE": L0, "RUN": L0, "DONE": L1}},
        parent=top,
    )
    Counter(sim, "counter", clk, count, en=run_flag, parent=top)
    parity = sim.signal("parity")
    ParityGen(sim, "par", count, parity, parent=top)

    probes = {
        "done": sim.probe(done_flag),
        "parity": sim.probe(parity),
        "count[0]": sim.probe(count.bits[0]),
        "fsm.state[0]": sim.probe(fsm.state_bus.bits[0]),
        "fsm.state[1]": sim.probe(fsm.state_bus.bits[1]),
    }
    return Design(sim=sim, root=top, probes=probes,
                  extras={"fsm": fsm, "count": count})


@pytest.fixture(scope="module")
def campaign_result():
    targets = [
        "top/fsm.state[0]",
        "top/fsm.state[1]",
        "top/counter.q[0]",
        "top/counter.q[2]",
    ]
    times = [75e-9, 125e-9]
    spec = CampaignSpec(
        name="digital-seu",
        faults=exhaustive_bitflips(targets, times),
        t_end=T_END,
        outputs=["done", "parity"],
    )
    return run_campaign(dut_factory, spec)


class TestGoldenBehaviour:
    def test_golden_sequence(self):
        design = dut_factory()
        design.sim.run(T_END)
        # warmup 4 cycles + run 8 counts -> DONE well before 400 ns
        assert design.extras["fsm"].current_state() == "DONE"


class TestCampaign:
    def test_every_run_classified(self, campaign_result):
        assert len(campaign_result) == 8
        assert sum(campaign_result.counts().values()) == 8

    def test_fsm_state_flips_are_errors(self, campaign_result):
        """Erroneous FSM transitions disturb the control flow."""
        fsm_runs = [
            r for r in campaign_result
            if r.fault.target.startswith("top/fsm")
        ]
        assert any(r.classification.is_error() for r in fsm_runs)

    def test_propagation_graph_nonempty(self, campaign_result):
        graph = build_propagation_graph(campaign_result)
        assert graph.number_of_edges() > 0

    def test_injection_time_matters(self, campaign_result):
        """The same target injected at different cycles can land in
        different classes — the reason campaigns sweep time."""
        by_fault = {(r.fault.target, r.fault.time): r.label
                    for r in campaign_result}
        labels = set(by_fault.values())
        assert len(labels) >= 2


class TestSaboteurVsMutant:
    def test_equivalent_state_corruption(self):
        """A mutant flip of a counter bit and a saboteur forcing the
        same wire to the flipped value for one cycle agree on the
        next-state outcome (Section 3.2: mutants are the more powerful
        mechanism, but where both can express a fault they agree)."""
        # Mutant version.
        design_m = dut_factory()
        design_m.sim.run(75e-9)
        from repro.injection import MutantInjector

        mi = MutantInjector(design_m.sim, design_m.root)
        mi.flip_now("top/counter.q[0]")
        design_m.sim.run(200e-9)
        count_m = design_m.extras["count"].to_int_or_none()

        # Saboteur-style version: force the bit to the same value over
        # the remainder of the clock cycle, release before the edge.
        design_s = dut_factory()
        design_s.sim.run(75e-9)
        bit = design_s.extras["count"].bits[0]
        from repro.core.logic import flip

        bit.force(flip(bit.value))
        design_s.sim.at(79e-9, bit.release)
        design_s.sim.run(200e-9)
        count_s = design_s.extras["count"].to_int_or_none()

        assert count_m == count_s
