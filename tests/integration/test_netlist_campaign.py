"""Integration test: campaign driven entirely from a netlist file.

Exercises the file-based flow: JSON netlist -> instrumentation
transform -> design factory -> campaign.
"""

import pytest

from repro.campaign import CampaignSpec, exhaustive_bitflips, run_campaign
from repro.faults import StuckAt
from repro.netlist import (
    Netlist,
    design_factory,
    dumps,
    insert_digital_saboteur,
    loads,
)


def make_netlist():
    return Netlist.from_dict({
        "name": "dut",
        "dt": "1ns",
        "signals": [
            {"name": "clk", "init": "0"},
            {"name": "parity", "init": "U"},
        ],
        "buses": [{"name": "cnt", "width": 4, "init": 0}],
        "instances": [
            {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
             "params": {"period": 1e-8}},
            {"type": "Counter", "name": "counter",
             "ports": {"clk": "clk", "q": "cnt"}},
            {"type": "ParityGen", "name": "par",
             "ports": {"a": "cnt", "parity": "parity"}},
        ],
        "probes": ["cnt", "parity"],
        "outputs": ["parity"],
    })


class TestNetlistCampaign:
    def test_bitflip_campaign_from_netlist(self):
        netlist = make_netlist()
        factory = design_factory(netlist)
        spec = CampaignSpec(
            name="netlist-seu",
            faults=exhaustive_bitflips(["dut/counter.q[1]"], [35e-9]),
            t_end=200e-9,
            outputs=["parity"],
        )
        result = run_campaign(factory, spec)
        assert len(result) == 1
        assert result.runs[0].classification.is_error()

    def test_netlist_roundtrips_through_json(self):
        netlist = make_netlist()
        factory = design_factory(loads(dumps(netlist)))
        spec = CampaignSpec(
            name="roundtrip",
            faults=[StuckAt("clk", 0, t_start=50e-9)],
            t_end=200e-9,
            outputs=["parity"],
        )
        result = run_campaign(factory, spec)
        # Gating the clock freezes the count: parity freezes too ->
        # diverges from the golden run and stays wrong at the end.
        assert result.runs[0].label == "failure"

    def test_instrumented_netlist_campaign(self):
        netlist, sab_name, _net = insert_digital_saboteur(
            make_netlist(), "clk")
        factory = design_factory(netlist)
        design = factory()
        design.extras[sab_name].stick("0", 50e-9, 120e-9)
        design.sim.run(200e-9)
        # 0-50 ns: 5 edges + t=0 edge; 120-200 ns: edges at 120..190.
        assert design.extras["cnt"].to_int() == 14
