"""Distributed sampled campaigns: sharded chunks, early stop, resume.

The coordinator executes a sampled campaign's chunks as shards over
real worker sockets but merges them strictly in chunk order, so the
guarantees under test are strong:

* a 3-worker sampled run produces a final store **row-identical** to
  a single-host sampled run with ``chunk == shard_size`` — same rows,
  same strata, same skipped set, same estimate;
* convergence mid-flight revokes outstanding leases and the ledger
  records the ``stop_sampling`` decision;
* killing the coordinator after a partial merge and resuming from the
  ledger continues the identical draw sequence to the identical final
  store.
"""

import time

import pytest

from repro.campaign import CampaignSpec, exhaustive_bitflips, run_campaign
from repro.dist import Coordinator, read_ledger, run_distributed, spawn_local_workers
from repro.store import CampaignStore

from ..store.test_resume import factory, needs_fork

ROW_IDENTITY = ("idx", "status", "label", "stratum")
CHUNK = 10
MARGIN = 0.1


def make_spec(name):
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)],
        [33e-9 + 10e-9 * k for k in range(15)],
    )
    return CampaignSpec(name=name, faults=faults, t_end=200e-9,
                        outputs=["parity"])


def store_rows(path, name):
    with CampaignStore(str(path)) as store:
        campaign_id = store.campaign_id(name)
        return [tuple(row[key] for key in ROW_IDENTITY)
                for row in store.run_rows(campaign_id)]


def single_host_reference(tmp_path_factory, name):
    path = tmp_path_factory.mktemp("ref") / "ref.db"
    with CampaignStore(str(path)) as store:
        result = run_campaign(
            factory, make_spec(name), sample=True, margin=MARGIN,
            chunk=CHUNK, warm_start=True, on_error="collect", store=store,
        )
    return store_rows(path, name), result.execution["sampling"]


@needs_fork
class TestSampledDistributed:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        return single_host_reference(tmp_path_factory, "dsamp")

    @pytest.fixture(scope="class")
    def distributed(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("dist") / "dist.db"
        result = run_distributed(
            factory, make_spec("dsamp"), workers=3, shard_size=CHUNK,
            store_path=str(path), config={"warm_start": True},
            sampling={"margin": MARGIN}, timeout=300,
        )
        return path, result

    def test_row_identical_to_single_host(self, reference, distributed):
        ref_rows, _ = reference
        path, _ = distributed
        assert store_rows(path, "dsamp") == ref_rows

    def test_identical_estimate_and_stop(self, reference, distributed):
        _, ref_sampling = reference
        _, result = distributed
        sampling = result.execution["sampling"]
        assert result.execution["mode"] == "sampled-distributed"
        assert sampling["reason"] == ref_sampling["reason"]
        assert sampling["trials"] == ref_sampling["trials"]
        assert sampling["estimate"] == ref_sampling["estimate"]
        assert sampling["skipped"] == ref_sampling["skipped"]

    def test_completed_counts_simulated_only(self, distributed):
        _, result = distributed
        sampling = result.execution["sampling"]
        assert result.execution["completed"] == sampling["simulated"]
        assert sampling["simulated"] + sampling["skipped"] \
            == sampling["population"]


@needs_fork
class TestSampledResume:
    def test_coordinator_restart_resumes_to_identical_store(
        self, tmp_path_factory
    ):
        ref_rows, _ = single_host_reference(tmp_path_factory, "rsamp")
        base = tmp_path_factory.mktemp("resume")
        store_path = str(base / "dist.db")
        ledger_path = str(base / "ledger.jsonl")
        spec = make_spec("rsamp")

        # phase 1: one worker limited to two shards, then the
        # coordinator stops as if it crashed
        coordinator = Coordinator(store_path, shard_size=CHUNK,
                                  ledger_path=ledger_path)
        procs = []
        try:
            job_id = coordinator.submit(
                spec, config={"warm_start": True},
                sampling={"margin": MARGIN},
            )
            coordinator.start()
            procs = spawn_local_workers(
                coordinator.address, 1, factory, max_shards=2
            )
            deadline = time.monotonic() + 120
            while coordinator.job_status(job_id)["merged"] < 2:
                assert time.monotonic() < deadline, "no shards merged"
                time.sleep(0.05)
        finally:
            coordinator.stop()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()

        # phase 2: a fresh coordinator resumes from the ledger
        coordinator = Coordinator(store_path, shard_size=CHUNK,
                                  ledger_path=ledger_path)
        coordinator.drain_when_idle(True)
        procs = []
        try:
            assert coordinator.resume_from_ledger() == [job_id]
            coordinator.start()
            procs = spawn_local_workers(coordinator.address, 2, factory)
            status = coordinator.wait(job_id, timeout=300)
            assert status["state"] == "complete", status
        finally:
            coordinator.stop()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()

        assert store_rows(store_path, "rsamp") == ref_rows
        kinds = [record["rec"] for record in read_ledger(ledger_path)]
        assert "stop_sampling" in kinds
        assert "resumed" in kinds
