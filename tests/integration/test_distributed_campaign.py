"""Distributed campaign acceptance: loopback fleet, dead worker, merge.

The hard guarantees ``repro.dist`` makes, exercised over real sockets:

* a coordinator plus two local workers produce a final store
  **row-identical** to a serial run of the same spec;
* SIGKILLing a worker mid-shard revokes its lease, reassigns the
  shard, and the replacement's duplicate rows are deduplicated — the
  completed result set is exactly the campaign's fault list, once;
* the journal narrates the whole thing (``campaign watch`` works on a
  distributed run unchanged).

The journal lands in ``REPRO_ARTIFACT_DIR`` when CI sets it, so a
failed acceptance run ships its own evidence.
"""

import json
import os
import signal
import time

import pytest

from repro.campaign import run_campaign
from repro.dist import Coordinator, spawn_local_workers
from repro.obs.journal import close_journal, open_journal
from repro.store import CampaignStore

from ..store.test_resume import factory, make_spec, needs_fork

ROW_IDENTITY = ("idx", "key", "status", "label", "classification",
                "comparisons")


def slow_factory():
    """The victim worker's design factory: slow enough to die mid-shard.

    Cold (non-warm-start) campaigns rebuild the design every run, so a
    sleep here paces the victim at ~4 runs/s — plenty of window to
    observe a streamed row and SIGKILL it before its shard completes.
    """
    time.sleep(0.25)
    return factory()


def identity(row):
    return tuple(
        json.dumps(row[name], sort_keys=True) for name in ROW_IDENTITY
    )


def store_rows(path, name):
    with CampaignStore(path) as store:
        return store.run_rows(store.campaign_id(name))


@needs_fork
class TestDistributedCampaign:
    @pytest.fixture(scope="class")
    def artifact_dir(self, tmp_path_factory):
        root = os.environ.get("REPRO_ARTIFACT_DIR")
        if root:
            path = os.path.join(root, "distributed-campaign")
            os.makedirs(path, exist_ok=True)
            return path
        return str(tmp_path_factory.mktemp("telemetry"))

    @pytest.fixture(scope="class")
    def serial_rows(self, tmp_path_factory):
        """The reference: the same campaign run serially today."""
        path = tmp_path_factory.mktemp("serial") / "serial.db"
        spec = make_spec()
        with CampaignStore(path) as store:
            run_campaign(factory, spec, store=store)
        return store_rows(path, spec.name)

    @pytest.fixture(scope="class")
    def survived_kill(self, tmp_path_factory, artifact_dir):
        """Run the campaign on 2 workers, SIGKILL one mid-shard.

        Yields ``(final status, store path, journal path)`` for the
        assertions below to pick apart.
        """
        spec = make_spec()
        store_path = tmp_path_factory.mktemp("dist") / "dist.db"
        journal_path = os.path.join(artifact_dir, "distributed.jsonl")
        open_journal(journal_path)
        coordinator = Coordinator(store_path, shard_size=3,
                                  lease_timeout_s=60.0)
        coordinator.drain_when_idle(True)
        processes = []
        try:
            job_id = coordinator.submit(spec)
            coordinator.start()
            # The victim: slow by construction, killed once the
            # coordinator has ingested at least one of its rows — i.e.
            # provably mid-shard, with partial work already merged.
            victim = spawn_local_workers(
                coordinator.address, 1, slow_factory
            )[0]
            processes.append(victim)
            deadline = time.monotonic() + 60
            while coordinator.job_status(job_id)["rows"] == 0:
                assert time.monotonic() < deadline, \
                    "victim worker never streamed a row"
                time.sleep(0.05)
            os.kill(victim.pid, signal.SIGKILL)
            # The survivor finishes everything, including the
            # reassigned shard (and re-streams rows the coordinator
            # already holds — the dedup under test).
            processes.extend(spawn_local_workers(
                coordinator.address, 1, factory
            ))
            status = coordinator.wait(job_id, timeout=120)
        finally:
            coordinator.stop()
            for process in processes:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()
            close_journal()
        yield status, store_path, journal_path

    def test_job_completes_despite_the_kill(self, survived_kill):
        status, _store, _journal = survived_kill
        assert status["state"] == "complete"
        assert status["merged"] == status["shards"] == 4
        assert not status["failed"]

    def test_store_is_row_identical_to_serial(self, survived_kill,
                                              serial_rows):
        _status, store_path, _journal = survived_kill
        rows = store_rows(store_path, make_spec().name)
        assert [identity(row) for row in rows] \
            == [identity(row) for row in serial_rows]

    def test_every_fault_exactly_once(self, survived_kill):
        """At-least-once delivery, exactly-once results."""
        status, store_path, _journal = survived_kill
        rows = store_rows(store_path, make_spec().name)
        assert [row["idx"] for row in rows] == list(range(status["total"]))
        assert all(row["status"] == "ok" for row in rows)

    def test_execution_records_distributed_mode(self, survived_kill):
        _status, store_path, _journal = survived_kill
        spec = make_spec()
        with CampaignStore(store_path) as store:
            result = store.load_result(spec.name)
        assert result.execution["mode"] == "distributed"
        assert result.execution["shards"] == 4
        assert result.execution["completed"] == len(spec.faults)

    def test_journal_narrates_the_reassignment(self, survived_kill):
        _status, _store, journal_path = survived_kill
        with open(journal_path) as handle:
            events = [json.loads(line) for line in handle if line.strip()]
        kinds = [event["event"] for event in events]
        assert "job_submitted" in kinds
        assert "shard_leased" in kinds
        assert "worker_died" in kinds
        assert "shard_reassigned" in kinds
        assert kinds.count("shard_completed") == 4
        # One first-seen row per fault: duplicates from the
        # reassigned shard never reach the journal either.
        assert kinds.count("run_finished") == 12
        assert kinds[-1] == "campaign_finished"
