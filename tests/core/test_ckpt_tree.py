"""Checkpoint tree mechanics: trunk lookup, branching, release accounting."""

import pytest

from repro.core import CheckpointNode, CheckpointTree
from repro.core.errors import SimulationError


def make_tree(times=(0.0, 1e-6, 2e-6)):
    tree = CheckpointTree()
    tree.set_trunk([(t, f"snap@{t}") for t in times])
    return tree


class TestTrunk:
    def test_first_checkpoint_is_root(self):
        tree = make_tree()
        assert tree.root.kind == "root"
        assert tree.root.time == 0.0
        kinds = [node.kind for node in tree.trunk]
        assert kinds == ["root", "trunk", "trunk"]

    def test_trunk_is_a_chain(self):
        tree = make_tree()
        trunk = tree.trunk
        assert trunk[1].parent is trunk[0]
        assert trunk[2].parent is trunk[1]

    def test_trunk_at_picks_deepest_at_or_before(self):
        tree = make_tree()
        assert tree.trunk_at(0.0).time == 0.0
        assert tree.trunk_at(1e-6).time == 1e-6
        assert tree.trunk_at(1.5e-6).time == 1e-6
        assert tree.trunk_at(5e-6).time == 2e-6
        # Before the root: fall back to the root, never IndexError.
        assert tree.trunk_at(-1.0).time == 0.0

    def test_empty_tree_rejected(self):
        tree = CheckpointTree()
        with pytest.raises(SimulationError):
            tree.set_trunk([])
        with pytest.raises(SimulationError):
            tree.trunk_at(0.0)


class TestBranches:
    def test_branch_chain_counts(self):
        tree = make_tree()
        parent = tree.trunk_at(1e-6)
        b1 = tree.branch(parent, 1.1e-6, "s1")
        b2 = tree.branch(b1, 1.2e-6, "s2")
        b3 = tree.branch(b2, 1.4e-6, "s3")
        assert tree.branches_created == 3
        assert tree.branches_live == 3
        assert tree.stats() == {
            "trunk": 3,
            "branch_snapshots": 3,
            "branch_peak_live": 3,
        }
        # Releasing the chain head drops the whole subtree.
        assert tree.release(b1) == 3
        assert tree.branches_live == 0
        # Only the trunk child remains under the parent.
        assert all(child.kind != "branch" for child in parent.children)
        # Created/peak counters are cumulative for observability.
        assert tree.branches_created == 3
        assert tree.peak_live == 3
        assert b3.kind == "branch"

    def test_branch_before_parent_rejected(self):
        tree = make_tree()
        parent = tree.trunk_at(1e-6)
        with pytest.raises(SimulationError):
            tree.branch(parent, 0.5e-6, "too-early")

    def test_only_branches_release(self):
        tree = make_tree()
        with pytest.raises(SimulationError):
            tree.release(tree.trunk_at(0.0))

    def test_node_repr_smoke(self):
        node = CheckpointNode(1e-6, "snap")
        assert "1e-06" in repr(node)
        tree = make_tree()
        assert "trunk=3" in repr(tree)
