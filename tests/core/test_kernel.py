"""Tests for the mixed-mode simulation kernel."""

import pytest

from repro.core import AnalogBlock, L0, L1, Simulator
from repro.core.errors import SchedulingError, SimulationError


class Ramp(AnalogBlock):
    """Writes t (in ns) to its node every step."""

    def __init__(self, sim, name, node):
        super().__init__(sim, name)
        self.out = self.writes_node(node)
        self.dts = []

    def step(self, t, dt):
        self.dts.append(dt)
        self.out.set(t * 1e9)


class Follower(AnalogBlock):
    """Copies another node with gain 2 (combinational)."""

    def __init__(self, sim, name, src, dst):
        super().__init__(sim, name)
        self.src = self.reads_node(src)
        self.dst = self.writes_node(dst)

    def step(self, t, dt):
        self.dst.set(2.0 * self.src.v)


class TestScheduling:
    def test_schedule_and_at(self):
        sim = Simulator()
        order = []
        sim.schedule(2e-9, lambda: order.append("b"))
        sim.at(1e-9, lambda: order.append("a"))
        sim.run(3e-9)
        assert order == ["a", "b"]

    def test_at_in_past_raises(self):
        sim = Simulator()
        sim.run(5e-9)
        with pytest.raises(SchedulingError):
            sim.at(1e-9, lambda: None)

    def test_run_backwards_raises(self):
        sim = Simulator()
        sim.run(5e-9)
        with pytest.raises(SchedulingError):
            sim.run(1e-9)

    def test_run_sets_now_to_until(self):
        sim = Simulator()
        sim.run(7e-9)
        assert sim.now == pytest.approx(7e-9)

    def test_every_periodic(self):
        sim = Simulator()
        hits = []
        sim.every(1e-9, lambda: hits.append(sim.now))
        sim.run(5.5e-9)
        assert len(hits) == 5

    def test_every_stop_on_false(self):
        sim = Simulator()
        hits = []

        def tick():
            hits.append(1)
            if len(hits) == 3:
                return False

        sim.every(1e-9, tick)
        sim.run(10e-9)
        assert len(hits) == 3

    def test_every_bad_period(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.every(0.0, lambda: None)

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(3e-9)
        sim.run_for(2e-9)
        assert sim.now == pytest.approx(5e-9)


class TestProcesses:
    def test_process_runs_at_start(self):
        sim = Simulator()
        hits = []
        sim.add_process(lambda: hits.append(sim.now))
        sim.run(1e-9)
        assert hits == [0.0]

    def test_sensitivity_triggers(self):
        sim = Simulator()
        sig = sim.signal("s", init=L0)
        hits = []
        sim.add_process(lambda: hits.append(sim.now), sensitivity=[sig])
        sig.drive(L1, 5e-9)
        sim.run(10e-9)
        assert hits == [0.0, 5e-9]

    def test_one_activation_per_delta(self):
        sim = Simulator()
        a = sim.signal("a", init=L0)
        b = sim.signal("b", init=L0)
        hits = []
        sim.add_process(lambda: hits.append(sim.now), sensitivity=[a, b])
        a.drive(L1, 5e-9)
        b.drive(L1, 5e-9)
        sim.run(10e-9)
        # Initial run + one combined activation at 5 ns.
        assert len(hits) == 2


class TestAnalogSolver:
    def test_fixed_step_count(self):
        sim = Simulator(dt=1e-9)
        node = sim.node("n")
        Ramp(sim, "r", node)
        sim.run(10e-9)
        assert 10 <= sim.analog_steps <= 11

    def test_no_blocks_no_steps(self):
        sim = Simulator(dt=1e-9)
        sim.run(10e-9)
        assert sim.analog_steps == 0

    def test_refinement_window_changes_dt(self):
        sim = Simulator(dt=1e-9)
        node = sim.node("n")
        ramp = Ramp(sim, "r", node)
        sim.analog.add_refinement_window(5e-9, 6e-9, 0.1e-9)
        sim.run(10e-9)
        fine = [dt for dt in ramp.dts if 0 < dt < 0.5e-9]
        assert len(fine) >= 9

    def test_window_boundary_hit_exactly(self):
        sim = Simulator(dt=1e-9)
        node = sim.node("n")
        ramp = Ramp(sim, "r", node)
        sim.analog.add_refinement_window(4.5e-9, 5.5e-9, 0.25e-9)
        sim.run(10e-9)
        # A step must land exactly on the window start.
        starts = [t for t in _cumtimes(ramp.dts) if abs(t - 4.5e-9) < 1e-15]
        assert starts

    def test_bad_window_rejected(self):
        sim = Simulator(dt=1e-9)
        with pytest.raises(SimulationError):
            sim.analog.add_refinement_window(5e-9, 5e-9, 1e-10)
        with pytest.raises(SimulationError):
            sim.analog.add_refinement_window(1e-9, 2e-9, 0.0)

    def test_evaluation_order_follows_dataflow(self):
        sim = Simulator(dt=1e-9)
        a = sim.node("a")
        b = sim.node("b")
        # Register the follower FIRST; ordering must still put the
        # ramp (producer) before it.
        follower = Follower(sim, "f", a, b)
        ramp = Ramp(sim, "r", a)
        order = sim.analog.evaluation_order()
        assert order.index(ramp) < order.index(follower)
        sim.run(5e-9)
        assert b.v == pytest.approx(2.0 * a.v)

    def test_probe_analog_node(self):
        sim = Simulator(dt=1e-9)
        node = sim.node("n")
        Ramp(sim, "r", node)
        tr = sim.probe(node)
        sim.run(10e-9)
        assert tr.at(5e-9) == pytest.approx(5.0, abs=0.2)

    def test_probe_min_interval_decimates(self):
        sim = Simulator(dt=1e-9)
        node = sim.node("n")
        Ramp(sim, "r", node)
        dense = sim.probe(node)
        sparse = sim.probe(node, min_interval=5e-9)
        sim.run(20e-9)
        assert len(sparse) < len(dense) / 2

    def test_probe_current_node(self):
        from repro.analog import DCCurrent

        sim = Simulator(dt=1e-9)
        node = sim.current_node("i")
        DCCurrent(sim, "src", node, 1e-3)
        tr = sim.probe_current(node)
        sim.run(5e-9)
        assert tr.final == pytest.approx(1e-3)

    def test_probe_bad_target(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.probe(42)


class TestRegistries:
    def test_duplicate_node_name(self):
        sim = Simulator()
        sim.node("n")
        with pytest.raises(Exception):
            sim.node("n")

    def test_find_component(self):
        from repro.core import Component

        sim = Simulator()
        top = Component(sim, "top")
        child = Component(sim, "child", parent=top)
        assert sim.find_component("top/child") is child
        with pytest.raises(Exception):
            sim.find_component("nope")


def _cumtimes(dts):
    total = 0.0
    times = []
    for dt in dts:
        total += dt
        times.append(total)
    return times
