"""Tests for engineering-unit parsing and formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.units import (
    UnitError,
    amperes,
    format_quantity,
    hertz,
    parse_quantity,
    seconds,
    volts,
)


class TestParseQuantity:
    def test_plain_number_passthrough(self):
        assert parse_quantity(3.5) == 3.5
        assert parse_quantity(7) == 7.0

    def test_milliamp(self):
        assert parse_quantity("10mA") == pytest.approx(10e-3)

    def test_picoseconds(self):
        assert parse_quantity("500ps") == pytest.approx(500e-12)

    def test_megahertz(self):
        assert parse_quantity("50MHz") == pytest.approx(50e6)

    def test_kilohm(self):
        assert parse_quantity("15.7kOhm") == pytest.approx(15.7e3)

    def test_volts_no_prefix(self):
        assert parse_quantity("2.5V") == 2.5

    def test_bare_number_string(self):
        assert parse_quantity("42") == 42.0

    def test_scientific_notation(self):
        assert parse_quantity("1e-9s") == pytest.approx(1e-9)

    def test_negative_value(self):
        assert parse_quantity("-10mA") == pytest.approx(-10e-3)

    def test_micro_both_spellings(self):
        assert parse_quantity("100uA") == pytest.approx(100e-6)
        assert parse_quantity("100µA") == pytest.approx(100e-6)

    def test_nanofarad(self):
        assert parse_quantity("1.62nF") == pytest.approx(1.62e-9)

    def test_expected_unit_match(self):
        assert parse_quantity("20ns", expect_unit="s") == pytest.approx(20e-9)

    def test_expected_unit_mismatch_raises(self):
        with pytest.raises(UnitError):
            parse_quantity("10mA", expect_unit="s")

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_quantity("10mX")

    def test_garbage_raises(self):
        with pytest.raises(UnitError):
            parse_quantity("hello")

    def test_none_raises(self):
        with pytest.raises(UnitError):
            parse_quantity(None)

    def test_bare_prefix_is_implicit_milli(self):
        # "10m" parses as 10 milli-<implicit unit>.
        assert parse_quantity("10m") == pytest.approx(0.01)

    def test_shorthand_helpers(self):
        assert seconds("20ns") == pytest.approx(20e-9)
        assert amperes("10mA") == pytest.approx(0.01)
        assert volts("5V") == 5.0
        assert hertz("500kHz") == pytest.approx(5e5)

    def test_expect_unit_allows_bare_number(self):
        assert parse_quantity("3.3", expect_unit="V") == 3.3


class TestFormatQuantity:
    def test_zero(self):
        assert format_quantity(0.0, "A") == "0A"

    def test_milli(self):
        assert format_quantity(0.01, "A") == "10mA"

    def test_pico(self):
        assert format_quantity(5e-10, "s") == "500ps"

    def test_mega(self):
        assert format_quantity(5e7, "Hz") == "50MHz"

    def test_negative(self):
        assert format_quantity(-2.5e-3, "V") == "-2.5mV"

    def test_nan_inf(self):
        assert format_quantity(float("nan"), "s") == "nan s"
        assert format_quantity(float("inf"), "s") == "inf s"
        assert format_quantity(float("-inf"), "s") == "-inf s"
        assert format_quantity(float("nan")) == "nan"
        assert format_quantity(float("-inf")) == "-inf"

    def test_rounding_rollover(self):
        # 999.99 rounds to 1000 at 4 digits and must roll to the next
        # prefix rather than print "1000".
        text = format_quantity(999.99e-9, "s", digits=3)
        assert text == "1us"


@given(
    st.floats(min_value=1e-12, max_value=1e11, allow_nan=False),
    st.sampled_from(["s", "A", "V", "Hz"]),
)
def test_format_parse_roundtrip(value, unit):
    """format -> parse recovers the value within formatting precision."""
    text = format_quantity(value, unit, digits=9)
    recovered = parse_quantity(text, expect_unit=unit)
    assert math.isclose(recovered, value, rel_tol=1e-6)
