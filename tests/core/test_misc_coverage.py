"""Coverage for small helpers not exercised elsewhere."""

import pytest

from repro.core import AnalogBlock, Component, L0, Simulator
from repro.core.hierarchy import analog_blocks, iter_components
from repro.core.node import CurrentNode


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


class TestHierarchyHelpers:
    def test_iter_components(self, sim):
        top = Component(sim, "top")
        child = Component(sim, "child", parent=top)
        assert list(iter_components(top)) == [top, child]

    def test_analog_blocks_filters(self, sim):
        top = Component(sim, "top")
        node = sim.node("n")

        class Block(AnalogBlock):
            def __init__(self, s, name, parent):
                super().__init__(s, name, parent=parent)
                self.out = self.writes_node(node)

            def step(self, t, dt):
                self.out.set(1.0)

        block = Block(sim, "blk", top)
        Component(sim, "digitalish", parent=top)
        assert analog_blocks(top) == [block]

    def test_default_state_signals_empty(self, sim):
        assert Component(sim, "c").state_signals() == {}

    def test_abstract_step_raises(self, sim):
        block = AnalogBlock(sim, "b")
        with pytest.raises(NotImplementedError):
            block.step(0.0, 1e-9)


class TestCurrentNodeDiagnostics:
    def test_labelled_contributions(self, sim):
        node = CurrentNode(sim, "i")
        node.clear_current()
        node.add_current(1e-3, source="pump")
        node.add_current(-2e-4, source="sab")
        node.add_current(1e-4, source="pump")
        assert node.i == pytest.approx(9e-4)
        contributions = node.contributions()
        assert contributions["pump"] == pytest.approx(1.1e-3)
        assert contributions["sab"] == pytest.approx(-2e-4)

    def test_clear_resets(self, sim):
        node = CurrentNode(sim, "i")
        node.add_current(1e-3, source="x")
        node.clear_current()
        assert node.i == 0.0
        assert node.contributions() == {}

    def test_repr_shows_both_quantities(self, sim):
        node = CurrentNode(sim, "i")
        node.set(2.5)
        node.add_current(1e-3)
        text = repr(node)
        assert "2.5" in text and "0.001" in text


class TestSimulatorIntrospection:
    def test_counters_advance(self, sim):
        sig = sim.signal("s", init=L0)
        sim.schedule(1e-9, lambda: None)
        sim.run(2e-9)
        assert sim.events_executed >= 1
        assert sim.analog_steps == 0  # no analog blocks

    def test_probe_names_default_and_override(self, sim):
        sig = sim.signal("s", init=L0)
        assert sim.probe(sig).name == "s"
        assert sim.probe(sig, name="alias").name == "alias"
        node = sim.current_node("i")
        assert sim.probe_current(node).name == "i.i"
