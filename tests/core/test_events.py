"""Tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SchedulingError
from repro.core.events import (
    EventQueue,
    PRIORITY_ANALOG,
    PRIORITY_MONITOR,
    PRIORITY_NORMAL,
)


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append("c"))
        q.push(1.0, lambda: order.append("a"))
        q.push(2.0, lambda: order.append("b"))
        while q.peek_time() is not None:
            q.pop().callback()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        q = EventQueue()
        order = []
        for tag in "abc":
            q.push(1.0, lambda t=tag: order.append(t))
        while q.peek_time() is not None:
            q.pop().callback()
        assert order == ["a", "b", "c"]

    def test_priority_within_timestamp(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("normal"), PRIORITY_NORMAL)
        q.push(1.0, lambda: order.append("monitor"), PRIORITY_MONITOR)
        q.push(1.0, lambda: order.append("analog"), PRIORITY_ANALOG)
        while q.peek_time() is not None:
            q.pop().callback()
        assert order == ["analog", "normal", "monitor"]

    def test_priority_never_beats_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("early-analog"), PRIORITY_ANALOG)
        q.push(1.0, lambda: order.append("late-normal"), PRIORITY_NORMAL)
        while q.peek_time() is not None:
            q.pop().callback()
        assert order == ["late-normal", "early-analog"]

    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while q.peek_time() is not None:
            popped.append(q.pop().time)
        assert popped == sorted(times)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        assert q.peek_time() is None
        assert len(q) == 0

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(q) == 0

    def test_cancel_one_of_many(self):
        q = EventQueue()
        keep = q.push(2.0, lambda: None)
        drop = q.push(1.0, lambda: None)
        drop.cancel()
        assert q.peek_time() == 2.0
        assert q.pop() is keep


class TestQueueBasics:
    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.pop()

    def test_len_counts_live_events(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        e = q.push(2.0, lambda: None)
        assert len(q) == 2
        e.cancel()
        assert len(q) == 1

    def test_executed_counter(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.pop()
        assert q.executed == 1
        q.pop()
        assert q.executed == 2

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert q.peek_time() is None

    def test_repr_mentions_state(self):
        q = EventQueue()
        event = q.push(1.5, lambda: None)
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
