"""Tests for run budgets and numerical guards.

The supervised campaign layer relies on two kernel-level properties:
a budgeted run *always* stops with a typed error instead of hanging,
and a numerically diverging analog solve is caught close to the first
bad value.  These tests pin both down at the kernel level, including
the interaction with snapshot/restore (the guard's step-to-step
history must not leak across a restore).
"""

import math

import pytest

from repro.core import (
    AnalogBlock,
    BudgetExceededError,
    L0,
    NumericalDivergenceError,
    NumericalGuard,
    RunBudget,
    Simulator,
)
from repro.core.errors import ReproError
from repro.digital import ClockGen


class Poison(AnalogBlock):
    """Writes a configurable value to its node from ``t_bad`` on."""

    def __init__(self, sim, name, node, t_bad, bad_value):
        super().__init__(sim, name)
        self.out = self.writes_node(node)
        self.t_bad = t_bad
        self.bad_value = bad_value

    def step(self, t, dt):
        self.out.set(self.bad_value if t >= self.t_bad else 1.0)


def clocked_sim(period=10e-9):
    sim = Simulator(dt=1e-9)
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=period)
    return sim


def analog_sim(t_bad, bad_value):
    sim = Simulator(dt=1e-9)
    node = sim.node("x")
    Poison(sim, "poison", node, t_bad, bad_value)
    return sim


class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ReproError):
            RunBudget(max_events=0)
        with pytest.raises(ReproError):
            RunBudget(max_wall_s=-1.0)
        with pytest.raises(ReproError):
            RunBudget(max_steps=-5)

    def test_engineering_notation_wall(self):
        assert RunBudget(max_wall_s="30s").max_wall_s == 30.0
        assert RunBudget(max_wall_s="500ms").max_wall_s == 0.5

    def test_empty_and_describe(self):
        assert RunBudget().empty
        assert RunBudget().describe() == "unlimited"
        budget = RunBudget(max_wall_s=2.0, max_events=10, max_steps=5)
        assert not budget.empty
        assert "events<=10" in budget.describe()
        assert "steps<=5" in budget.describe()

    def test_event_budget_trips(self):
        sim = clocked_sim()
        sim.budget = RunBudget(max_events=25)
        with pytest.raises(BudgetExceededError) as info:
            sim.run(100e-6)
        assert info.value.resource == "events"
        assert sim.events_executed >= 25

    def test_step_budget_trips(self):
        sim = analog_sim(t_bad=1.0, bad_value=1.0)  # never poisons
        sim.budget = RunBudget(max_steps=10)
        with pytest.raises(BudgetExceededError) as info:
            sim.run(1e-6)
        assert info.value.resource == "steps"

    def test_wall_budget_trips(self):
        sim = clocked_sim(period=2e-9)
        sim.budget = RunBudget(max_wall_s=1e-9)  # trips immediately
        with pytest.raises(BudgetExceededError) as info:
            sim.run(1e-3)
        assert info.value.resource == "wall"

    def test_budget_is_per_run_call(self):
        sim = clocked_sim()
        sim.budget = RunBudget(max_events=50)
        sim.run(100e-9)  # well under budget
        sim.run(200e-9)  # counts restart per call: still under
        assert sim.now == pytest.approx(200e-9)

    def test_unbudgeted_run_unchanged(self):
        budgeted = clocked_sim()
        budgeted.budget = RunBudget(max_events=10**9)
        free = clocked_sim()
        budgeted.run(1e-6)
        free.run(1e-6)
        assert budgeted.events_executed == free.events_executed


class TestNumericalGuard:
    def test_validation(self):
        with pytest.raises(ReproError):
            NumericalGuard(check_every=0)
        with pytest.raises(ReproError):
            NumericalGuard(max_abs=0)
        with pytest.raises(ReproError):
            NumericalGuard(max_step_delta=-1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_nonfinite_detected(self, bad):
        sim = analog_sim(t_bad=50e-9, bad_value=bad)
        sim.analog.guard = NumericalGuard(check_every=1)
        with pytest.raises(NumericalDivergenceError) as info:
            sim.run(1e-6)
        assert info.value.node == "x"
        assert "non-finite" in str(info.value)
        # Caught near the poison time, not at the end of the run.
        assert info.value.at_time < 60e-9

    def test_magnitude_runaway_detected(self):
        sim = analog_sim(t_bad=50e-9, bad_value=1e15)
        sim.analog.guard = NumericalGuard(max_abs=1e6, check_every=1)
        with pytest.raises(NumericalDivergenceError) as info:
            sim.run(1e-6)
        assert info.value.value == pytest.approx(1e15)

    def test_step_delta_detected(self):
        sim = analog_sim(t_bad=50e-9, bad_value=100.0)
        sim.analog.guard = NumericalGuard(
            max_abs=None, max_step_delta=10.0, check_every=1
        )
        with pytest.raises(NumericalDivergenceError) as info:
            sim.run(1e-6)
        assert "step delta" in str(info.value)

    def test_stride_delays_but_catches(self):
        sim = analog_sim(t_bad=50e-9, bad_value=float("nan"))
        sim.analog.guard = NumericalGuard(check_every=64)
        with pytest.raises(NumericalDivergenceError):
            sim.run(1e-6)

    def test_healthy_run_untouched(self):
        guarded = analog_sim(t_bad=1.0, bad_value=1.0)
        guarded.analog.guard = NumericalGuard(check_every=1)
        free = analog_sim(t_bad=1.0, bad_value=1.0)
        guarded.run(1e-6)
        free.run(1e-6)
        assert guarded.events_executed == free.events_executed
        assert guarded.nodes["x"].v == free.nodes["x"].v

    def test_fresh_copies_config_not_history(self):
        guard = NumericalGuard(max_abs=5.0, max_step_delta=2.0,
                               check_every=3)
        guard._previous["x"] = 1.0
        clone = guard.fresh()
        assert clone.max_abs == 5.0
        assert clone.max_step_delta == 2.0
        assert clone.check_every == 3
        assert clone._previous == {}

    def test_restore_resets_slew_history(self):
        """A snapshot restore must not register as a huge step delta."""
        sim = Simulator(dt=1e-9)
        node = sim.node("x")

        class Grower(AnalogBlock):
            def __init__(self, sim, name, node):
                super().__init__(sim, name)
                self.out = self.writes_node(node)

            def step(self, t, dt):
                # Grows smoothly; jumping back to an early checkpoint
                # rewinds the value by much more than max_step_delta.
                self.out.set(t * 1e9)

        Grower(sim, "grow", node)
        guard = NumericalGuard(max_abs=None, max_step_delta=5.0,
                               check_every=1)
        sim.analog.guard = guard
        sim.run(20e-9)
        snap = sim.snapshot()
        sim.run(400e-9)
        sim.restore(snap)  # value rewinds from ~400 to ~20
        assert guard._previous == {}
        sim.run(430e-9)  # no spurious divergence


class TestNonfiniteFormatting:
    def test_guard_messages_use_units_helpers(self):
        from repro.core import format_nonfinite, nonfinite_diagnostic

        assert format_nonfinite(float("nan"), "V") == "nan V"
        assert format_nonfinite(float("-inf"), "s") == "-inf s"
        assert format_nonfinite(1.0, "V") is None
        message = nonfinite_diagnostic("pll.vctrl", float("inf"), 4e-8)
        assert "pll.vctrl" in message
        assert "inf V" in message
        assert "40" in message  # at t=40ns

    def test_exceptions_pickle_with_type(self):
        import pickle

        from repro.core import WorkerCrashError

        for exc in (
            BudgetExceededError("b", resource="events", limit=5, used=6),
            NumericalDivergenceError("n", node="x", value=math.inf),
            WorkerCrashError("w", exitcode=-9),
        ):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
