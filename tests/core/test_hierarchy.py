"""Tests for the component hierarchy and its query helpers."""

import pytest

from repro.core import Component, L0, Simulator
from repro.core.errors import ElaborationError
from repro.core.hierarchy import (
    collect_current_nodes,
    collect_state_signals,
    common_ancestor,
    depth_of,
    format_tree,
)
from repro.digital import Bus, Counter, DFF


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


def build_tree(sim):
    top = Component(sim, "top")
    blk_a = Component(sim, "a", parent=top)
    blk_b = Component(sim, "b", parent=top)
    leaf = Component(sim, "leaf", parent=blk_a)
    return top, blk_a, blk_b, leaf


class TestPaths:
    def test_path_composition(self, sim):
        top, blk_a, _b, leaf = build_tree(sim)
        assert top.path == "top"
        assert blk_a.path == "top/a"
        assert leaf.path == "top/a/leaf"

    def test_walk_depth_first(self, sim):
        top, blk_a, blk_b, leaf = build_tree(sim)
        assert list(top.walk()) == [top, blk_a, leaf, blk_b]

    def test_find(self, sim):
        top, _a, _b, leaf = build_tree(sim)
        assert top.find("a/leaf") is leaf

    def test_find_missing_raises(self, sim):
        top, *_ = build_tree(sim)
        with pytest.raises(ElaborationError):
            top.find("a/nothing")

    def test_duplicate_sibling_rejected(self, sim):
        top, *_ = build_tree(sim)
        with pytest.raises(ElaborationError):
            Component(sim, "a", parent=top)

    def test_slash_in_name_rejected(self, sim):
        with pytest.raises(ElaborationError):
            Component(sim, "bad/name")

    def test_depth(self, sim):
        top, _a, _b, leaf = build_tree(sim)
        assert depth_of(top) == 0
        assert depth_of(leaf) == 2

    def test_common_ancestor(self, sim):
        top, blk_a, blk_b, leaf = build_tree(sim)
        assert common_ancestor(leaf, blk_b) is top
        assert common_ancestor(leaf, blk_a) is blk_a

    def test_format_tree(self, sim):
        top, *_ = build_tree(sim)
        text = format_tree(top)
        assert "top" in text and "  a" in text and "    leaf" in text


class TestStateCollection:
    def test_collect_state_signals(self, sim):
        top = Component(sim, "top")
        clk = sim.signal("clk", init=L0)
        d = sim.signal("d", init=L0)
        q = sim.signal("q")
        DFF(sim, "ff", d, clk, q, parent=top)
        bus = Bus(sim, "cnt", 2)
        Counter(sim, "counter", clk, bus, parent=top)
        names = [name for name, _sig in collect_state_signals(top)]
        assert "top/ff.q" in names
        assert "top/counter.q[0]" in names and "top/counter.q[1]" in names

    def test_pattern_filter(self, sim):
        top = Component(sim, "top")
        clk = sim.signal("clk", init=L0)
        bus = Bus(sim, "cnt", 4)
        Counter(sim, "counter", clk, bus, parent=top)
        names = [n for n, _s in collect_state_signals(top, "*q[0]*")]
        assert names == ["top/counter.q[0]"]

    def test_combinational_component_has_no_state(self, sim):
        top = Component(sim, "top")
        assert collect_state_signals(top) == []


class TestNodeCollection:
    def test_collect_current_nodes_only(self, sim):
        sim.node("v1")
        sim.current_node("i1")
        sim.current_node("i2")
        names = [n for n, _node in collect_current_nodes(sim)]
        assert names == ["i1", "i2"]

    def test_collect_with_pattern(self, sim):
        sim.current_node("pll.icp")
        sim.current_node("adc.held")
        names = [n for n, _node in collect_current_nodes(sim, "pll.*")]
        assert names == ["pll.icp"]
