"""Tests for the nine-value logic system."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import LogicValueError
from repro.core.logic import (
    L0,
    L1,
    Logic,
    X,
    Z,
    bits_from_int,
    flip,
    int_from_bits,
    logic,
    logic_and,
    logic_buf,
    logic_nand,
    logic_nor,
    logic_not,
    logic_or,
    logic_xnor,
    logic_xor,
    resolve,
    resolve_many,
    vector_string,
)

ALL_LEVELS = list(Logic)
levels = st.sampled_from(ALL_LEVELS)


class TestCoercion:
    def test_from_bool(self):
        assert logic(True) is L1
        assert logic(False) is L0

    def test_from_int(self):
        assert logic(0) is L0
        assert logic(1) is L1

    def test_from_char_both_cases(self):
        assert logic("x") is X
        assert logic("Z") is Z
        assert logic("L") is Logic.WL
        assert logic("-") is Logic.DC

    def test_invalid_int(self):
        with pytest.raises(LogicValueError):
            logic(2)

    def test_invalid_char(self):
        with pytest.raises(LogicValueError):
            logic("Q")

    def test_passthrough(self):
        assert logic(Logic.WH) is Logic.WH


class TestPredicates:
    def test_high_levels(self):
        assert L1.is_high() and Logic.WH.is_high()
        assert not X.is_high() and not Z.is_high()

    def test_low_levels(self):
        assert L0.is_low() and Logic.WL.is_low()
        assert not X.is_low()

    def test_to_bool(self):
        assert L1.to_bool() is True
        assert Logic.WL.to_bool() is False
        with pytest.raises(LogicValueError):
            X.to_bool()

    def test_to_x01(self):
        assert Logic.WH.to_x01() is L1
        assert Logic.WL.to_x01() is L0
        assert Z.to_x01() is X
        assert Logic.U.to_x01() is X

    def test_char_roundtrip(self):
        for level in ALL_LEVELS:
            assert logic(level.char) is level


class TestResolution:
    def test_strong_beats_z(self):
        assert resolve(L1, Z) is L1
        assert resolve(Z, L0) is L0

    def test_conflict_is_x(self):
        assert resolve(L0, L1) is X

    def test_u_dominates(self):
        for level in ALL_LEVELS:
            assert resolve(Logic.U, level) is Logic.U

    def test_strong_beats_weak(self):
        assert resolve(L0, Logic.WH) is L0
        assert resolve(L1, Logic.WL) is L1

    def test_weak_conflict(self):
        assert resolve(Logic.WL, Logic.WH) is Logic.W

    def test_resolve_many_empty_is_z(self):
        assert resolve_many([]) is Z

    def test_resolve_many_chain(self):
        assert resolve_many([Z, Logic.WH, Z]) is Logic.WH
        assert resolve_many([Z, Logic.WH, L0]) is L0

    @given(levels, levels)
    def test_commutative(self, a, b):
        assert resolve(a, b) is resolve(b, a)

    @given(levels, levels, levels)
    def test_associative(self, a, b, c):
        assert resolve(resolve(a, b), c) is resolve(a, resolve(b, c))

    @given(levels)
    def test_idempotent_except_dont_care(self, a):
        # Per IEEE 1164 the don't-care resolves to X with anything
        # except U — even with itself.
        if a is Logic.DC:
            assert resolve(a, a) is X
        else:
            assert resolve(a, a) is a

    @given(levels)
    def test_z_is_identity_except_dont_care(self, a):
        if a is Logic.DC:
            assert resolve(a, Z) is X
        else:
            assert resolve(a, Z) is a


class TestOperators:
    def test_not_truth_table(self):
        assert logic_not(L0) is L1
        assert logic_not(L1) is L0
        assert logic_not(X) is X
        assert logic_not(Z) is X

    def test_and_dominant_zero(self):
        assert logic_and(L0, X) is L0
        assert logic_and(X, L0) is L0
        assert logic_and(L1, L1) is L1
        assert logic_and(L1, X) is X

    def test_or_dominant_one(self):
        assert logic_or(L1, X) is L1
        assert logic_or(L0, L0) is L0
        assert logic_or(L0, X) is X

    def test_xor(self):
        assert logic_xor(L0, L1) is L1
        assert logic_xor(L1, L1) is L0
        assert logic_xor(L1, X) is X

    def test_derived_gates(self):
        assert logic_nand(L1, L1) is L0
        assert logic_nor(L0, L0) is L1
        assert logic_xnor(L1, L1) is L1

    def test_buf_strips_strength(self):
        assert logic_buf(Logic.WH) is L1
        assert logic_buf(Z) is X

    @given(levels, levels)
    def test_de_morgan(self, a, b):
        assert logic_not(logic_and(a, b)) is logic_or(logic_not(a), logic_not(b))

    @given(levels)
    def test_double_negation_on_defined(self, a):
        if a.is_defined():
            assert logic_not(logic_not(a)) is a.to_x01()


class TestFlip:
    def test_flip_defined(self):
        assert flip(L0) is L1
        assert flip(Logic.WH) is L0

    def test_flip_undefined_goes_x(self):
        assert flip(X) is X
        assert flip(Z) is X
        assert flip(Logic.U) is X

    @given(levels)
    def test_flip_always_differs_when_defined(self, a):
        if a.is_defined():
            assert flip(a).is_defined()
            assert flip(a).is_high() != a.is_high()


class TestVectors:
    def test_bits_from_int(self):
        assert bits_from_int(5, 4) == [L1, L0, L1, L0]

    def test_int_from_bits_roundtrip(self):
        for value in (0, 1, 7, 200, 255):
            assert int_from_bits(bits_from_int(value, 8)) == value

    def test_int_from_bits_undefined_raises(self):
        with pytest.raises(LogicValueError):
            int_from_bits([L1, X, L0])

    def test_out_of_range(self):
        with pytest.raises(LogicValueError):
            bits_from_int(16, 4)
        with pytest.raises(LogicValueError):
            bits_from_int(-1, 4)

    def test_zero_width(self):
        with pytest.raises(LogicValueError):
            bits_from_int(0, 0)

    def test_vector_string_msb_first(self):
        assert vector_string(bits_from_int(5, 4)) == "0101"
        assert vector_string([X, L1]) == "1X"

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_property(self, value):
        assert int_from_bits(bits_from_int(value, 16)) == value
