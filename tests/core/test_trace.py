"""Tests for waveform traces."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import L0, L1, LINEAR, STEP, Logic, Trace, difference
from repro.core.errors import MeasurementError


def ramp_trace(n=11, slope=1.0):
    tr = Trace("ramp", interp=LINEAR)
    for i in range(n):
        tr.append(i * 1.0, i * slope)
    return tr


class TestConstruction:
    def test_append_and_len(self):
        tr = Trace("t")
        tr.append(0.0, 1.0)
        tr.append(1.0, 2.0)
        assert len(tr) == 2

    def test_non_monotonic_rejected(self):
        tr = Trace("t")
        tr.append(1.0, 0.0)
        with pytest.raises(MeasurementError):
            tr.append(0.5, 0.0)

    def test_equal_times_allowed(self):
        tr = Trace("t")
        tr.append(1.0, 0.0)
        tr.append(1.0, 5.0)
        assert len(tr) == 2

    def test_from_arrays(self):
        tr = Trace.from_arrays("t", [0, 1, 2], [5, 6, 7])
        assert tr.at(1.0) == 6.0

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(MeasurementError):
            Trace.from_arrays("t", [0, 1], [5])

    def test_bad_interp(self):
        with pytest.raises(MeasurementError):
            Trace("t", interp="cubic")

    def test_logic_values_map_to_float(self):
        tr = Trace("t", interp=STEP)
        tr.append(0.0, L0)
        tr.append(1.0, L1)
        tr.append(2.0, Logic.X)
        values = tr.values
        assert values[0] == 0.0 and values[1] == 1.0 and np.isnan(values[2])


class TestInterpolation:
    def test_linear_midpoint(self):
        tr = ramp_trace()
        assert tr.at(2.5) == pytest.approx(2.5)

    def test_step_holds_previous(self):
        tr = Trace("t", interp=STEP)
        tr.append(0.0, 1.0)
        tr.append(10.0, 5.0)
        assert tr.at(9.9) == 1.0
        assert tr.at(10.0) == 5.0

    def test_clamp_before_and_after(self):
        tr = ramp_trace()
        assert tr.at(-5.0) == 0.0
        assert tr.at(100.0) == 10.0

    def test_value_at_returns_payload(self):
        tr = Trace("t", interp=STEP)
        tr.append(0.0, "IDLE")
        tr.append(5.0, "RUN")
        assert tr.value_at(3.0) == "IDLE"
        assert tr.value_at(5.0) == "RUN"

    def test_resample_linear(self):
        tr = ramp_trace()
        grid = np.array([0.5, 1.5, 9.5])
        np.testing.assert_allclose(tr.resample(grid), [0.5, 1.5, 9.5])

    def test_resample_step(self):
        tr = Trace("t", interp=STEP)
        tr.append(0.0, 0.0)
        tr.append(2.0, 1.0)
        np.testing.assert_allclose(tr.resample([0.0, 1.9, 2.0, 3.0]),
                                   [0, 0, 1, 1])


class TestCrossings:
    def test_rising_crossing_interpolated(self):
        tr = Trace("t", interp=LINEAR)
        tr.append(0.0, 0.0)
        tr.append(1.0, 2.0)
        crossings = tr.crossings(1.0, "rise")
        assert crossings == pytest.approx([0.5])

    def test_fall_and_both(self):
        tr = Trace("t", interp=LINEAR)
        for t, v in [(0, 0), (1, 2), (2, 0)]:
            tr.append(float(t), float(v))
        assert len(tr.crossings(1.0, "rise")) == 1
        assert len(tr.crossings(1.0, "fall")) == 1
        assert len(tr.crossings(1.0, "both")) == 2

    def test_bad_direction(self):
        tr = ramp_trace()
        with pytest.raises(MeasurementError):
            tr.crossings(1.0, direction="sideways")

    def test_nan_blocks_crossing(self):
        tr = Trace("t", interp=LINEAR)
        tr.append(0.0, 0.0)
        tr.append(1.0, float("nan"))
        tr.append(2.0, 2.0)
        assert len(tr.crossings(1.0, "rise")) == 0

    def test_digital_edges(self):
        tr = Trace("t", interp=STEP)
        for t, v in [(0, L0), (3, L1), (7, L0), (9, L1)]:
            tr.append(float(t), v)
        np.testing.assert_allclose(tr.edges("rise"), [3.0, 9.0])
        np.testing.assert_allclose(tr.edges("fall"), [7.0])

    def test_periods(self):
        tr = Trace("t", interp=STEP)
        for i in range(8):
            tr.append(i * 10.0, L1 if i % 2 == 0 else L0)
        # Rises at 20, 40 and 60 (the t=0 sample is initial state,
        # not an edge) -> two periods of 20.
        periods = tr.periods()
        np.testing.assert_allclose(periods, [20.0, 20.0])


class TestSegmentsAndStats:
    def test_segment_bounds(self):
        tr = ramp_trace()
        seg = tr.segment(2.0, 5.0)
        assert seg.t_start == 2.0 and seg.t_end == 5.0
        assert len(seg) == 4

    def test_segment_open_ended(self):
        tr = ramp_trace()
        assert tr.segment(None, 3.0).t_end == 3.0
        assert tr.segment(7.0, None).t_start == 7.0

    def test_min_max(self):
        tr = ramp_trace()
        assert tr.minimum() == 0.0
        assert tr.maximum() == 10.0
        assert tr.maximum(0.0, 4.0) == 4.0

    def test_mean_of_ramp(self):
        tr = ramp_trace()
        assert tr.mean() == pytest.approx(5.0)

    def test_final(self):
        tr = ramp_trace()
        assert tr.final == 10.0

    def test_empty_trace_raises(self):
        tr = Trace("t")
        with pytest.raises(MeasurementError):
            _ = tr.final


class TestDifference:
    def test_identical_traces(self):
        a = ramp_trace()
        b = ramp_trace()
        grid, delta = difference(a, b)
        assert np.allclose(delta, 0.0)

    def test_offset(self):
        a = ramp_trace()
        b = Trace.from_arrays("b", [0.0, 10.0], [1.0, 11.0])
        _grid, delta = difference(b, a)
        assert np.allclose(delta, 1.0)

    def test_disjoint_raises(self):
        a = Trace.from_arrays("a", [0.0, 1.0], [0, 0])
        b = Trace.from_arrays("b", [5.0, 6.0], [0, 0])
        with pytest.raises(MeasurementError):
            difference(a, b)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        min_size=2,
        max_size=40,
    )
)
def test_at_within_value_range(points):
    """Linear interpolation never exceeds the sample value range."""
    points = sorted(points, key=lambda p: p[0])
    tr = Trace("h", interp=LINEAR)
    for t, v in points:
        tr.append(t, v)
    lo = min(v for _t, v in points)
    hi = max(v for _t, v in points)
    for q in np.linspace(points[0][0], points[-1][0], 17):
        assert lo - 1e-9 <= tr.at(float(q)) <= hi + 1e-9


@given(st.integers(min_value=2, max_value=30))
def test_segment_then_resample_consistent(n):
    """Resampling a segment equals resampling the parent inside it."""
    tr = ramp_trace(n=n)
    seg = tr.segment(1.0, n - 1.0)
    grid = np.linspace(1.0, min(n - 1.0, seg.t_end), 7)
    np.testing.assert_allclose(seg.resample(grid), tr.resample(grid))
