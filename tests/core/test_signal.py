"""Tests for digital signals: driving, resolution, forcing, edges."""

import pytest

from repro.core import L0, L1, Logic, Simulator, X, Z
from repro.core.errors import SimulationError


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


class TestDriving:
    def test_initial_value(self, sim):
        sig = sim.signal("s", init=L0)
        assert sig.value is L0

    def test_default_init_is_u(self, sim):
        sig = sim.signal("s")
        assert sig.value is Logic.U

    def test_drive_with_delay(self, sim):
        sig = sim.signal("s", init=L0)
        sig.drive(L1, delay=5e-9)
        sim.run(4e-9)
        assert sig.value is L0
        sim.run(6e-9)
        assert sig.value is L1

    def test_zero_delay_drive_lands_same_run(self, sim):
        sig = sim.signal("s", init=L0)
        sig.drive(L1)
        sim.run(0.0)
        assert sig.value is L1

    def test_negative_delay_raises(self, sim):
        sig = sim.signal("s", init=L0)
        with pytest.raises(SimulationError):
            sig.drive(L1, delay=-1e-9)

    def test_change_count(self, sim):
        sig = sim.signal("s", init=L0)
        sig.drive(L1, 1e-9)
        sig.drive(L1, 2e-9)  # no change
        sig.drive(L0, 3e-9)
        sim.run(5e-9)
        assert sig.change_count == 2

    def test_non_logic_payload(self, sim):
        sig = sim.signal("state", init="IDLE")
        sig.drive("RUN", delay=1e-9)
        sim.run(2e-9)
        assert sig.value == "RUN"


class TestResolution:
    def test_two_drivers_resolve(self, sim):
        sig = sim.signal("s", init=Z)
        d1 = sig.driver()
        d2 = sig.driver()
        d1.set(L1)
        d2.set(Z)
        sim.run(1e-9)
        assert sig.value is L1
        d2.set(L0)
        sim.run(2e-9)
        assert sig.value is X

    def test_unresolved_signal_rejects_second_driver(self, sim):
        sig = sim.signal("s", resolved=False)
        sig.driver()
        with pytest.raises(SimulationError):
            sig.driver()


class TestEdges:
    def test_rose_seen_by_listener(self, sim):
        sig = sim.signal("s", init=L0)
        seen = []
        sig.on_change(lambda s: seen.append((s.rose(), s.fell())))
        sig.drive(L1, 1e-9)
        sig.drive(L0, 2e-9)
        sim.run(3e-9)
        assert seen == [(True, False), (False, True)]

    def test_last_change_time(self, sim):
        sig = sim.signal("s", init=L0)
        sig.drive(L1, 7e-9)
        sim.run(10e-9)
        assert sig.last_change_time == pytest.approx(7e-9)

    def test_prev_value(self, sim):
        sig = sim.signal("s", init=L0)
        sig.drive(L1, 1e-9)
        sim.run(2e-9)
        assert sig.prev is L0

    def test_rose_false_for_non_logic(self, sim):
        sig = sim.signal("s", init="A")
        sig.drive("B", 1e-9)
        sim.run(2e-9)
        assert sig.rose() is False and sig.fell() is False


class TestDeposit:
    def test_deposit_overwrites_now(self, sim):
        sig = sim.signal("s", init=L0)
        sim.run(5e-9)
        sig.deposit(L1)
        assert sig.value is L1

    def test_deposit_notifies_listeners(self, sim):
        sig = sim.signal("s", init=L0)
        hits = []
        sig.on_change(lambda s: hits.append(s.value))
        sig.deposit(L1)
        assert hits == [L1]

    def test_deposit_same_value_is_noop(self, sim):
        sig = sim.signal("s", init=L0)
        hits = []
        sig.on_change(lambda s: hits.append(1))
        sig.deposit(L0)
        assert hits == []

    def test_deposit_overwritten_by_next_drive(self, sim):
        sig = sim.signal("s", init=L0)
        sig.deposit(L1)
        sig.drive(L0, 1e-9)
        sim.run(2e-9)
        assert sig.value is L0


class TestForce:
    def test_force_pins_value(self, sim):
        sig = sim.signal("s", init=L0)
        sig.force(L1)
        sig.drive(L0, 1e-9)
        sim.run(2e-9)
        assert sig.value is L1
        assert sig.is_forced

    def test_release_restores_driven_value(self, sim):
        sig = sim.signal("s", init=L0)
        sig.drive(L0)
        sim.run(1e-9)
        sig.force(L1)
        sig.drive(L0, 1e-9)  # driver keeps pushing 0
        sim.run(2e-9)
        sig.release()
        assert sig.value is L0
        assert not sig.is_forced

    def test_release_without_force_is_noop(self, sim):
        sig = sim.signal("s", init=L0)
        sig.release()
        assert sig.value is L0

    def test_deposit_on_forced_raises(self, sim):
        sig = sim.signal("s", init=L0)
        sig.force(L1)
        with pytest.raises(SimulationError):
            sig.deposit(L0)

    def test_force_notifies_on_change(self, sim):
        sig = sim.signal("s", init=L0)
        hits = []
        sig.on_change(lambda s: hits.append(s.value))
        sig.force(L1)
        sig.release()
        assert hits == [L1, L0]


class TestListeners:
    def test_remove_listener(self, sim):
        sig = sim.signal("s", init=L0)
        hits = []
        cb = sig.on_change(lambda s: hits.append(1))
        sig.deposit(L1)
        sig.remove_listener(cb)
        sig.deposit(L0)
        assert hits == [1]

    def test_duplicate_name_rejected(self, sim):
        sim.signal("s")
        with pytest.raises(Exception):
            sim.signal("s")
