"""Tests for VCD export."""

import pytest

from repro.core import L0, L1, LINEAR, Logic, STEP, Simulator, Trace
from repro.core.vcd import VCDError, dumps_vcd, save_vcd
from repro.digital import ClockGen


def digital_trace():
    tr = Trace("clk", interp=STEP)
    tr.append(0.0, L0)
    tr.append(5e-9, L1)
    tr.append(10e-9, L0)
    tr.append(15e-9, Logic.X)
    tr.append(20e-9, Logic.Z)
    return tr


def analog_trace():
    tr = Trace("vctrl", interp=LINEAR)
    for k in range(5):
        tr.append(k * 1e-9, 2.5 + 0.1 * k)
    return tr


class TestHeader:
    def test_structure(self):
        text = dumps_vcd({"clk": digital_trace()})
        assert "$timescale 1 ps $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text

    def test_real_variable_for_analog(self):
        text = dumps_vcd({"vctrl": analog_trace()})
        assert "$var real 64" in text

    def test_timescale_selection(self):
        text = dumps_vcd({"clk": digital_trace()}, timescale_fs=1000000)
        assert "$timescale 1 ns $end" in text

    def test_bad_timescale(self):
        with pytest.raises(VCDError):
            dumps_vcd({"clk": digital_trace()}, timescale_fs=123)

    def test_empty_rejected(self):
        with pytest.raises(VCDError):
            dumps_vcd({})

    def test_name_sanitised(self):
        text = dumps_vcd({"my sig": digital_trace()})
        assert "my_sig" in text


class TestChanges:
    def test_digital_values_mapped(self):
        text = dumps_vcd({"clk": digital_trace()})
        lines = text.splitlines()
        # times in ps: 0, 5000, 10000, 15000, 20000
        assert "#0" in lines
        assert "#5000" in lines
        body = text.split("$enddefinitions $end")[1]
        assert "x" in body  # the X sample
        assert "z" in body  # the Z sample

    def test_analog_values_as_reals(self):
        text = dumps_vcd({"vctrl": analog_trace()})
        body = text.split("$enddefinitions $end")[1]
        assert "r2.5 " in body
        assert "r2.9 " in body

    def test_time_ordering(self):
        text = dumps_vcd({"clk": digital_trace(),
                          "vctrl": analog_trace()})
        body = text.split("$enddefinitions $end")[1]
        times = [int(line[1:]) for line in body.splitlines()
                 if line.startswith("#")]
        assert times == sorted(times)

    def test_duplicate_values_compressed(self):
        tr = Trace("s", interp=STEP)
        tr.append(0.0, L0)
        tr.append(1e-9, L0)  # no change
        tr.append(2e-9, L1)
        text = dumps_vcd({"s": tr})
        body = text.split("$enddefinitions $end")[1]
        changes = [l for l in body.splitlines()
                   if l and not l.startswith("#")]
        assert len(changes) == 2


class TestEndToEnd:
    def test_simulated_clock_roundtrip(self, tmp_path):
        sim = Simulator(dt=1e-9)
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        tr = sim.probe(clk)
        sim.run(50e-9)
        path = tmp_path / "wave.vcd"
        save_vcd({"clk": tr}, path)
        text = path.read_text()
        body = text.split("$enddefinitions $end")[1]
        rises = [l for l in body.splitlines()
                 if l.startswith("1") and not l.startswith("#")]
        # rising edges at 0, 10, 20, 30, 40 and exactly 50 ns
        assert len(rises) == 6

    def test_iterable_of_traces(self):
        text = dumps_vcd([digital_trace(), analog_trace()])
        assert "clk" in text and "vctrl" in text


class TestVectors:
    def _bus_traces(self):
        sim = Simulator(dt=1e-9)
        from repro.digital import Bus, ClockGen, Counter

        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9)
        q = Bus(sim, "cnt", 4)
        Counter(sim, "counter", clk, q)
        bit_traces = [sim.probe(bit) for bit in q.bits]
        sim.run(45e-9)
        return bit_traces

    def test_vector_variable_declared(self):
        bits = self._bus_traces()
        text = dumps_vcd({}, vectors={"cnt": bits})
        assert "$var wire 4" in text
        assert "cnt[3:0]" in text

    def test_vector_changes_are_words(self):
        bits = self._bus_traces()
        text = dumps_vcd({}, vectors={"cnt": bits})
        body = text.split("$enddefinitions $end")[1]
        words = [l.split()[0][1:] for l in body.splitlines()
                 if l.startswith("b")]
        # counts 0..5 after edges at 0,10,20,30,40 (initial U word too)
        assert "0101" in words
        assert words[-1] == "0101"

    def test_empty_vector_rejected(self):
        with pytest.raises(VCDError):
            dumps_vcd({}, vectors={"cnt": []})

    def test_scalars_and_vectors_combine(self):
        bits = self._bus_traces()
        text = dumps_vcd({"clk": digital_trace()}, vectors={"cnt": bits})
        assert "$var wire 1" in text and "$var wire 4" in text
