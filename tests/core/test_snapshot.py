"""Snapshot/restore bit-identity across all three design classes.

The warm-start campaign mode depends on one property: a simulation
restored from a mid-run checkpoint must produce traces *exactly* equal
— same sample count, same timestamps, same values, no tolerance — to
the uninterrupted run.  These tests establish that property for a
purely digital design, a purely analog design and the mixed-signal
PLL, including injections applied after the restore.
"""

import random

import pytest

from repro.core import Component, L0, Simulator, Snapshot
from repro.core.errors import SimulationError
from repro.digital import Bus, ClockGen, Counter, LFSR, ParityGen
from repro.faults import BitFlip, TrapezoidPulse
from repro.injection import InjectionController


def exact_equal(a, b):
    """Bit-exact trace equality: timestamps and values, no tolerance."""
    return a._times == b._times and a._values == b._values


def trace_copies(probes):
    return {
        name: (list(trace._times), list(trace._values))
        for name, trace in probes.items()
    }


def assert_probes_equal(probes, reference):
    for name, trace in probes.items():
        times, values = reference[name]
        assert trace._times == times, f"{name}: timestamps differ"
        assert trace._values == values, f"{name}: values differ"


def digital_design():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    p = Bus(sim, "pat", 8, init=1)
    LFSR(sim, "lfsr", clk, p, parent=top)
    parity = sim.signal("parity")
    ParityGen(sim, "par", p, parity, parent=top)
    probes = {
        "parity": sim.probe(parity),
        "cnt0": sim.probe(q.bits[0]),
        "pat7": sim.probe(p.bits[7]),
    }
    return sim, top, probes


def analog_design():
    from repro.analog import (
        DCCurrent,
        SineVoltage,
        TransimpedanceFilter,
        rc_transimpedance,
    )

    sim = Simulator(dt=10e-9)
    node = sim.current_node("i")
    out = sim.node("v")
    wave = sim.node("w")
    DCCurrent(sim, "src", node, 1e-4)
    TransimpedanceFilter(sim, "filt", node, out, rc_transimpedance(1e4, 1e-9))
    SineVoltage(sim, "sine", wave, amplitude=1.0, freq=1e5)
    probes = {"v": sim.probe(out), "w": sim.probe(wave)}
    return sim, probes


def pll_design():
    from tests.conftest import make_fast_pll

    sim = Simulator(dt=1e-9)
    pll = make_fast_pll(sim, preset_locked=True)
    probes = {
        "vctrl": sim.probe(pll.vctrl),
        "fout": sim.probe(pll.vco_out, min_interval=0.0),
    }
    return sim, pll, probes


class TestDigitalBitIdentity:
    def test_restore_reproduces_cold_run(self):
        sim, _, probes = digital_design()
        sim.run(400e-9)
        cold = trace_copies(probes)

        sim2, _, probes2 = digital_design()
        sim2.run(150e-9, inclusive=False)
        snap = sim2.snapshot()
        sim2.run(400e-9)
        assert_probes_equal(probes2, cold)

        sim2.restore(snap)
        sim2.run(400e-9)
        assert_probes_equal(probes2, cold)

    def test_repeated_restores(self):
        sim, _, probes = digital_design()
        sim.run(120e-9, inclusive=False)
        snap = sim.snapshot()
        sim.run(400e-9)
        reference = trace_copies(probes)
        for _ in range(3):
            sim.restore(snap)
            sim.run(400e-9)
            assert_probes_equal(probes, reference)

    def test_checkpoint_at_event_timestamp(self):
        """Exclusive checkpoints: events at exactly t stay pending."""
        sim, _, probes = digital_design()
        sim.run(400e-9)
        cold = trace_copies(probes)

        # 100 ns is a clock edge: with inclusive=False the edge's
        # delta cycles run *after* the restore, exactly as cold.
        sim2, _, probes2 = digital_design()
        sim2.run(100e-9, inclusive=False)
        snap = sim2.snapshot()
        sim2.run(400e-9)
        sim2.restore(snap)
        sim2.run(400e-9)
        assert_probes_equal(probes2, cold)

    def test_forced_signal_survives_roundtrip(self):
        sim, top, probes = digital_design()
        sim.run(90e-9, inclusive=False)
        clk = sim.signals["clk"]
        clk.force(L0)
        snap = sim.snapshot()
        sim.run(200e-9)
        forced = trace_copies(probes)
        sim.restore(snap)
        assert sim.signals["clk"]._forced
        sim.run(200e-9)
        assert_probes_equal(probes, forced)

    def test_restore_other_sim_rejected(self):
        sim, _, _ = digital_design()
        sim.run(50e-9, inclusive=False)
        snap = sim.snapshot()
        other, _, _ = digital_design()
        with pytest.raises(SimulationError):
            other.restore(snap)

    def test_snapshot_repr_and_class(self):
        sim, _, _ = digital_design()
        sim.run(50e-9, inclusive=False)
        snap = sim.snapshot()
        assert isinstance(snap, Snapshot)
        assert "Snapshot" in repr(snap)

    def test_work_counters_are_monotone(self):
        sim, _, _ = digital_design()
        sim.run(100e-9, inclusive=False)
        snap = sim.snapshot()
        sim.run(200e-9)
        executed = sim.events_executed
        sim.restore(snap)
        assert sim.events_executed == executed
        sim.run(200e-9)
        assert sim.events_executed > executed


class TestDigitalWarmInjection:
    def _cold_faulty(self, fault, t_end=400e-9):
        sim, top, probes = digital_design()
        InjectionController(sim, top).apply(fault)
        sim.run(t_end)
        return trace_copies(probes)

    def test_warm_injection_matches_cold(self):
        fault = BitFlip("top/counter.q[0]", 150e-9)
        cold = self._cold_faulty(fault)

        sim, top, probes = digital_design()
        sim.mark_elaboration()
        sim.run(150e-9, inclusive=False)
        snap = sim.snapshot()
        sim.run(400e-9)
        sim.restore(snap)
        with sim.injection_band():
            InjectionController(sim, top).apply(fault)
        sim.run(400e-9)
        assert_probes_equal(probes, cold)

    def test_warm_injection_at_clock_edge(self):
        """Injection time coincident with scheduled activity."""
        fault = BitFlip("top/counter.q[1]", 100e-9)
        cold = self._cold_faulty(fault)

        sim, top, probes = digital_design()
        sim.mark_elaboration()
        sim.run(100e-9, inclusive=False)
        snap = sim.snapshot()
        sim.run(400e-9)
        sim.restore(snap)
        with sim.injection_band():
            InjectionController(sim, top).apply(fault)
        sim.run(400e-9)
        assert_probes_equal(probes, cold)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_injection_and_checkpoint_times(self, seed):
        """Property-style: random (t_ckpt <= t_inj) pairs stay exact."""
        rng = random.Random(seed)
        targets = [f"top/counter.q[{i}]" for i in range(4)] + [
            f"top/lfsr.q[{i}]" for i in range(8)
        ]
        for _ in range(5):
            t_inj = rng.uniform(30e-9, 350e-9)
            t_ckpt = rng.uniform(10e-9, t_inj)
            fault = BitFlip(rng.choice(targets), t_inj)
            cold = self._cold_faulty(fault)

            sim, top, probes = digital_design()
            sim.mark_elaboration()
            sim.run(t_ckpt, inclusive=False)
            snap = sim.snapshot()
            sim.run(400e-9)
            sim.restore(snap)
            with sim.injection_band():
                InjectionController(sim, top).apply(fault)
            sim.run(400e-9)
            assert_probes_equal(probes, cold)


class TestAnalogBitIdentity:
    def test_restore_reproduces_cold_run(self):
        sim, probes = analog_design()
        sim.run(50e-6)
        cold = trace_copies(probes)

        sim2, probes2 = analog_design()
        sim2.run(20e-6, inclusive=False)
        snap = sim2.snapshot()
        sim2.run(50e-6)
        assert_probes_equal(probes2, cold)
        sim2.restore(snap)
        sim2.run(50e-6)
        assert_probes_equal(probes2, cold)

    def test_refinement_window_after_restore(self):
        """Windows added post-restore must not disturb the grid before
        them, and the same window cold vs warm gives the same grid."""

        def build_and_run(warm):
            sim, probes = analog_design()
            if warm:
                sim.run(10e-6, inclusive=False)
                snap = sim.snapshot()
                sim.run(50e-6)
                sim.restore(snap)
                sim.analog.add_refinement_window(20e-6, 21e-6, 1e-9)
            else:
                sim.analog.add_refinement_window(20e-6, 21e-6, 1e-9)
            sim.run(50e-6)
            return trace_copies(probes)

        cold = build_and_run(warm=False)
        warm = build_and_run(warm=True)
        # The pre-window prefix is identical by construction (nominal
        # grid); the refined region must match too, because dt_at
        # rebuilds its merged-boundary schedule after restore.
        assert warm == cold


class TestMixedPLLBitIdentity:
    T_CKPT = 3e-6
    T_END = 6e-6

    def test_restore_reproduces_cold_run(self):
        sim, _, probes = pll_design()
        sim.run(self.T_END)
        cold = trace_copies(probes)

        sim2, _, probes2 = pll_design()
        sim2.run(self.T_CKPT, inclusive=False)
        snap = sim2.snapshot()
        sim2.run(self.T_END)
        assert_probes_equal(probes2, cold)
        sim2.restore(snap)
        sim2.run(self.T_END)
        assert_probes_equal(probes2, cold)

    def test_warm_analog_injection_matches_cold(self):
        from repro.injection import CurrentPulseSaboteur

        pulse = TrapezoidPulse(rt=100e-12, ft=300e-12, pw=500e-12, pa=5e-3)
        t_inj = 4e-6

        def cold_run():
            sim, pll, probes = pll_design()
            sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
            sab.schedule(pulse, t_inj)
            sim.run(self.T_END)
            return trace_copies(probes)

        cold = cold_run()

        sim, pll, probes = pll_design()
        # Same block set and grid as the cold faulty run: saboteur
        # created idle before the golden pass, window pre-applied.
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        t0, t1, dt = CurrentPulseSaboteur.window_for(pulse, t_inj)
        sim.analog.add_refinement_window(t0, t1, dt)
        sim.mark_elaboration()
        sim.run(self.T_CKPT, inclusive=False)
        snap = sim.snapshot()
        sim.run(self.T_END)
        sim.restore(snap)
        with sim.injection_band():
            sab.schedule(pulse, t_inj)
        sim.run(self.T_END)
        assert_probes_equal(probes, cold)
