"""Hypothesis property tests for kernel-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import L0, L1, Logic, Simulator, resolve_many
from repro.core.events import EventQueue


class TestSchedulerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e-6,
                              allow_nan=False), min_size=1, max_size=40))
    def test_callbacks_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run(2e-6)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=1e-9, max_value=1e-6,
                              allow_nan=False), min_size=1, max_size=20))
    def test_run_in_pieces_equals_run_at_once(self, delays):
        def build():
            sim = Simulator()
            fired = []
            for delay in delays:
                sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
            return sim, fired

        sim_a, fired_a = build()
        sim_a.run(2e-6)

        sim_b, fired_b = build()
        for checkpoint in (0.3e-6, 0.7e-6, 1.1e-6, 2e-6):
            sim_b.run(checkpoint)
        assert fired_a == fired_b


class TestSignalInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([L0, L1, Logic.X, Logic.Z]),
                    min_size=1, max_size=20))
    def test_release_restores_driven_value(self, drive_sequence):
        """After any force/release pair, the observable value is the
        resolved driver value, regardless of what was forced."""
        sim = Simulator()
        sig = sim.signal("s", init=L0)
        for k, value in enumerate(drive_sequence):
            sig.drive(value, delay=(k + 1) * 1e-9)
        sim.run(len(drive_sequence) * 1e-9 + 1e-9)
        final_driven = sig.value
        sig.force(Logic.W)
        assert sig.value is Logic.W
        sig.release()
        assert sig.value is final_driven

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(list(Logic)), max_size=8),
           st.permutations(range(8)))
    def test_resolution_is_order_independent(self, values, order):
        values = list(values)
        permuted = [values[i] for i in order if i < len(values)]
        if len(permuted) == len(values):
            assert resolve_many(values) is resolve_many(permuted)


class TestAnalogInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=0.02),   # PA
                st.floats(min_value=5e-11, max_value=2e-10),  # RT
                st.floats(min_value=5e-11, max_value=3e-10),  # FT
                st.floats(min_value=2e-10, max_value=8e-10),  # PW
                st.floats(min_value=10e-9, max_value=900e-9),  # time
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_superposed_charge_conserved(self, pulse_specs):
        """Any set of scheduled pulses delivers exactly the sum of
        their model charges (within integration tolerance) — the
        superposition the paper's injection mechanism relies on."""
        from repro.faults import TrapezoidPulse
        from repro.injection import CurrentPulseSaboteur

        sim = Simulator(dt=1e-9)
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        total = 0.0
        for pa, rt, ft, pw, t in pulse_specs:
            pw = max(pw, rt)  # keep the trapezoid valid
            pulse = TrapezoidPulse(pa, rt, ft, pw)
            sab.schedule(pulse, t)
            total += pulse.charge()
        trace = sim.probe_current(node)
        sim.run(1.2e-6)
        delivered = float(np.trapezoid(trace.values, trace.times))
        assert delivered == pytest.approx(total, rel=0.08)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=1e3, max_value=1e7),
           st.integers(min_value=2, max_value=50))
    def test_lti_step_subdivision_lossless(self, pole_hz, pieces):
        from repro.analog import single_pole

        total_time = 0.5 / pole_hz
        sys_a = single_pole(1.0, pole_hz)
        ya = float(sys_a.step([1.0], total_time)[0])
        sys_b = single_pole(1.0, pole_hz)
        for _ in range(pieces):
            yb = float(sys_b.step([1.0], total_time / pieces)[0])
        assert ya == pytest.approx(yb, rel=1e-9)
