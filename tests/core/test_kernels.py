"""The optional compiled kernels and their bit-identity defences.

Three layers under test: the NumPy fallbacks reproduce the scalar
per-element expressions bitwise (the batched-vs-scalar contract), the
``REPRO_NUMBA`` environment gate works, and — when numba happens to be
installed — the jitted kernels pass the same bitwise self-check the
module runs at import.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.faults import TrapezoidPulse

HAVE_NUMBA = kernels.NUMBA_STATUS not in (
    "numba not installed",
    "disabled by REPRO_NUMBA",
)


def varied_taus(pulse, n=64):
    """Offsets covering every waveform branch, including exact corners."""
    rng = np.random.default_rng(7)
    corners = np.array([-1e-12, 0.0, pulse.rt, pulse.pw, pulse.duration])
    return np.concatenate(
        [rng.uniform(-0.2 * pulse.duration, 1.2 * pulse.duration, n), corners]
    )


class TestNumpyFallbacks:
    def test_trapezoid_fallback_matches_scalar(self):
        """The vector fallback is the scalar piecewise expression."""
        pulse = TrapezoidPulse(pa=1e-3, rt=1e-10, ft=3e-10, pw=5e-10)
        tau = varied_taus(pulse)
        out = np.empty_like(tau)
        kernels._trapezoid_currents_numpy(
            tau,
            np.full_like(tau, pulse.pa),
            np.full_like(tau, pulse.rt),
            np.full_like(tau, pulse.ft),
            np.full_like(tau, pulse.pw),
            np.full_like(tau, pulse.duration),
            out,
        )
        expected = np.array([pulse.current(t) for t in tau])
        assert out.tobytes() == expected.tobytes()

    def test_trapezoid_fallback_zero_fall_time(self):
        """ft=0 must select 0.0, not divide-by-zero garbage."""
        pulse = TrapezoidPulse(pa=1e-3, rt=1e-10, ft=0.0, pw=5e-10)
        tau = varied_taus(pulse)
        out = np.empty_like(tau)
        kernels._trapezoid_currents_numpy(
            tau,
            np.full_like(tau, pulse.pa),
            np.full_like(tau, pulse.rt),
            np.full_like(tau, pulse.ft),
            np.full_like(tau, pulse.pw),
            np.full_like(tau, pulse.duration),
            out,
        )
        expected = np.array([pulse.current(t) for t in tau])
        assert out.tobytes() == expected.tobytes()
        assert np.all(np.isfinite(out))

    def test_siso1_fallback_matches_scalar_expressions(self):
        rng = np.random.default_rng(11)
        k = 33
        a00, b0, c00, d00 = 0.75, 0.125, 1.5, 0.25
        x = rng.uniform(-1.0, 1.0, (1, k))
        u = rng.uniform(-1.0, 1.0, k)
        expect_x = a00 * x[0] + b0 * u
        expect_y = c00 * expect_x + d00 * u
        y = np.empty(k)
        kernels._siso1_step_numpy(x, u, a00, b0, c00, d00, y)
        assert x[0].tobytes() == expect_x.tobytes()
        assert y.tobytes() == expect_y.tobytes()

    def test_siso2_fallback_matches_scalar_expressions(self):
        rng = np.random.default_rng(13)
        k = 33
        a00, a01, a10, a11 = 0.9, -0.1, 0.05, 0.8
        b0, b1, c00, c01 = 0.2, 0.3, 1.0, -0.5
        x = rng.uniform(-1.0, 1.0, (2, k))
        u = rng.uniform(-1.0, 1.0, k)
        nx0 = a00 * x[0] + a01 * x[1] + b0 * u
        nx1 = a10 * x[0] + a11 * x[1] + b1 * u
        expect_y = c00 * nx0 + c01 * nx1
        y = np.empty(k)
        kernels._siso2_step_numpy(
            x, u, a00, a01, a10, a11, b0, b1, c00, c01, 0.0, y
        )
        assert x[0].tobytes() == nx0.tobytes()
        assert x[1].tobytes() == nx1.tobytes()
        assert y.tobytes() == expect_y.tobytes()


class TestNumbaGate:
    def test_status_and_flag_agree(self):
        assert kernels.USE_NUMBA == (kernels.NUMBA_STATUS == "active")

    def test_env_gate_parsing(self, monkeypatch):
        for value in ("0", "off", "false", "no", " OFF "):
            monkeypatch.setenv("REPRO_NUMBA", value)
            assert not kernels._numba_requested()
        for value in ("auto", "1", "on", ""):
            monkeypatch.setenv("REPRO_NUMBA", value)
            assert kernels._numba_requested()
        monkeypatch.delenv("REPRO_NUMBA")
        assert kernels._numba_requested()

    def test_fallbacks_always_importable(self):
        """With or without numba, the module exposes working kernels."""
        tau = np.array([1e-10])
        out = np.empty(1)
        kernels.trapezoid_currents_kernel(
            tau, np.array([1e-3]), np.array([2e-10]), np.array([1e-10]),
            np.array([4e-10]), np.array([5e-10]), out,
        )
        assert out[0] == 1e-3 * 1e-10 / 2e-10


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not available")
class TestJittedKernels:
    def test_self_check_passes(self):
        """The import-time bitwise self-check holds for this toolchain."""
        jits = kernels._build_numba_kernels()
        assert kernels._self_check(*jits) is None

    def test_active_kernels_are_jitted(self):
        if not kernels.USE_NUMBA:
            pytest.skip(f"compiled path off: {kernels.NUMBA_STATUS}")
        assert kernels.trapezoid_currents_kernel is not (
            kernels._trapezoid_currents_numpy
        )
