"""Worker-side execution: the streaming store and shard runner."""

import pytest

from repro.dist import ProtocolError, RowStreamStore, execute_shard, plan_shards

from ..store.test_resume import factory, make_spec


@pytest.fixture(scope="module")
def spec():
    return make_spec()  # 12 bit-flip faults


def collect_frames():
    """A fake ``send`` that records every frame it is handed."""
    frames = []

    def send(frame_type, **fields):
        frames.append({"frame": frame_type, **fields})

    return frames, send


class TestRowStreamStore:
    def test_rows_carry_global_indices(self, spec):
        shard = plan_shards(spec, shard_size=4)[1]  # faults 4..7
        frames, send = collect_frames()
        execute_shard(shard, factory=factory, send=send)
        rows = [row for f in frames if f["frame"] == "rows"
                for row in f["rows"]]
        assert sorted(row["idx"] for row in rows) == shard.indices

    def test_rows_carry_parent_fault_keys(self, spec):
        shard = plan_shards(spec, shard_size=4)[2]
        frames, send = collect_frames()
        execute_shard(shard, factory=factory, send=send)
        rows = [row for f in frames if f["frame"] == "rows"
                for row in f["rows"]]
        by_idx = {row["idx"]: row["key"] for row in rows}
        for idx, key in zip(shard.indices, shard.fault_keys):
            assert by_idx[idx] == key

    def test_sink_captures_golden_and_execution(self, spec):
        shard = plan_shards(spec, shard_size=4)[0]
        sink = execute_shard(shard, factory=factory)
        assert sink.golden  # probe digests for cross-worker checks
        assert sink.execution["status"] == "complete"
        assert sink.rows_sent == shard.size
        assert sink.done == shard.size

    def test_identical_shards_yield_identical_golden(self, spec):
        shard = plan_shards(spec, shard_size=6)[0]
        a = execute_shard(shard, factory=factory)
        b = execute_shard(shard, factory=factory)
        assert a.golden == b.golden

    def test_pending_indices_always_full(self, spec):
        shard = plan_shards(spec, shard_size=4)[0]
        sink = RowStreamStore(shard, lambda *_a, **_k: None)
        assert sink.pending_indices(0, shard.size) \
            == list(range(shard.size))


class TestExecuteShard:
    def test_no_design_source_rejected(self, spec):
        shard = plan_shards(spec, shard_size=4)[0]  # no netlist attached
        with pytest.raises(ProtocolError, match="no netlist"):
            execute_shard(shard)

    def test_shard_config_reaches_runner(self, spec):
        shard = plan_shards(spec, shard_size=4,
                            config={"warm_start": True})[0]
        sink = execute_shard(shard, factory=factory)
        # Warm-started runs report their checkpoint hit rate.
        assert "warm_hits" in sink.execution

    def test_shard_rows_match_serial_rows(self, spec):
        """The distribution invariant, one shard at a time: every row a
        shard streams equals the row a serial run records for the same
        global fault index."""
        from repro.campaign import run_campaign
        from repro.store.serialize import result_to_row

        serial = run_campaign(factory, spec)
        serial_rows = {}
        for idx, run in enumerate(serial.runs):
            row = result_to_row(idx, "", run)
            serial_rows[idx] = (row["status"], row["label"],
                                row["classification"],
                                row["comparisons"])
        for shard in plan_shards(spec, shard_size=5):
            frames, send = collect_frames()
            execute_shard(shard, factory=factory, send=send)
            for f in frames:
                if f["frame"] != "rows":
                    continue
                for row in f["rows"]:
                    assert (row["status"], row["label"],
                            row["classification"],
                            row["comparisons"]) \
                        == serial_rows[row["idx"]]
