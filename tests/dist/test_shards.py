"""Shard planning: determinism, round trips, global-index integrity."""

import json

import pytest

from repro.dist import Shard, ShardError, plan_shards
from repro.dist.shards import shard_name
from repro.store.serialize import fault_key, spec_from_dict

from ..store.test_resume import make_spec


@pytest.fixture(scope="module")
def spec():
    return make_spec()  # 12 bit-flip faults


class TestPlan:
    def test_contiguous_cover(self, spec):
        shards = plan_shards(spec, shard_size=5)
        assert [s.shard_id for s in shards] == [0, 1, 2]
        flat = [i for s in shards for i in s.indices]
        assert flat == list(range(len(spec.faults)))

    def test_last_shard_takes_remainder(self, spec):
        shards = plan_shards(spec, shard_size=5)
        assert [s.size for s in shards] == [5, 5, 2]

    def test_plan_is_deterministic(self, spec):
        a = plan_shards(spec, shard_size=4)
        b = plan_shards(spec, shard_size=4)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_fault_keys_align_with_parent(self, spec):
        keys = [fault_key(f) for f in spec.faults]
        for shard in plan_shards(spec, shard_size=3):
            assert shard.fault_keys == [keys[i] for i in shard.indices]

    def test_sub_spec_names_and_slices(self, spec):
        for shard in plan_shards(spec, shard_size=5):
            assert shard.spec["name"] == shard_name(spec.name, shard.shard_id)
            sub = spec_from_dict(shard.spec)
            assert [f.describe() for f in sub.faults] == [
                spec.faults[i].describe() for i in shard.indices
            ]

    def test_sub_spec_inherits_campaign_settings(self, spec):
        shard = plan_shards(spec, shard_size=5)[0]
        sub = spec_from_dict(shard.spec)
        assert sub.t_end == spec.t_end
        assert sub.outputs == spec.outputs

    def test_config_and_netlist_attach_to_every_shard(self, spec):
        netlist = {"name": "fake", "components": []}
        config = {"warm_start": True, "batch": "auto"}
        for shard in plan_shards(spec, 4, netlist=netlist, config=config):
            assert shard.netlist == netlist
            assert shard.config == config

    def test_bad_shard_size_rejected(self, spec):
        with pytest.raises(ShardError, match="shard_size"):
            plan_shards(spec, shard_size=0)


class TestShardRoundTrip:
    def test_to_dict_survives_json(self, spec):
        shard = plan_shards(spec, shard_size=5)[1]
        wire = json.loads(json.dumps(shard.to_dict()))
        rebuilt = Shard.from_dict(wire)
        assert rebuilt.to_dict() == shard.to_dict()
        assert rebuilt.indices == shard.indices
        assert rebuilt.fault_keys == shard.fault_keys

    def test_rebuilt_shard_is_executable(self, spec):
        shard = plan_shards(spec, shard_size=5)[2]
        rebuilt = Shard.from_dict(json.loads(json.dumps(shard.to_dict())))
        sub = rebuilt.campaign_spec()
        assert len(sub.faults) == shard.size

    def test_malformed_payload_rejected(self):
        with pytest.raises(ShardError, match="malformed shard"):
            Shard.from_dict({"shard_id": 0})

    def test_mismatched_lengths_rejected(self, spec):
        shard = plan_shards(spec, shard_size=5)[0]
        data = shard.to_dict()
        data["fault_keys"] = data["fault_keys"][:-1]
        with pytest.raises(ShardError, match="fault keys"):
            Shard.from_dict(data)
