"""ChaosProxy: faithful relay, seeded misbehavior, partitions."""

import socket
import threading
import time

import pytest

from repro.dist import ChaosConfig, ChaosProxy


@pytest.fixture
def echo_server():
    """A TCP echo server; yields its (host, port)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    stop = threading.Event()

    def _serve():
        while not stop.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return
            threading.Thread(
                target=_echo, args=(conn,), daemon=True
            ).start()

    def _echo(conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                conn.sendall(data)
        except OSError:
            pass
        finally:
            conn.close()

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    yield listener.getsockname()[:2]
    stop.set()
    listener.close()
    thread.join(timeout=5.0)


def dial(address, timeout=5.0):
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(timeout)
    return sock


def recv_all(sock, n, timeout=5.0):
    """Read exactly n bytes or until the peer closes."""
    deadline = time.monotonic() + timeout
    chunks = b""
    while len(chunks) < n and time.monotonic() < deadline:
        try:
            data = sock.recv(n - len(chunks))
        except socket.timeout:
            break
        if not data:
            break
        chunks += data
    return chunks


class TestFaithfulRelay:
    def test_default_config_forwards_bytes_unchanged(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            sock = dial(proxy.address)
            try:
                payload = b"x" * 10000
                sock.sendall(payload)
                assert recv_all(sock, len(payload)) == payload
            finally:
                sock.close()
            assert proxy.stats["connections"] == 1
            assert proxy.stats["drops"] == 0

    def test_multiple_concurrent_connections(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            socks = [dial(proxy.address) for _ in range(4)]
            try:
                for i, sock in enumerate(socks):
                    sock.sendall(bytes([65 + i]) * 100)
                for i, sock in enumerate(socks):
                    assert recv_all(sock, 100) == bytes([65 + i]) * 100
            finally:
                for sock in socks:
                    sock.close()
            assert proxy.stats["connections"] == 4


class TestInjectedFaults:
    def test_drop_p_one_closes_the_connection(self, echo_server):
        with ChaosProxy(echo_server,
                        ChaosConfig(drop_p=1.0, seed=7)) as proxy:
            sock = dial(proxy.address)
            try:
                sock.sendall(b"doomed")
                assert recv_all(sock, 6) == b""   # closed, never echoed
            finally:
                sock.close()
            assert proxy.stats["drops"] >= 1

    def test_truncate_delivers_a_strict_prefix_then_closes(
            self, echo_server):
        with ChaosProxy(echo_server,
                        ChaosConfig(truncate_p=1.0, seed=3)) as proxy:
            sock = dial(proxy.address)
            try:
                payload = b"q" * 4096
                sock.sendall(payload)
                got = recv_all(sock, len(payload))
                assert len(got) < len(payload)
                assert payload.startswith(got)
            finally:
                sock.close()
            assert proxy.stats["truncations"] >= 1

    def test_same_seed_same_decisions(self, echo_server):
        def run(seed):
            with ChaosProxy(echo_server,
                            ChaosConfig(drop_p=0.3, seed=seed)) as proxy:
                outcomes = []
                for _ in range(6):
                    sock = dial(proxy.address)
                    try:
                        sock.sendall(b"ping")
                        outcomes.append(len(recv_all(sock, 4)))
                    finally:
                        sock.close()
                return outcomes

        assert run(seed=42) == run(seed=42)

    def test_kill_connections_drops_live_relays(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            sock = dial(proxy.address)
            try:
                sock.sendall(b"alive")
                assert recv_all(sock, 5) == b"alive"
                proxy.kill_connections()
                # The victim observes EOF (or a reset) promptly.
                sock.settimeout(5.0)
                try:
                    leftover = sock.recv(64)
                except OSError:
                    leftover = b""
                assert leftover == b""
            finally:
                sock.close()


class TestPartition:
    def test_partition_refuses_new_dials(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            proxy.partition(30.0)
            assert proxy.partitioned()
            try:
                # Accepted by the listener but immediately reset — the
                # RST may land during connect, send or recv depending
                # on timing; all three spell "refused".
                sock = dial(proxy.address)
                try:
                    sock.sendall(b"hello?")
                    assert recv_all(sock, 6, timeout=2.0) == b""
                finally:
                    sock.close()
            except OSError:
                pass
            deadline = time.monotonic() + 5.0
            while (proxy.stats["refused"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert proxy.stats["refused"] >= 1

    def test_partition_heals_after_the_window(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            proxy.partition(0.1)
            time.sleep(0.2)
            assert not proxy.partitioned()
            sock = dial(proxy.address)
            try:
                sock.sendall(b"back")
                assert recv_all(sock, 4) == b"back"
            finally:
                sock.close()


class TestUpstreamDown:
    def test_dead_upstream_closes_the_victim(self):
        # Reserve a port with no listener behind it.
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        dead = placeholder.getsockname()[:2]
        placeholder.close()
        with ChaosProxy(dead) as proxy:
            sock = dial(proxy.address)
            try:
                assert recv_all(sock, 1, timeout=6.0) == b""
            finally:
                sock.close()
            assert proxy.stats["refused"] >= 1
