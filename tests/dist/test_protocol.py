"""Wire protocol: framing, validation, incremental decoding."""

import json
import socket

import pytest

from repro.dist import FrameBuffer, FrameConnection, ProtocolError, parse_address
from repro.dist.protocol import (
    FRAME_TYPES,
    PROTOCOL_VERSION,
    encode_frame,
    make_frame,
    validate_frame,
)


class TestFrames:
    def test_make_frame_sets_type(self):
        frame = make_frame("hello", role="worker", name="w0")
        assert frame["frame"] == "hello"
        assert frame["role"] == "worker"

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            make_frame("gossip")

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required"):
            make_frame("lease", shard={})  # no token

    def test_every_type_has_an_envelope_spec(self):
        for frame_type, required in FRAME_TYPES.items():
            fields = {name: "x" for name in required}
            frame = make_frame(frame_type, **fields)
            assert validate_frame(frame) is frame

    def test_encode_is_one_json_line(self):
        frame = make_frame("heartbeat", token="1:0:1", done=3)
        wire = encode_frame(frame)
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1
        assert json.loads(wire) == frame

    def test_encode_rejects_non_frames(self):
        with pytest.raises(ProtocolError):
            encode_frame({"role": "worker"})

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(ProtocolError, match="missing required"):
            validate_frame({"frame": "rows", "token": "t"})  # no rows


class TestFrameBuffer:
    def test_whole_frame_decodes(self):
        buf = FrameBuffer()
        frames = buf.feed(encode_frame(make_frame("welcome", proto=1)))
        assert [f["frame"] for f in frames] == ["welcome"]

    def test_partial_line_stays_buffered(self):
        buf = FrameBuffer()
        wire = encode_frame(make_frame("drain"))
        assert buf.feed(wire[:5]) == []
        assert [f["frame"] for f in buf.feed(wire[5:])] == ["drain"]

    def test_non_ascii_name_survives_byte_splits(self):
        buf = FrameBuffer()
        wire = encode_frame(make_frame("hello", role="worker", name="wörker"))
        cut = len(wire) // 2
        assert buf.feed(wire[:cut]) == []
        frames = buf.feed(wire[cut:])
        assert frames[0]["name"] == "wörker"

    def test_many_frames_in_one_chunk(self):
        buf = FrameBuffer()
        wire = b"".join(
            encode_frame(make_frame("heartbeat", token=str(i)))
            for i in range(5)
        )
        frames = buf.feed(wire)
        assert [f["token"] for f in frames] == [str(i) for i in range(5)]

    def test_garbage_line_raises(self):
        buf = FrameBuffer()
        with pytest.raises(ProtocolError):
            buf.feed(b"not json at all\n")

    def test_unknown_frame_type_raises(self):
        buf = FrameBuffer()
        with pytest.raises(ProtocolError):
            buf.feed(b'{"frame":"gossip"}\n')


class TestFrameConnection:
    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        a, b = FrameConnection(left), FrameConnection(right)
        try:
            a.send("hello", role="client", name="cli",
                   proto=PROTOCOL_VERSION)
            frame = b.recv(timeout=5)
            assert frame["frame"] == "hello"
            assert frame["proto"] == PROTOCOL_VERSION
            b.send("welcome", proto=PROTOCOL_VERSION)
            assert a.recv(timeout=5)["frame"] == "welcome"
        finally:
            a.close()
            b.close()

    def test_eof_returns_none(self):
        left, right = socket.socketpair()
        conn = FrameConnection(right)
        left.close()
        try:
            assert conn.recv(timeout=5) is None
        finally:
            conn.close()

    def test_queued_frames_drain_in_order(self):
        left, right = socket.socketpair()
        a, b = FrameConnection(left), FrameConnection(right)
        try:
            for i in range(3):
                a.send("heartbeat", token=str(i))
            got = [b.recv(timeout=5)["token"] for _ in range(3)]
            assert got == ["0", "1", "2"]
        finally:
            a.close()
            b.close()


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("node7:9000") == ("node7", 9000)

    def test_bare_host_gets_default_port(self):
        assert parse_address("node7", default_port=7410) == ("node7", 7410)

    def test_bare_port(self):
        assert parse_address(":9000") == ("127.0.0.1", 9000)

    def test_bad_port_rejected(self):
        with pytest.raises(ProtocolError):
            parse_address("node7:banana")


class TestFrameBufferHardening:
    """Size caps, tolerant mode and mid-frame failure edges."""

    def test_oversized_frame_raises_in_strict_mode(self):
        buf = FrameBuffer(max_frame_bytes=64)
        big = encode_frame(make_frame("hello", role="worker",
                                      name="x" * 200))
        with pytest.raises(ProtocolError, match="byte cap"):
            buf.feed(big)

    def test_oversized_frame_skipped_in_tolerant_mode(self):
        buf = FrameBuffer(max_frame_bytes=64, tolerant=True)
        big = encode_frame(make_frame("hello", role="worker",
                                      name="x" * 200))
        good = encode_frame(make_frame("drain"))
        frames = buf.feed(big + good)
        assert [f["frame"] for f in frames] == ["drain"]
        assert buf.rejected == 1
        assert any("byte cap" in m for m in buf.take_rejects())

    def test_oversized_line_rejected_before_its_newline(self):
        # The line is over budget with no terminator in sight: the
        # buffer must not grow without bound waiting for one.
        buf = FrameBuffer(max_frame_bytes=64, tolerant=True)
        assert buf.feed(b"x" * 200) == []
        assert buf.rejected == 1
        assert buf.pending() == 0
        # The tail of the oversized line (and its newline) is
        # discarded; the next complete line decodes normally.
        frames = buf.feed(b"yyy\n" + encode_frame(make_frame("drain")))
        assert [f["frame"] for f in frames] == ["drain"]
        assert buf.rejected == 1

    def test_oversized_rejection_counts_once(self):
        buf = FrameBuffer(max_frame_bytes=64, tolerant=True)
        for _ in range(5):
            buf.feed(b"z" * 100)   # one logical line, many chunks
        assert buf.rejected == 1

    def test_garbage_line_then_valid_frame_tolerant(self):
        buf = FrameBuffer(tolerant=True)
        frames = buf.feed(b"not json at all\n"
                          + encode_frame(make_frame("drain")))
        assert [f["frame"] for f in frames] == ["drain"]
        assert buf.rejected == 1
        assert any("malformed" in m for m in buf.take_rejects())
        assert buf.take_rejects() == []   # drained

    def test_non_object_json_tolerant(self):
        buf = FrameBuffer(tolerant=True)
        frames = buf.feed(b"[1, 2, 3]\n"
                          + encode_frame(make_frame("drain")))
        assert [f["frame"] for f in frames] == ["drain"]
        assert buf.rejected == 1

    def test_unknown_frame_type_tolerant(self):
        buf = FrameBuffer(tolerant=True)
        frames = buf.feed(b'{"frame":"gossip"}\n'
                          + encode_frame(make_frame("drain")))
        assert [f["frame"] for f in frames] == ["drain"]
        assert buf.rejected == 1

    def test_split_across_recv_with_garbage_between(self):
        buf = FrameBuffer(tolerant=True)
        wire = encode_frame(make_frame("heartbeat", token="t"))
        assert buf.feed(b"garbage\n" + wire[:7]) == []
        frames = buf.feed(wire[7:])
        assert [f["frame"] for f in frames] == ["heartbeat"]
        assert buf.rejected == 1

    def test_abrupt_eof_mid_frame_leaves_pending_bytes(self):
        buf = FrameBuffer()
        wire = encode_frame(make_frame("complete", token="t"))
        frames = buf.feed(wire[:-3])   # peer died before the newline
        assert frames == []
        assert buf.pending() == len(wire) - 3
        assert buf.rejected == 0


class TestFrameConnectionEOF:
    def test_eof_flag_distinguishes_eof_from_timeout(self):
        left, right = socket.socketpair()
        conn = FrameConnection(right)
        try:
            assert conn.recv(timeout=0.05) is None   # nothing sent yet
            assert conn.eof is False
            left.close()
            assert conn.recv(timeout=5) is None
            assert conn.eof is True
        finally:
            conn.close()

    def test_eof_mid_frame_drops_partial_line(self):
        left, right = socket.socketpair()
        conn = FrameConnection(right)
        try:
            wire = encode_frame(make_frame("complete", token="t"))
            left.sendall(wire[:-5])
            left.close()
            assert conn.recv(timeout=5) is None
            assert conn.eof is True
        finally:
            conn.close()
