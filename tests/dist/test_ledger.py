"""Coordinator ledger: durable append, tolerant read, replay folding."""

import json

import pytest

from repro.dist import CoordinatorLedger, LedgerError, read_ledger, replay_ledger
from repro.dist.ledger import LEDGER_SCHEMA_VERSION, RECORD_KINDS

SPEC = {"name": "par", "faults": [{"kind": "bitflip"}] * 4}


def submit_record(job=1, shard_size=2, shards=2, name="par"):
    return dict(job=job, name=name, spec=SPEC, netlist=None,
                config={}, shard_size=shard_size, shards=shards)


class TestCoordinatorLedger:
    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "c.ledger.jsonl"
        ledger = CoordinatorLedger(path)
        ledger.record("job_submitted", **submit_record())
        ledger.record("lease_granted", job=1, shard=0, worker="w0",
                      token="1:0:1", count=1)
        ledger.record("shard_merged", job=1, shard=0, rows=2)
        ledger.close()
        records = list(read_ledger(path))
        assert [r["rec"] for r in records] == [
            "job_submitted", "lease_granted", "shard_merged"
        ]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all(r["v"] == LEDGER_SCHEMA_VERSION for r in records)

    def test_every_kind_is_writable(self, tmp_path):
        ledger = CoordinatorLedger(tmp_path / "l.jsonl")
        for kind in RECORD_KINDS:
            ledger.record(kind, job=1)
        ledger.close()
        assert len(list(read_ledger(tmp_path / "l.jsonl"))) == len(
            RECORD_KINDS
        )

    def test_unknown_kind_rejected_at_write_site(self, tmp_path):
        ledger = CoordinatorLedger(tmp_path / "l.jsonl")
        with pytest.raises(LedgerError, match="unknown ledger record"):
            ledger.record("gossip", job=1)

    def test_disabled_ledger_is_a_noop(self, tmp_path):
        ledger = CoordinatorLedger(None)
        assert ledger.enabled is False
        ledger.record("job_submitted", **submit_record())
        ledger.record("gossip")   # not even validated: zero cost
        ledger.close()

    def test_each_line_lands_before_record_returns(self, tmp_path):
        # Flush-per-record: a reader sees every completed record even
        # while the writer stays open (the crash-consistency contract).
        path = tmp_path / "l.jsonl"
        ledger = CoordinatorLedger(path)
        ledger.record("job_submitted", **submit_record())
        assert [r["rec"] for r in read_ledger(path)] == ["job_submitted"]
        ledger.close()

    def test_append_survives_close_reopen(self, tmp_path):
        path = tmp_path / "l.jsonl"
        first = CoordinatorLedger(path)
        first.record("job_submitted", **submit_record())
        first.close()
        second = CoordinatorLedger(path)
        second.record("job_finished", job=1, state="complete")
        second.close()
        assert [r["rec"] for r in read_ledger(path)] == [
            "job_submitted", "job_finished"
        ]


class TestReadLedger:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = CoordinatorLedger(path)
        ledger.record("job_submitted", **submit_record())
        ledger.close()
        with open(path, "a") as handle:
            handle.write('{"v": 1, "seq": 1, "rec": "lease_gr')
        assert [r["rec"] for r in read_ledger(path)] == ["job_submitted"]

    def test_malformed_mid_file_raises(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with open(path, "w") as handle:
            handle.write("definitely not json\n")
            handle.write(json.dumps({"rec": "job_finished", "job": 1})
                         + "\n")
        with pytest.raises(LedgerError, match="malformed ledger line"):
            list(read_ledger(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read ledger"):
            list(read_ledger(tmp_path / "absent.jsonl"))


class TestReplayLedger:
    def _write(self, path, records):
        ledger = CoordinatorLedger(path)
        for kind, fields in records:
            ledger.record(kind, **fields)
        ledger.close()

    def test_replay_folds_job_state(self, tmp_path):
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("job_submitted", submit_record()),
            ("lease_granted", dict(job=1, shard=0, worker="w0",
                                   token="1:0:1", count=1)),
            ("lease_granted", dict(job=1, shard=1, worker="w1",
                                   token="1:1:1", count=1)),
            ("shard_merged", dict(job=1, shard=0, rows=2)),
        ])
        jobs = replay_ledger(path)
        job = jobs[1]
        assert job.name == "par"
        assert job.shard_size == 2
        assert job.merged == {0}
        assert job.failed == set()
        assert job.finished is None

    def test_live_leases_are_not_charged_a_strike(self, tmp_path):
        # Shard 1's lease was live when the coordinator died: its
        # count must replay as 0, not 1 — a coordinator crash is not
        # the shard's fault.
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("job_submitted", submit_record()),
            ("lease_granted", dict(job=1, shard=1, worker="w1",
                                   token="1:1:1", count=1)),
        ])
        job = replay_ledger(path)[1]
        assert job.lease_counts[1] == 0

    def test_revoked_leases_keep_their_strike(self, tmp_path):
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("job_submitted", submit_record()),
            ("lease_granted", dict(job=1, shard=1, worker="w1",
                                   token="1:1:1", count=1)),
            ("lease_revoked", dict(job=1, shard=1,
                                   reason="heartbeat-silence")),
            ("lease_granted", dict(job=1, shard=1, worker="w2",
                                   token="1:1:2", count=2)),
        ])
        job = replay_ledger(path)[1]
        # First grant was revoked (a real strike); the second was live
        # at crash (credited back): net count is 1, not 2.
        assert job.lease_counts[1] == 1

    def test_merged_shards_ignore_live_lease_credit(self, tmp_path):
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("job_submitted", submit_record()),
            ("lease_granted", dict(job=1, shard=0, worker="w0",
                                   token="1:0:1", count=1)),
            ("shard_merged", dict(job=1, shard=0, rows=2)),
        ])
        job = replay_ledger(path)[1]
        assert job.merged == {0}
        assert job.lease_counts[0] == 1

    def test_finished_and_failed_state(self, tmp_path):
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("job_submitted", submit_record()),
            ("shard_failed", dict(job=1, shard=1)),
            ("job_finished", dict(job=1, state="failed")),
        ])
        job = replay_ledger(path)[1]
        assert job.failed == {1}
        assert job.finished == "failed"

    def test_records_for_unknown_jobs_are_ignored(self, tmp_path):
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("lease_granted", dict(job=9, shard=0, worker="w",
                                   token="9:0:1", count=1)),
            ("job_submitted", submit_record()),
        ])
        jobs = replay_ledger(path)
        assert set(jobs) == {1}

    def test_resumed_records_are_transparent(self, tmp_path):
        path = tmp_path / "l.jsonl"
        self._write(path, [
            ("job_submitted", submit_record()),
            ("resumed", dict(jobs=[1], adopted=1, requeued=1)),
        ])
        assert set(replay_ledger(path)) == {1}
