"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core import Simulator


@pytest.fixture
def sim():
    """A fresh simulator with a 1 ns analog step."""
    return Simulator(dt=1e-9)


def make_fast_pll(sim, preset_locked=True, **overrides):
    """A PLL scaled for fast tests: 5 MHz reference, /10, 50 MHz out.

    Same 50 MHz output clock as the paper's PLL but a 10x higher
    reference and loop bandwidth (~250 kHz crossover), so lock
    dynamics and recovery play out in a few microseconds instead of
    tens — keeping PLL unit tests under a second each.
    """
    from repro.ams import PLL

    params = dict(
        f_ref="5MHz",
        n_div=10,
        kvco="10MHz",
        i_pump="100uA",
        r="15.7kOhm",
        c1="162pF",
        c2="16pF",
        preset_locked=preset_locked,
    )
    params.update(overrides)
    return PLL(sim, "pll", **params)
