"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core import Simulator

#: Per-test wall-clock guard in seconds (0 disables).  The supervised
#: campaign tests deliberately kill and time out workers; if a
#: regression ever made the supervisor itself hang, this guard turns
#: the hang into a failing test instead of a stuck CI job.
TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.fixture(autouse=True)
def _per_test_timeout():
    """SIGALRM-based per-test deadline (no pytest-timeout dependency).

    Active only on platforms with ``SIGALRM`` (POSIX) and in the main
    thread.  Forked campaign workers do not inherit the interval
    timer, so long individual faulty runs are unaffected — only the
    parent-side test body is bounded.
    """
    if (
        TEST_TIMEOUT_S <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_S:.0f}s per-test guard "
            "(tune with REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def sim():
    """A fresh simulator with a 1 ns analog step."""
    return Simulator(dt=1e-9)


def make_fast_pll(sim, preset_locked=True, **overrides):
    """A PLL scaled for fast tests: 5 MHz reference, /10, 50 MHz out.

    Same 50 MHz output clock as the paper's PLL but a 10x higher
    reference and loop bandwidth (~250 kHz crossover), so lock
    dynamics and recovery play out in a few microseconds instead of
    tens — keeping PLL unit tests under a second each.
    """
    from repro.ams import PLL

    params = dict(
        f_ref="5MHz",
        n_div=10,
        kvco="10MHz",
        i_pump="100uA",
        r="15.7kOhm",
        c1="162pF",
        c2="16pF",
        preset_locked=preset_locked,
    )
    params.update(overrides)
    return PLL(sim, "pll", **params)
