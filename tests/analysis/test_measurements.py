"""Tests for waveform measurements."""

import numpy as np
import pytest

from repro.analysis import (
    clock_edges,
    clock_periods,
    frequency_trace,
    is_locked,
    lock_time,
    mean_frequency,
    peak_deviation,
    period_jitter,
    rise_time,
    settling_time,
)
from repro.core import Trace
from repro.core.errors import MeasurementError


def sine_trace(freq=50e6, duration=1e-6, dt=1e-9, amp=2.5, offset=2.5,
               jitter=None, name="clk"):
    times = np.arange(0.0, duration, dt)
    phase = 2 * np.pi * freq * times
    if jitter is not None:
        phase = phase + jitter(times)
    return Trace.from_arrays(name, times, offset + amp * np.sin(phase))


class TestClockMeasurements:
    def test_edges_count(self):
        tr = sine_trace()
        assert len(clock_edges(tr, 2.5)) == pytest.approx(50, abs=1)

    def test_periods_mean(self):
        tr = sine_trace()
        _edges, periods = clock_periods(tr, 2.5)
        assert np.mean(periods) == pytest.approx(20e-9, rel=1e-3)

    def test_too_few_edges_raises(self):
        tr = Trace.from_arrays("flat", [0, 1], [0.0, 0.0])
        with pytest.raises(MeasurementError):
            clock_periods(tr, 2.5)

    def test_frequency_trace(self):
        tr = sine_trace(freq=10e6, duration=2e-6)
        _times, freqs = frequency_trace(tr, 2.5)
        assert np.mean(freqs) == pytest.approx(10e6, rel=1e-3)

    def test_mean_frequency_windowed(self):
        tr = sine_trace(duration=2e-6)
        f = mean_frequency(tr, 2.5, t0=1e-6, t1=2e-6)
        assert f == pytest.approx(50e6, rel=1e-3)

    def test_period_jitter_of_clean_clock_is_small(self):
        tr = sine_trace()
        assert period_jitter(tr, 2.5) < 0.05e-9

    def test_period_jitter_detects_modulation(self):
        wobble = lambda t: 0.5 * np.sin(2 * np.pi * 1e6 * t)
        tr = sine_trace(jitter=wobble)
        # 0.5 rad of 1 MHz phase modulation on a 50 MHz carrier gives
        # ~1% peak period deviation, i.e. ~0.14 ns RMS.
        assert period_jitter(tr, 2.5) > 0.1e-9


class TestLockDetection:
    def test_locked_clean_clock(self):
        tr = sine_trace(duration=2e-6)
        assert is_locked(tr, 20e-9, tol_frac=0.01)
        assert lock_time(tr, 20e-9) < 1e-6

    def test_never_locks_wrong_period(self):
        tr = sine_trace(duration=2e-6)
        assert not is_locked(tr, 25e-9, tol_frac=0.01)

    def test_lock_time_after_transient(self):
        # Frequency settles from 40 MHz to 50 MHz exponentially.
        times = np.arange(0.0, 4e-6, 1e-9)
        f_inst = 50e6 - 10e6 * np.exp(-times / 0.5e-6)
        phase = 2 * np.pi * np.cumsum(f_inst) * 1e-9
        tr = Trace.from_arrays("clk", times, 2.5 + 2.5 * np.sin(phase))
        t_lock = lock_time(tr, 20e-9, tol_frac=0.01, consecutive=10)
        assert 0.5e-6 < t_lock < 3e-6

    def test_unlocked_raises(self):
        tr = sine_trace(duration=1e-6)
        with pytest.raises(MeasurementError):
            lock_time(tr, 40e-9)


class TestSettling:
    def test_settling_time_exponential(self):
        times = np.arange(0.0, 10e-6, 10e-9)
        values = 1.0 - np.exp(-times / 1e-6)
        tr = Trace.from_arrays("v", times, values)
        ts = settling_time(tr, 1.0, tol=0.01)
        assert ts == pytest.approx(1e-6 * np.log(100), rel=0.05)

    def test_settled_from_start(self):
        tr = Trace.from_arrays("v", [0, 1e-6], [1.0, 1.0])
        assert settling_time(tr, 1.0, tol=0.01) == 0.0

    def test_peak_deviation(self):
        times = np.arange(0.0, 1e-6, 1e-9)
        values = 2.5 + 0.08 * np.exp(-times / 1e-7)
        tr = Trace.from_arrays("v", times, values)
        assert peak_deviation(tr, 2.5) == pytest.approx(0.08, rel=0.01)

    def test_peak_deviation_windowed(self):
        times = np.arange(0.0, 1e-6, 1e-9)
        values = np.where(times < 0.5e-6, 2.5, 3.0)
        tr = Trace.from_arrays("v", times, values)
        assert peak_deviation(tr, 2.5, t1=0.4e-6) == pytest.approx(0.0)
        assert peak_deviation(tr, 2.5, t0=0.6e-6) == pytest.approx(0.5)


class TestRiseTime:
    def test_linear_ramp(self):
        times = np.linspace(0, 100e-9, 101)
        values = np.clip(times / 100e-9, 0, 1) * 5.0
        tr = Trace.from_arrays("v", times, values)
        # 10-90% of a 100 ns full-swing ramp = 80 ns.
        assert rise_time(tr, 0.0, 5.0) == pytest.approx(80e-9, rel=0.02)

    def test_no_transition_raises(self):
        tr = Trace.from_arrays("v", [0, 1e-6], [0.0, 0.0])
        with pytest.raises(MeasurementError):
            rise_time(tr, 0.0, 5.0)
