"""Tests for the perturbation metrics (the paper's key observable)."""

import numpy as np
import pytest

from repro.analysis import analyze_perturbation, perturbed_cycles
from repro.core import Trace
from repro.core.errors import MeasurementError


def perturbed_clock(t_inj=1e-6, depth=0.02, recovery=0.5e-6,
                    duration=4e-6, dt=1e-9, f0=50e6):
    """A 50 MHz clock whose frequency dips by `depth` after t_inj and
    recovers exponentially — the canonical post-injection shape."""
    times = np.arange(0.0, duration, dt)
    f_inst = np.where(
        times < t_inj,
        f0,
        f0 * (1.0 - depth * np.exp(-(times - t_inj) / recovery)),
    )
    phase = 2 * np.pi * np.cumsum(f_inst) * dt
    clock = Trace.from_arrays("clk", times, 2.5 + 2.5 * np.sin(phase))
    vctrl = Trace.from_arrays(
        "vctrl", times,
        2.5 - 0.1 * depth / 0.02 * np.exp(
            -np.maximum(times - t_inj, 0) / recovery
        ) * (times >= t_inj),
    )
    return clock, vctrl


class TestPerturbedCycles:
    def test_clean_clock_has_none(self):
        clock, _v = perturbed_clock(depth=0.0)
        hits = perturbed_cycles(clock, 1e-6, 20e-9, tol_frac=0.003)
        assert len(hits) == 0

    def test_perturbation_detected(self):
        clock, _v = perturbed_clock(depth=0.02)
        hits = perturbed_cycles(clock, 1e-6, 20e-9, tol_frac=0.003)
        assert len(hits) > 10

    def test_only_after_injection(self):
        clock, _v = perturbed_clock(depth=0.02)
        hits = perturbed_cycles(clock, 1e-6, 20e-9, tol_frac=0.003)
        assert np.all(hits >= 1e-6)


class TestAnalyzePerturbation:
    def test_multi_cycle_impact(self):
        """The Section 5.2 shape: a sub-ns fault, many bad cycles."""
        clock, vctrl = perturbed_clock()
        report = analyze_perturbation(
            clock, 1e-6, 800e-12, 20e-9, tol_frac=0.003,
            vctrl_trace=vctrl, vctrl_nominal=2.5, vctrl_tol=0.01,
        )
        assert report.multi_cycle()
        assert report.perturbed_cycles > 10
        assert report.amplification > 100
        assert report.fault_to_period_ratio == pytest.approx(0.04)
        assert report.max_period_deviation_frac == pytest.approx(0.02, rel=0.2)
        assert report.vctrl_disturbance_duration > 0.5e-6
        assert report.max_vctrl_deviation == pytest.approx(0.1, rel=0.05)

    def test_silent_injection(self):
        clock, vctrl = perturbed_clock(depth=0.0)
        report = analyze_perturbation(
            clock, 1e-6, 800e-12, 20e-9, tol_frac=0.003,
            vctrl_trace=vctrl, vctrl_nominal=2.5,
        )
        assert report.perturbed_cycles == 0
        assert report.perturbed_span == 0.0
        assert not report.multi_cycle()

    def test_no_cycles_after_injection_raises(self):
        clock, _v = perturbed_clock(duration=2e-6)
        with pytest.raises(MeasurementError):
            analyze_perturbation(clock, 5e-6, 800e-12, 20e-9)

    def test_vctrl_nominal_auto_estimated(self):
        clock, vctrl = perturbed_clock()
        report = analyze_perturbation(
            clock, 1e-6, 800e-12, 20e-9, tol_frac=0.003,
            vctrl_trace=vctrl,
        )
        assert report.max_vctrl_deviation == pytest.approx(0.1, rel=0.1)

    def test_summary_is_readable(self):
        clock, vctrl = perturbed_clock()
        report = analyze_perturbation(
            clock, 1e-6, 800e-12, 20e-9, tol_frac=0.003,
            vctrl_trace=vctrl, vctrl_nominal=2.5,
        )
        text = report.summary()
        assert "perturbed cycles" in text
        assert "vctrl" in text

    def test_deeper_dip_more_cycles(self):
        shallow, _ = perturbed_clock(depth=0.005)
        deep, _ = perturbed_clock(depth=0.04)
        r_shallow = analyze_perturbation(shallow, 1e-6, 8e-10, 20e-9,
                                         tol_frac=0.003)
        r_deep = analyze_perturbation(deep, 1e-6, 8e-10, 20e-9,
                                      tol_frac=0.003)
        assert r_deep.perturbed_cycles > r_shallow.perturbed_cycles
        assert r_deep.max_period_deviation > r_shallow.max_period_deviation
