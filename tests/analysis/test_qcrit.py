"""Tests for critical-charge estimation."""

import pytest

from repro.analysis.qcrit import (
    QcritResult,
    find_critical_charge,
    scaled_pulse,
)
from repro.core.errors import MeasurementError
from repro.faults import FIGURE6_PULSE, TrapezoidPulse

REF = TrapezoidPulse("1mA", "100ps", "300ps", "500ps")


class TestScaledPulse:
    def test_charge_set_exactly(self):
        pulse = scaled_pulse(REF, 2e-12)
        assert pulse.charge() == pytest.approx(2e-12)

    def test_shape_preserved(self):
        pulse = scaled_pulse(REF, 2e-12)
        assert pulse.rt == REF.rt
        assert pulse.ft == REF.ft
        assert pulse.pw == REF.pw

    def test_invalid_charge(self):
        with pytest.raises(MeasurementError):
            scaled_pulse(REF, 0.0)


class TestBisection:
    def test_finds_synthetic_threshold(self):
        threshold = 3.7e-13

        def errored(pulse):
            return abs(pulse.charge()) >= threshold

        result = find_critical_charge(errored, REF, q_lo=1e-15,
                                      q_hi=1e-11, rel_tol=0.02)
        assert result.q_crit == pytest.approx(threshold, rel=0.05)
        assert result.q_pass < threshold <= result.q_fail
        assert result.uncertainty <= 0.02 * result.q_crit

    def test_history_records_all_runs(self):
        def errored(pulse):
            return abs(pulse.charge()) >= 1e-13

        result = find_critical_charge(errored, REF, q_lo=1e-15, q_hi=1e-11)
        assert len(result.history) == result.evaluations
        # Every recorded verdict is consistent with the threshold.
        for charge, verdict in result.history:
            assert verdict == (charge >= 1e-13)

    def test_bad_bracket_low(self):
        with pytest.raises(MeasurementError):
            find_critical_charge(lambda p: True, REF)

    def test_bad_bracket_high(self):
        with pytest.raises(MeasurementError):
            find_critical_charge(lambda p: False, REF)

    def test_bad_range(self):
        with pytest.raises(MeasurementError):
            find_critical_charge(lambda p: True, REF, q_lo=1e-11,
                                 q_hi=1e-12)

    def test_evaluation_cap(self):
        def errored(pulse):
            return abs(pulse.charge()) >= 1e-13

        result = find_critical_charge(errored, REF, q_lo=1e-16,
                                      q_hi=1e-10, rel_tol=1e-9,
                                      max_evaluations=10)
        assert result.evaluations == 10

    def test_summary(self):
        result = QcritResult(q_crit=1e-13, q_pass=0.9e-13, q_fail=1.1e-13,
                             evaluations=7, history=[])
        assert "fC" in result.summary()


class TestOnRealCircuit:
    def test_pll_qcrit(self):
        """Qcrit of the fast PLL's filter node: the smallest charge
        that perturbs more than a couple of clock periods."""
        from repro.analysis import analyze_perturbation
        from repro.core import Simulator
        from repro.injection import CurrentPulseSaboteur
        from tests.conftest import make_fast_pll

        T_INJ = 12e-6

        def errored(pulse):
            sim = Simulator(dt=1e-9)
            pll = make_fast_pll(sim, preset_locked=True)
            sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
            sab.schedule(pulse, T_INJ)
            vco = sim.probe(pll.vco_out)
            sim.run(18e-6)
            report = analyze_perturbation(
                vco.segment(8e-6, None), T_INJ, pulse.pw,
                pll.t_out_nominal, tol_frac=0.003,
            )
            return report.perturbed_cycles > 2

        result = find_critical_charge(
            errored, FIGURE6_PULSE, q_lo=1e-15, q_hi=FIGURE6_PULSE.charge(),
            rel_tol=0.2, max_evaluations=12,
        )
        # the Figure 6 pulse (6 pC) is far above threshold; the
        # threshold must be a small fraction of it
        assert result.q_crit < 0.2 * FIGURE6_PULSE.charge()
        assert result.q_crit > 1e-15
