"""Tests for the jitter decomposition module."""

import numpy as np
import pytest

from repro.analysis.jitter import (
    analyze_jitter,
    cycle_to_cycle_jitter,
    phase_slip_cycles,
    time_interval_error,
)
from repro.core import Trace
from repro.core.errors import MeasurementError


def clock_trace(periods, t_start=0.0, name="clk"):
    """Synthesise a sine clock with the given period sequence."""
    times = []
    values = []
    t = t_start
    for period in periods:
        for k in range(20):
            times.append(t + period * k / 20)
            values.append(2.5 + 2.5 * np.sin(2 * np.pi * k / 20))
        t += period
    times.append(t)
    values.append(2.5)
    return Trace.from_arrays(name, times, values)


class TestCleanClock:
    def test_zero_jitter(self):
        tr = clock_trace([20e-9] * 50)
        report = analyze_jitter(tr)
        assert report.period_mean == pytest.approx(20e-9, rel=1e-6)
        assert report.period_jitter_rms < 1e-14
        assert report.c2c_jitter_rms < 1e-14
        assert abs(report.tie_final) < 1e-13

    def test_needs_three_edges(self):
        tr = clock_trace([20e-9])
        with pytest.raises(MeasurementError):
            analyze_jitter(tr)


class TestDisturbedClock:
    def make_glitch(self):
        # one long period in the middle of a clean train
        periods = [20e-9] * 20 + [22e-9] + [20e-9] * 20
        return clock_trace(periods)

    def test_period_jitter_detects_glitch(self):
        report = analyze_jitter(self.make_glitch(), nominal_period=20e-9)
        assert report.period_jitter_pp == pytest.approx(2e-9, rel=0.05)

    def test_c2c_jitter_sees_both_sides(self):
        _edges, c2c = cycle_to_cycle_jitter(self.make_glitch())
        # +2 ns entering the long cycle, -2 ns leaving it
        assert np.max(c2c) == pytest.approx(2e-9, rel=0.05)
        assert np.min(c2c) == pytest.approx(-2e-9, rel=0.05)

    def test_tie_remembers_the_slip(self):
        """Periods recover after the glitch but TIE stays displaced —
        the integral view of the Section 5.2 feed-through."""
        _edges, tie = time_interval_error(self.make_glitch(),
                                          nominal_period=20e-9)
        assert tie[-1] == pytest.approx(2e-9, rel=0.05)

    def test_phase_slip_cycles(self):
        periods = [20e-9] * 10 + [30e-9] * 2 + [20e-9] * 10
        tr = clock_trace(periods)
        slip = phase_slip_cycles(tr, 20e-9)
        assert slip == pytest.approx(1.0, rel=0.05)

    def test_mean_detrending_hides_static_offset(self):
        """With nominal derived from the data, a static frequency
        offset contributes no TIE; against the true nominal it does."""
        tr = clock_trace([21e-9] * 40)
        _e, tie_auto = time_interval_error(tr)
        _e, tie_ref = time_interval_error(tr, nominal_period=20e-9)
        assert np.ptp(tie_auto) < 1e-13
        assert tie_ref[-1] == pytest.approx(40e-9, rel=0.05)


class TestReportRendering:
    def test_summary_text(self):
        tr = clock_trace([20e-9] * 30)
        text = analyze_jitter(tr).summary()
        assert "cycle-to-cycle" in text
        assert "ns" in text and "ps" in text


class TestOnRealPLL:
    def test_injection_shows_in_tie(self):
        from repro.core import Simulator
        from repro.faults import FIGURE6_PULSE
        from repro.injection import CurrentPulseSaboteur
        from tests.conftest import make_fast_pll

        sim = Simulator(dt=1e-9)
        pll = make_fast_pll(sim, preset_locked=True)
        sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
        sab.schedule(FIGURE6_PULSE, 12e-6)
        vco = sim.probe(pll.vco_out)
        sim.run(25e-6)
        quiet = analyze_jitter(vco, nominal_period=20e-9,
                               t0=5e-6, t1=11e-6)
        hit = analyze_jitter(vco, nominal_period=20e-9,
                             t0=11e-6, t1=20e-6)
        assert hit.period_jitter_pp > 5 * quiet.period_jitter_pp
        assert hit.tie_pp > 5 * quiet.tie_pp
