"""Tests for the soft-error-rate model."""

import math

import pytest

from repro.analysis.ser import (
    SEA_LEVEL_NEUTRON_FLUX,
    SERModel,
    compare_nodes,
    format_ser_table,
)
from repro.core.errors import MeasurementError


class TestModel:
    def test_rate_positive_and_decreasing_in_qcrit(self):
        model = SERModel()
        soft = model.upset_rate(100e-15, 1e-8)
        hard = model.upset_rate(500e-15, 1e-8)
        assert soft > hard > 0

    def test_exponential_slope(self):
        model = SERModel(q_s=25e-15)
        r1 = model.upset_rate(100e-15, 1e-8)
        r2 = model.upset_rate(125e-15, 1e-8)
        assert r1 / r2 == pytest.approx(math.e, rel=1e-9)

    def test_rate_linear_in_area_and_flux(self):
        model = SERModel()
        base = model.upset_rate(200e-15, 1e-8)
        assert model.upset_rate(200e-15, 2e-8) == pytest.approx(2 * base)
        double_flux = SERModel(flux=2 * SEA_LEVEL_NEUTRON_FLUX)
        assert double_flux.upset_rate(200e-15, 1e-8) == pytest.approx(2 * base)

    def test_fit_conversion(self):
        model = SERModel()
        rate = model.upset_rate(200e-15, 1e-8)
        assert model.fit_rate(200e-15, 1e-8) == pytest.approx(
            rate * 3600e9)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            SERModel(flux=0.0)
        model = SERModel()
        with pytest.raises(MeasurementError):
            model.upset_rate(0.0, 1e-8)
        with pytest.raises(MeasurementError):
            model.upset_rate(1e-13, 0.0)


class TestInverse:
    # A 10^-4 cm^2 block has a zero-charge ceiling of ~29 FIT with the
    # default constants; budgets below that are attainable.
    AREA = 1e-4

    def test_roundtrip(self):
        model = SERModel()
        q = model.qcrit_for_fit_target(1.0, self.AREA)
        assert q > 0
        assert model.fit_rate(q, self.AREA) == pytest.approx(1.0, rel=1e-6)

    def test_generous_budget_needs_no_charge(self):
        model = SERModel()
        q = model.qcrit_for_fit_target(1e30, self.AREA)
        assert q == 0.0

    def test_tighter_budget_needs_more_charge(self):
        model = SERModel()
        q_loose = model.qcrit_for_fit_target(10.0, self.AREA)
        q_tight = model.qcrit_for_fit_target(0.1, self.AREA)
        assert q_tight > q_loose > 0

    def test_validation(self):
        with pytest.raises(MeasurementError):
            SERModel().qcrit_for_fit_target(0.0, 1e-8)


class TestDerating:
    def test_masking_scales_rate(self):
        model = SERModel()
        assert model.derate(100.0, 0.075) == pytest.approx(7.5)

    def test_bounds(self):
        model = SERModel()
        with pytest.raises(MeasurementError):
            model.derate(1.0, 1.5)


class TestNodeComparison:
    def test_sorted_most_sensitive_first(self):
        model = SERModel()
        rows = compare_nodes(model, [
            ("pll.icp", 446e-15),
            ("adc.held", 160e-15),
            ("dll.icp", 3190e-15),
        ])
        assert [name for name, _q, _f in rows] == \
            ["adc.held", "pll.icp", "dll.icp"]

    def test_table_rendering(self):
        model = SERModel()
        rows = compare_nodes(model, [("n1", 200e-15)])
        text = format_ser_table(rows)
        assert "Qcrit (fC)" in text and "n1" in text
