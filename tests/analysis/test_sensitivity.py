"""Tests for sensitivity sweeps."""

import pytest

from repro.analysis import SensitivitySweep
from repro.core.errors import MeasurementError
from repro.faults import FIGURE8_PULSES


class TestSweep:
    def test_run_over_pulses(self):
        sweep = SensitivitySweep()
        sweep.run(FIGURE8_PULSES,
                  lambda p: {"peak_dev": p.charge() * 1e9})
        assert len(sweep.points) == 4
        assert sweep.points[0].charge == pytest.approx(
            FIGURE8_PULSES[0].charge())

    def test_monotonic_in_charge(self):
        sweep = SensitivitySweep()
        sweep.run(FIGURE8_PULSES, lambda p: {"m": p.charge() * 2.0})
        assert sweep.is_monotonic_in_charge("m")
        assert sweep.is_monotonic_in_charge("m", strict=True)

    def test_non_monotonic_detected(self):
        sweep = SensitivitySweep()
        sweep.add("a", 1e-12, {"m": 5.0})
        sweep.add("b", 2e-12, {"m": 1.0})
        assert not sweep.is_monotonic_in_charge("m")

    def test_spearman_perfect_correlation(self):
        sweep = SensitivitySweep()
        for k in range(5):
            sweep.add(f"p{k}", k * 1e-12, {"m": k * 3.0})
        assert sweep.spearman("m") == pytest.approx(1.0)

    def test_spearman_needs_three_points(self):
        sweep = SensitivitySweep()
        sweep.add("a", 1e-12, {"m": 1.0})
        sweep.add("b", 2e-12, {"m": 2.0})
        with pytest.raises(MeasurementError):
            sweep.spearman("m")

    def test_metric_series_order(self):
        sweep = SensitivitySweep()
        sweep.add("a", 2e-12, {"m": 1.0})
        sweep.add("b", 1e-12, {"m": 2.0})
        charges, values = sweep.metric_series("m")
        assert list(charges) == [2e-12, 1e-12]
        assert list(values) == [1.0, 2.0]

    def test_unknown_metric(self):
        sweep = SensitivitySweep()
        sweep.add("a", 1e-12, {"m": 1.0})
        with pytest.raises(MeasurementError):
            sweep.points[0].metric("nope")

    def test_table_rendering(self):
        sweep = SensitivitySweep()
        sweep.run(FIGURE8_PULSES[:2], lambda p: {"cycles": 42})
        text = sweep.table(["cycles"])
        assert "charge (pC)" in text
        assert "42" in text

    def test_custom_label_and_charge_fns(self):
        sweep = SensitivitySweep()
        sweep.run([1, 2, 3],
                  lambda v: {"m": v},
                  label_fn=lambda v: f"v{v}",
                  charge_fn=lambda v: v * 1e-12)
        assert sweep.points[0].label == "v1"
        assert sweep.is_monotonic_in_charge("m", strict=True)
