"""Tests for mutant injection and the run-time injection controller."""

import pytest

from repro.core import Component, L0, L1, Logic, Simulator
from repro.core.errors import InjectionError
from repro.digital import Bus, ClockGen, Counter, DFF
from repro.faults import (
    BitFlip,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
    TrapezoidPulse,
)
from repro.injection import (
    CurrentInjection,
    InjectionController,
    MutantInjector,
    instrument,
)


def build_digital(sim):
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 4)
    Counter(sim, "counter", clk, q, parent=top)
    d = sim.signal("d", init=L0)
    ffq = sim.signal("ffq")
    DFF(sim, "ff", d, clk, ffq, parent=top)
    return top, q, ffq


class TestMutantInjector:
    def test_targets_enumerated(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        assert "top/ff.q" in mi.targets()
        assert "top/counter.q[0]" in mi.targets()

    def test_pattern_filter(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        assert mi.targets("top/ff*") == ["top/ff.q"]

    def test_unknown_target_raises(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        with pytest.raises(InjectionError):
            mi.flip_now("nope")

    def test_flip_now(self):
        sim = Simulator()
        top, q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        sim.run(25e-9)  # count = 3
        mi.flip_now("top/counter.q[1]")
        assert q.to_int() == 1
        assert mi.log[-1][1] == "top/counter.q[1]"

    def test_flip_of_undefined_gives_x(self):
        sim = Simulator()
        top, _q, ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        # ff never clocked with defined d? q is U before first edge...
        # flip U -> X per the SEU model.
        mi.set_now("top/ff.q", Logic.U)
        mi.flip_now("top/ff.q")
        assert ffq.value is Logic.X

    def test_flip_at_scheduled(self):
        sim = Simulator()
        top, q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        mi.flip_at("top/counter.q[0]", 25e-9)
        sim.run(26e-9)
        assert q.to_int() == 2  # was 3, bit0 flipped

    def test_stick_state(self):
        sim = Simulator()
        top, q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        mi.stick("top/counter.q[0]", L0, 5e-9, 100e-9)
        sim.run(95e-9)
        assert q.bits[0].value is L0
        assert q.bits[0].is_forced

    def test_apply_bitflip_models(self):
        sim = Simulator()
        top, q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        mi.apply(BitFlip("top/counter.q[2]", 25e-9))
        mi.apply(MultipleBitUpset(
            ["top/counter.q[0]", "top/counter.q[1]"], 25e-9))
        sim.run(26e-9)
        assert q.to_int() == 4  # 3 ^ 4 ^ 1 ^ 2

    def test_apply_wrong_type(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        mi = MutantInjector(sim, top)
        with pytest.raises(InjectionError):
            mi.apply(StuckAt("x", 1))


class TestInjectionController:
    def test_set_pulse_on_wire(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        ctl = InjectionController(sim, top)
        ctl.apply(SETPulse("clk", 23e-9, 2e-9))
        clk = sim.signals["clk"]
        sim.run(24e-9)
        assert clk.is_forced
        sim.run(26e-9)
        assert not clk.is_forced

    def test_stuck_at_on_wire(self):
        sim = Simulator()
        top, q, _ffq = build_digital(sim)
        ctl = InjectionController(sim, top)
        ctl.apply(StuckAt("clk", 0, t_start=15e-9))
        sim.run(100e-9)
        assert q.to_int() == 2  # only edges at 0 and 10 counted

    def test_stuck_at_on_state_name(self):
        sim = Simulator()
        top, q, _ffq = build_digital(sim)
        ctl = InjectionController(sim, top)
        ctl.apply(StuckAt("top/counter.q[0]", 1, t_start=0.0))
        sim.run(100e-9)
        assert q.bits[0].value is L1

    def test_unknown_signal(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        ctl = InjectionController(sim, top)
        with pytest.raises(InjectionError):
            ctl.apply(SETPulse("ghost", 1e-9, 1e-9))

    def test_current_injection_autocreates_saboteur(self):
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        sim.current_node("icp")
        ctl = InjectionController(sim, top)
        fault = CurrentInjection(
            TrapezoidPulse("10mA", "100ps", "300ps", "500ps"), "icp", 50e-9
        )
        ctl.apply(fault)
        assert "icp" in ctl.saboteurs
        sim.run(100e-9)

    def test_current_injection_unknown_node(self):
        sim = Simulator()
        top = Component(sim, "top")
        ctl = InjectionController(sim, top)
        fault = CurrentInjection(
            TrapezoidPulse("10mA", "100ps", "300ps", "500ps"), "ghost", 1e-9
        )
        with pytest.raises(InjectionError):
            ctl.apply(fault)

    def test_parametric_fault_applied_and_restored(self):
        from repro.analog import DCVoltage, VCO

        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        vc = sim.node("vc", init=2.5)
        out = sim.node("out")
        DCVoltage(sim, "src", vc, 2.5, parent=top)
        vco = VCO(sim, "vco", vc, out, f0=50e6, kvco=10e6, parent=top)
        ctl = InjectionController(sim, top)
        ctl.apply(ParametricFault("top/vco", "kvco", factor=2.0,
                                  t_start=1e-6, t_end=2e-6))
        sim.run(1.5e-6)
        assert vco.kvco == pytest.approx(20e6)
        sim.run(2.5e-6)
        assert vco.kvco == pytest.approx(10e6)

    def test_parametric_bad_attribute(self):
        sim = Simulator()
        top = Component(sim, "top")
        ctl = InjectionController(sim, top)
        with pytest.raises(InjectionError):
            ctl.apply(ParametricFault("top", "nothing", factor=2.0))

    def test_unsupported_fault_type(self):
        sim = Simulator()
        top = Component(sim, "top")
        ctl = InjectionController(sim, top)
        with pytest.raises(InjectionError):
            ctl.apply(object())

    def test_applied_log(self):
        sim = Simulator()
        top, _q, _ffq = build_digital(sim)
        ctl = InjectionController(sim, top)
        faults = [BitFlip("top/ff.q", 1e-9), SETPulse("clk", 2e-9, 1e-9)]
        ctl.apply_all(faults)
        assert ctl.applied == faults


class TestInstrument:
    def test_collects_targets(self):
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=10e-9, parent=top)
        q = Bus(sim, "cnt", 2)
        Counter(sim, "counter", clk, q, parent=top)
        sim.current_node("pll.icp")
        inst = instrument(sim, top)
        assert inst.analog_targets == ["pll.icp"]
        assert "top/counter.q[0]" in inst.digital_targets
        assert "pll.icp" in inst.controller.saboteurs

    def test_lazy_saboteurs(self):
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        sim.current_node("icp")
        inst = instrument(sim, top, pre_place_saboteurs=False)
        assert inst.controller.saboteurs == {}
        assert inst.analog_targets == ["icp"]

    def test_summary_lists_targets(self):
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        sim.current_node("icp")
        inst = instrument(sim, top)
        assert "icp" in inst.summary()
