"""Tests for saboteurs: current-pulse, GenCur-style controlled, digital."""

import numpy as np
import pytest

from repro.analog import TransimpedanceFilter, rc_transimpedance
from repro.core import L0, L1, Logic, Simulator
from repro.core.errors import InjectionError
from repro.digital import ClockGen, PulseGen
from repro.faults import DoubleExponentialPulse, TrapezoidPulse
from repro.injection import (
    ControlledCurrentSaboteur,
    CurrentPulseSaboteur,
    DigitalSaboteur,
)


@pytest.fixture
def sim():
    return Simulator(dt=1e-9)


PULSE = TrapezoidPulse("10mA", "100ps", "300ps", "500ps")


class TestCurrentPulseSaboteur:
    def test_delivers_charge(self, sim):
        """Integrated node current equals the model's closed-form
        charge — the superposition is numerically faithful."""
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        sab.schedule(PULSE, 100e-9)
        tr = sim.probe_current(node)
        sim.run(200e-9)
        charge = np.trapezoid(tr.values, tr.times)
        assert charge == pytest.approx(PULSE.charge(), rel=0.05)

    def test_registers_refinement_window(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        assert len(sim.analog.windows) == 0
        sab.schedule(PULSE, 100e-9)
        assert len(sim.analog.windows) == 1
        window = sim.analog.windows[0]
        assert window.t0 <= 100e-9
        assert window.t1 >= 100e-9 + PULSE.duration
        assert window.dt <= PULSE.suggested_dt()

    def test_rejects_voltage_node(self, sim):
        node = sim.node("v")
        with pytest.raises(Exception):
            CurrentPulseSaboteur(sim, "sab", node)

    def test_rejects_non_transient(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        with pytest.raises(InjectionError):
            sab.schedule("not-a-pulse", 1e-6)

    def test_rejects_past_time(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        sim.run(1e-6)
        with pytest.raises(InjectionError):
            sab.schedule(PULSE, 0.5e-6)

    def test_multiple_injections(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        sab.schedule(PULSE, 50e-9)
        sab.schedule(PULSE, 150e-9)
        tr = sim.probe_current(node)
        sim.run(300e-9)
        charge = np.trapezoid(tr.values, tr.times)
        assert charge == pytest.approx(2 * PULSE.charge(), rel=0.05)
        assert sab.injected_charge == pytest.approx(2 * PULSE.charge())

    def test_double_exponential_supported(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        dexp = DoubleExponentialPulse.from_peak("10mA", "50ps", "300ps")
        sab.schedule(dexp, 100e-9)
        tr = sim.probe_current(node)
        sim.run(300e-9)
        charge = np.trapezoid(tr.values, tr.times)
        assert charge == pytest.approx(dexp.charge(), rel=0.05)

    def test_active_injections_window(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        sab.schedule(PULSE, 100e-9)
        assert sab.active_injections(100.4e-9)
        assert not sab.active_injections(99e-9)
        assert not sab.active_injections(101e-9)

    def test_clear(self, sim):
        node = sim.current_node("icp")
        sab = CurrentPulseSaboteur(sim, "sab", node)
        sab.schedule(PULSE, 100e-9)
        sab.clear()
        tr = sim.probe_current(node)
        sim.run(200e-9)
        assert np.max(np.abs(tr.values)) == 0.0


class TestControlledSaboteur:
    """The literal GenCur port: PW set by the control-pulse duration."""

    def test_pulse_width_follows_control(self, sim):
        inj = sim.signal("inj", init=L0)
        node = sim.current_node("icp")
        ControlledCurrentSaboteur(sim, "gencur", inj, node,
                                  rt=1e-9, ft=1e-9, pa=0.01)
        PulseGen(sim, "ctl", inj, start=50e-9, width=10e-9)
        tr = sim.probe_current(node)
        sim.run(100e-9)
        charge = np.trapezoid(tr.values, tr.times)
        # Ramp-following: Q ~= PA * PW (ramp up inside, ramp down after).
        assert charge == pytest.approx(0.01 * 10e-9, rel=0.15)

    def test_ramp_rate_limited(self, sim):
        inj = sim.signal("inj", init=L0)
        node = sim.current_node("icp")
        ControlledCurrentSaboteur(sim, "gencur", inj, node,
                                  rt=10e-9, ft=10e-9, pa=0.01)
        PulseGen(sim, "ctl", inj, start=10e-9, width=5e-9)
        tr = sim.probe_current(node)
        sim.run(50e-9)
        # Control shorter than RT: the current never reaches PA.
        assert np.max(tr.values) < 0.0075

    def test_validates_ramps(self, sim):
        inj = sim.signal("inj", init=L0)
        node = sim.current_node("icp")
        with pytest.raises(InjectionError):
            ControlledCurrentSaboteur(sim, "g", inj, node, rt=0.0,
                                      ft=1e-9, pa=0.01)


class TestDigitalSaboteur:
    def build(self, sim):
        src = sim.signal("src", init=L0)
        dst = sim.signal("dst")
        sab = DigitalSaboteur(sim, "sab", src, dst)
        ClockGen(sim, "ck", src, period=10e-9)
        return src, dst, sab

    def test_transparent_by_default(self, sim):
        _src, dst, _sab = self.build(sim)
        tr = sim.probe(dst)
        sim.run(45e-9)
        assert len(tr.edges("rise")) == 5

    def test_stick_window(self, sim):
        _src, dst, sab = self.build(sim)
        sab.stick(L0, 20e-9, 40e-9)
        tr = sim.probe(dst)
        sim.run(60e-9)
        seg = tr.segment(21e-9, 39e-9)
        assert all(v == 0.0 for v in seg.values)

    def test_invert_window(self, sim):
        src, dst, sab = self.build(sim)
        sab.invert(20e-9, 40e-9)
        sim.run(25e-9)
        assert dst.value is not src.value

    def test_pulse_inverts_briefly(self, sim):
        src, dst, sab = self.build(sim)
        sab.pulse(22e-9, 2e-9)
        sim.run(23e-9)
        assert dst.value is not src.value
        sim.run(26e-9)
        assert dst.value is src.value

    def test_pulse_forced_value(self, sim):
        _src, dst, sab = self.build(sim)
        sab.pulse(22e-9, 2e-9, value=L1)
        sim.run(23e-9)
        assert dst.value is L1

    def test_pulse_zero_width_rejected(self, sim):
        _src, _dst, sab = self.build(sim)
        with pytest.raises(InjectionError):
            sab.pulse(22e-9, 0.0)

    def test_activation_counter(self, sim):
        _src, _dst, sab = self.build(sim)
        sab.stick(L1, 20e-9, 30e-9)
        sim.run(40e-9)
        assert sab.activations == 2  # enter + leave stuck mode
