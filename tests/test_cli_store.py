"""CLI coverage for the campaign store, resume, and observability paths."""

import json

import pytest

from repro.cli import main
from repro.store import CampaignStore

NETLIST = {
    "name": "dut",
    "dt": "1ns",
    "signals": [
        {"name": "clk", "init": "0"},
        {"name": "parity", "init": "U"},
    ],
    "buses": [{"name": "cnt", "width": 4, "init": 0}],
    "instances": [
        {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
         "params": {"period": 1e-8}},
        {"type": "Counter", "name": "counter",
         "ports": {"clk": "clk", "q": "cnt"}},
        {"type": "ParityGen", "name": "par",
         "ports": {"a": "cnt", "parity": "parity"}},
    ],
    "probes": ["cnt", "parity"],
    "outputs": ["parity"],
}

FAULTS = [
    {"kind": "bitflip", "target": "dut/counter.q[0]", "time": "35ns"},
    {"kind": "bitflip", "target": "dut/counter.q[1]", "time": "55ns"},
    {"kind": "stuck", "target": "clk", "value": "0", "t_start": "50ns"},
]


@pytest.fixture
def netlist_file(tmp_path):
    path = tmp_path / "design.json"
    path.write_text(json.dumps(NETLIST))
    return str(path)


@pytest.fixture
def fault_file(tmp_path):
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(FAULTS))
    return str(path)


class TestStoreBackedRuns:
    def test_run_records_into_store(self, netlist_file, fault_file,
                                    tmp_path, capsys):
        db = str(tmp_path / "camp.db")
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--store", db]) == 0
        capsys.readouterr()
        with CampaignStore(db) as store:
            summary = store.status()[0]
        assert summary["completed"] == 3
        assert summary["status"] == "complete"

    def test_resume_skips_completed_runs(self, netlist_file, fault_file,
                                         tmp_path, capsys):
        db = str(tmp_path / "camp.db")
        main(["campaign", "run", netlist_file, fault_file,
              "--until", "300ns", "--store", db])
        first = capsys.readouterr().out
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--resume", db]) == 0
        second = capsys.readouterr().out
        assert "resumed         : 3 runs loaded from store, 0 executed" \
            in second
        # Same classification table with and without simulation.
        assert first.split("--- execution ---")[0] == \
            second.split("--- execution ---")[0]

    def test_rerun_without_resume_is_an_error(self, netlist_file,
                                              fault_file, tmp_path, capsys):
        db = str(tmp_path / "camp.db")
        main(["campaign", "run", netlist_file, fault_file,
              "--until", "300ns", "--store", db])
        code = main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--store", db])
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_status_table(self, netlist_file, fault_file, tmp_path, capsys):
        db = str(tmp_path / "camp.db")
        main(["campaign", "run", netlist_file, fault_file,
              "--until", "300ns", "--store", db])
        capsys.readouterr()
        assert main(["campaign", "status", "--from-db", db]) == 0
        out = capsys.readouterr().out
        assert "dut" in out
        assert "3/3" in out
        assert "mode" in out
        assert "cold" in out

    def test_status_shows_batch_mode(self, netlist_file, fault_file,
                                     tmp_path, capsys):
        db = str(tmp_path / "camp.db")
        main(["campaign", "run", netlist_file, fault_file,
              "--until", "300ns", "--store", db, "--batch", "digital"])
        capsys.readouterr()
        assert main(["campaign", "status", "--from-db", db]) == 0
        out = capsys.readouterr().out
        assert "batched/digital" in out

    def test_report_from_db_matches_live(self, netlist_file, fault_file,
                                         tmp_path, capsys):
        db = str(tmp_path / "camp.db")
        csv_live = str(tmp_path / "live.csv")
        csv_db = str(tmp_path / "db.csv")
        main(["campaign", "run", netlist_file, fault_file,
              "--until", "300ns", "--store", db, "--csv", csv_live])
        capsys.readouterr()
        assert main(["campaign", "report", "--from-db", db,
                     "--dictionary", "--csv", csv_db]) == 0
        out = capsys.readouterr().out
        assert "classification summary" in out
        assert "fault dictionary:" in out
        assert open(csv_db).read() == open(csv_live).read()

    def test_status_on_missing_db_path_errors(self, tmp_path, capsys):
        db = str(tmp_path / "empty.db")
        assert main(["campaign", "status", "--from-db", db]) == 0
        assert "no campaigns recorded" in capsys.readouterr().out


class TestErrorExitCode:
    def test_broken_fault_exits_3_with_summary(self, netlist_file,
                                               tmp_path, capsys):
        faults = FAULTS + [
            {"kind": "bitflip", "target": "dut/counter.nope", "time": "35ns"}
        ]
        fault_file = tmp_path / "faults.json"
        fault_file.write_text(json.dumps(faults))
        db = str(tmp_path / "camp.db")
        code = main(["campaign", "run", netlist_file, str(fault_file),
                     "--until", "300ns", "--store", db])
        captured = capsys.readouterr()
        assert code == 3
        assert "1 of 4 fault runs raised simulation errors" in captured.err
        assert "--resume" in captured.err
        # The three healthy runs are still committed and reported.
        assert "classification summary" in captured.out
        with CampaignStore(db) as store:
            summary = store.status()[0]
        assert summary["completed"] == 3
        assert summary["errors"] == 1
        assert summary["status"] == "errors"

    def test_resume_skips_quarantined_failed_runs(self, netlist_file,
                                                  tmp_path, capsys):
        faults = FAULTS + [
            {"kind": "bitflip", "target": "dut/counter.nope", "time": "35ns"}
        ]
        bad_faults = tmp_path / "bad.json"
        bad_faults.write_text(json.dumps(faults))
        db = str(tmp_path / "camp.db")
        assert main(["campaign", "run", netlist_file, str(bad_faults),
                     "--until", "300ns", "--store", db]) == 3
        # Index 3 exhausted its attempts and is quarantined, so a plain
        # resume loads all four stored rows -- the three good runs plus
        # the quarantined error -- and simulates nothing.
        assert main(["campaign", "run", netlist_file, str(bad_faults),
                     "--until", "300ns", "--resume", db]) == 3
        out = capsys.readouterr().out
        assert "resumed         : 4 runs loaded from store, 0 executed" \
            in out
        assert "quarantined" in out
        # --retry-quarantined gives index 3 another chance; the broken
        # target is deterministic, so it fails (and re-quarantines).
        assert main(["campaign", "run", netlist_file, str(bad_faults),
                     "--until", "300ns", "--resume", db,
                     "--retry-quarantined"]) == 3
        out = capsys.readouterr().out
        # Only index 3 was pending again; it errored, so no run completed.
        assert "resumed         : 3 runs loaded from store, 0 executed" \
            in out
        assert "(2 attempts)" in out


class TestObservabilityFlags:
    def test_trace_and_metrics_files(self, netlist_file, fault_file,
                                     tmp_path, capsys):
        trace = tmp_path / "spans.json"
        metrics = tmp_path / "metrics.json"
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        spans = json.loads(trace.read_text())
        names = [span["name"] for span in spans]
        assert names.count("campaign.fault_run") == 3
        assert "campaign.golden" in names
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["campaign.runs"] == 3
        assert snapshot["histograms"]["campaign.run_wall_s"]["count"] == 3

    def test_progress_line_on_stderr(self, netlist_file, fault_file,
                                     capsys):
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[   1/3]" in err
        assert "runs/s" in err


class TestArgvCompatibility:
    def test_bare_campaign_form_still_works(self, netlist_file, fault_file,
                                            capsys):
        assert main(["campaign", netlist_file, fault_file,
                     "--until", "300ns"]) == 0
        assert "classification summary" in capsys.readouterr().out
