"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, fault_from_dict, load_faults, main
from repro.core.errors import ReproError
from repro.faults import (
    BitFlip,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
)
from repro.injection import CurrentInjection

NETLIST = {
    "name": "dut",
    "dt": "1ns",
    "signals": [
        {"name": "clk", "init": "0"},
        {"name": "parity", "init": "U"},
    ],
    "buses": [{"name": "cnt", "width": 4, "init": 0}],
    "instances": [
        {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
         "params": {"period": 1e-8}},
        {"type": "Counter", "name": "counter",
         "ports": {"clk": "clk", "q": "cnt"}},
        {"type": "ParityGen", "name": "par",
         "ports": {"a": "cnt", "parity": "parity"}},
    ],
    "probes": ["cnt", "parity"],
    "outputs": ["parity"],
}

FAULTS = [
    {"kind": "bitflip", "target": "dut/counter.q[0]", "time": "35ns"},
    {"kind": "stuck", "target": "clk", "value": "0", "t_start": "50ns"},
]


@pytest.fixture
def netlist_file(tmp_path):
    path = tmp_path / "design.json"
    path.write_text(json.dumps(NETLIST))
    return str(path)


@pytest.fixture
def fault_file(tmp_path):
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(FAULTS))
    return str(path)


class TestFaultParsing:
    def test_bitflip(self):
        fault = fault_from_dict(
            {"kind": "bitflip", "target": "x.q", "time": "1us"})
        assert isinstance(fault, BitFlip)
        assert fault.time == pytest.approx(1e-6)

    def test_mbu(self):
        fault = fault_from_dict(
            {"kind": "mbu", "targets": ["a", "b"], "time": 1e-6})
        assert isinstance(fault, MultipleBitUpset)

    def test_set(self):
        fault = fault_from_dict(
            {"kind": "set", "target": "w", "time": "1us", "width": "2ns"})
        assert isinstance(fault, SETPulse)

    def test_stuck(self):
        fault = fault_from_dict(
            {"kind": "stuck", "target": "w", "value": "X"})
        assert isinstance(fault, StuckAt)

    def test_current_trapezoid(self):
        fault = fault_from_dict({
            "kind": "current", "node": "icp", "time": "40us",
            "pulse": {"pa": "10mA", "rt": "100ps", "ft": "300ps",
                      "pw": "500ps"},
        })
        assert isinstance(fault, CurrentInjection)
        assert fault.transient.peak() == pytest.approx(0.01)

    def test_current_double_exp(self):
        fault = fault_from_dict({
            "kind": "current", "node": "icp", "time": "40us",
            "pulse": {"i0": "14mA", "tau_r": "50ps", "tau_f": "300ps"},
        })
        assert isinstance(fault, CurrentInjection)

    def test_parametric(self):
        fault = fault_from_dict({
            "kind": "parametric", "component": "pll/vco",
            "attribute": "kvco", "factor": 1.2,
        })
        assert isinstance(fault, ParametricFault)

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            fault_from_dict({"kind": "gremlin"})

    def test_missing_key(self):
        with pytest.raises(ReproError):
            fault_from_dict({"kind": "bitflip", "target": "x"})

    def test_load_faults_file(self, fault_file):
        faults = load_faults(fault_file)
        assert len(faults) == 2

    def test_load_faults_not_a_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ReproError):
            load_faults(str(path))


class TestCommands:
    def test_types(self, capsys):
        assert main(["types"]) == 0
        out = capsys.readouterr().out
        assert "PLL" in out and "Counter" in out

    def test_info(self, netlist_file, capsys):
        assert main(["info", netlist_file]) == 0
        out = capsys.readouterr().out
        assert "design   : dut" in out
        assert "counter: Counter" in out

    def test_simulate(self, netlist_file, capsys):
        assert main(["simulate", netlist_file, "--until", "200ns"]) == 0
        out = capsys.readouterr().out
        assert "simulated 0.2 us" in out
        assert "parity" in out

    def test_simulate_writes_vcd(self, netlist_file, tmp_path, capsys):
        vcd = str(tmp_path / "wave.vcd")
        assert main(["simulate", netlist_file, "--until", "100ns",
                     "--vcd", vcd]) == 0
        text = open(vcd).read()
        assert "$timescale" in text

    def test_campaign(self, netlist_file, fault_file, tmp_path, capsys):
        csv_path = str(tmp_path / "runs.csv")
        code = main(["campaign", netlist_file, fault_file,
                     "--until", "300ns", "--csv", csv_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "classification summary" in out
        assert len(open(csv_path).read().splitlines()) == 3

    def test_campaign_fail_on_error(self, netlist_file, fault_file):
        code = main(["campaign", netlist_file, fault_file,
                     "--until", "300ns", "--fail-on-error"])
        assert code == 1  # the counter flip is an error

    def test_missing_file_is_error_exit(self):
        assert main(["info", "/nonexistent/x.json"]) == 2

    def test_campaign_event_budget_times_out_runs(
        self, netlist_file, fault_file, tmp_path, capsys
    ):
        """A starved event budget quarantines every fault: exit 3."""
        db = str(tmp_path / "camp.db")
        code = main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--event-budget", "10",
                     "--retries", "0", "--store", db])
        assert code == 3
        err = capsys.readouterr().err
        assert "[timeout]" in err
        assert "--retry-quarantined" in err

    def test_campaign_retry_quarantined_resume(
        self, netlist_file, fault_file, tmp_path, capsys
    ):
        db = str(tmp_path / "camp.db")
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--event-budget", "10",
                     "--retries", "0", "--store", db]) == 3
        # Plain resume skips the quarantined faults: still exit 3.
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--resume", db]) == 3
        # Lifting the budget and retrying quarantined faults completes.
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--resume", db,
                     "--retry-quarantined"]) == 0
        out = capsys.readouterr().out
        assert "classification summary" in out

    def test_campaign_timeout_flag_parses_quantities(
        self, netlist_file, fault_file
    ):
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--timeout", "30s",
                     "--retries", "1"]) == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBatchFlag:
    def parse(self, *extra):
        return build_parser().parse_args(
            ["campaign", "run", "design.json", "faults.json", *extra]
        )

    def test_default_is_off(self):
        assert self.parse().batch == "off"

    def test_bare_flag_means_auto(self):
        assert self.parse("--batch").batch == "auto"

    def test_explicit_modes(self):
        for mode in ("auto", "analog", "digital", "off"):
            assert self.parse("--batch", mode).batch == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            self.parse("--batch", "turbo")

    def test_no_batch_alias(self):
        assert self.parse("--batch", "--no-batch").batch == "off"

    def test_campaign_runs_batched(self, netlist_file, fault_file, capsys):
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--batch", "digital"]) == 0
        out = capsys.readouterr().out
        assert "batch mode" in out


class TestTextNetlistSupport:
    def test_rcir_file_accepted(self, tmp_path, capsys):
        deck = (
            "design textdut\n"
            "dt 1ns\n"
            "signal clk init=0\n"
            "bus cnt width=4 init=0\n"
            "ck ClockGen out=clk period=10ns\n"
            "counter Counter clk=clk q=cnt\n"
            "probe cnt\n"
        )
        path = tmp_path / "design.rcir"
        path.write_text(deck)
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "textdut" in out
        assert main(["simulate", str(path), "--until", "100ns"]) == 0


class TestProgressLine:
    def fault(self):
        return BitFlip("dut/counter.q[0]", 35e-9)

    def test_total_zero_renders_placeholders(self):
        import io

        from repro.cli import ProgressLine

        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line(0, 0, self.fault())  # must not raise ZeroDivisionError
        text = stream.getvalue()
        assert "inf" not in text
        assert "nan" not in text
        assert "-" in text  # percent placeholder

    def test_first_callback_has_no_rate_estimate(self):
        import io

        from repro.cli import ProgressLine

        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line(0, 10, self.fault())
        text = stream.getvalue()
        assert "?s" in text  # unknown ETA, not inf
        assert "0%" in text

    def test_rate_and_eta_appear_once_runs_complete(self):
        import io

        from repro.cli import ProgressLine

        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line.t_start -= 10.0  # pretend 10 s have elapsed
        line(5, 10, self.fault())
        text = stream.getvalue()
        assert "runs/s" in text
        assert "?s" not in text
        assert " 50%" in text

    def test_finish_is_idempotent(self):
        import io

        from repro.cli import ProgressLine

        stream = io.StringIO()
        line = ProgressLine(stream=stream)
        line(0, 2, self.fault())
        line.finish()
        line.finish()
        assert stream.getvalue().count("\n") == 1


class TestTelemetryFlags:
    def test_journal_flag_writes_parseable_journal(
        self, netlist_file, fault_file, tmp_path, capsys
    ):
        from repro.obs.journal import read_journal

        journal = str(tmp_path / "campaign.jsonl")
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--journal", journal]) == 0
        events = list(read_journal(journal))
        names = [e["event"] for e in events]
        assert names[0] == "campaign_started"
        assert names[-1] == "campaign_finished"
        assert "run_finished" in names
        assert f"wrote {journal}" in capsys.readouterr().err

    def test_postmortem_dir_flag_dumps_failed_runs(
        self, netlist_file, fault_file, tmp_path, capsys
    ):
        pm_dir = tmp_path / "pm"
        # A starved event budget forces every run to time out.
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--event-budget", "10",
                     "--retries", "0",
                     "--postmortem-dir", str(pm_dir)]) == 3
        dumps = sorted(pm_dir.glob("fault_*.postmortem.json"))
        assert dumps
        payload = json.loads(dumps[0].read_text())
        assert payload["status"] == "timeout"

    def test_watch_once_renders_store_state(
        self, netlist_file, fault_file, tmp_path, capsys
    ):
        db = str(tmp_path / "camp.db")
        journal = str(tmp_path / "campaign.jsonl")
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--store", db,
                     "--journal", journal]) == 0
        capsys.readouterr()
        assert main(["campaign", "watch", db, "--once"]) == 0
        out = capsys.readouterr().out
        assert "campaign watch @" in out
        assert "dut-campaign" in out or "2/2" in out
        assert "rate:" in out
        assert "last event: campaign_finished" in out

    def test_watch_once_without_journal_polls_store(
        self, netlist_file, fault_file, tmp_path, capsys
    ):
        db = str(tmp_path / "camp.db")
        assert main(["campaign", "run", netlist_file, fault_file,
                     "--until", "300ns", "--store", db]) == 0
        capsys.readouterr()
        assert main(["campaign", "watch", db, "--once"]) == 0
        out = capsys.readouterr().out
        assert "no journal recorded; polling store only" in out

    def test_watch_empty_store(self, tmp_path, capsys):
        from repro.store import CampaignStore

        db = str(tmp_path / "empty.db")
        with CampaignStore(db):
            pass
        assert main(["campaign", "watch", db, "--once"]) == 0
        assert "no campaigns recorded yet" in capsys.readouterr().out
