"""Tests for the .rcir text netlist format."""

import pytest

from repro.core.errors import NetlistError
from repro.netlist import elaborate
from repro.netlist.textformat import (
    dumps_text,
    load_text_file,
    loads_text,
    save_text_file,
)

DECK = """
# the counter demo in text form
design demo
dt 1ns

signal clk init=0
signal parity
current icp
bus cnt width=4 init=0

ck      ClockGen  out=clk period=10ns
counter Counter   clk=clk q=cnt
par     ParityGen a=cnt parity=parity

probe cnt
output parity
"""


class TestParsing:
    def test_basic_deck(self):
        nl = loads_text(DECK)
        assert nl.name == "demo"
        assert nl.dt == pytest.approx(1e-9)
        assert [s.name for s in nl.signals] == ["clk", "parity"]
        assert nl.nodes[0].kind == "current"
        assert nl.buses[0].width == 4
        assert len(nl.instances) == 3

    def test_outputs_implicitly_probed(self):
        nl = loads_text(DECK)
        assert "parity" in nl.probes

    def test_engineering_params(self):
        nl = loads_text(DECK)
        ck = nl.find_instance("ck")
        assert ck.params["period"] == pytest.approx(10e-9)

    def test_ports_vs_params_split(self):
        nl = loads_text(DECK)
        counter = nl.find_instance("counter")
        assert counter.ports == {"clk": "clk", "q": "cnt"}
        assert counter.params == {}

    def test_comments_and_blanks_ignored(self):
        nl = loads_text("design d\n\n# nothing\nsignal a  # trailing\n")
        assert nl.signals[0].name == "a"

    def test_missing_design_line(self):
        with pytest.raises(NetlistError):
            loads_text("signal a\n")

    def test_duplicate_design_line(self):
        with pytest.raises(NetlistError):
            loads_text("design a\ndesign b\n")

    def test_unknown_type_reported(self):
        with pytest.raises(NetlistError):
            loads_text("design d\nx FluxCapacitor a=b\n")

    def test_malformed_kv(self):
        with pytest.raises(NetlistError):
            loads_text("design d\nsignal a init\n")

    def test_bus_needs_width(self):
        with pytest.raises(NetlistError):
            loads_text("design d\nbus b init=0\n")

    def test_undeclared_net_caught_by_validation(self):
        with pytest.raises(NetlistError):
            loads_text("design d\nck ClockGen out=ghost period=1e-8\n")


class TestRoundTrip:
    def test_parse_dump_parse(self):
        nl = loads_text(DECK)
        again = loads_text(dumps_text(nl))
        assert again.to_dict() == nl.to_dict()

    def test_file_roundtrip(self, tmp_path):
        nl = loads_text(DECK)
        path = tmp_path / "demo.rcir"
        save_text_file(nl, path)
        again = load_text_file(path)
        assert again.to_dict() == nl.to_dict()


class TestElaboration:
    def test_text_deck_simulates(self):
        design = elaborate(loads_text(DECK))
        design.sim.run(105e-9)
        assert design.extras["cnt"].to_int() == 11

    def test_mixed_signal_deck(self):
        deck = """
design mixed
dt 1ns
node vin
signal dig
src  SineVoltage node=vin amplitude=2.5 freq=1MHz offset=2.5
comp Digitizer   inp=vin out=dig
probe dig
"""
        design = elaborate(loads_text(deck))
        design.sim.run(3.5e-6)
        # sin starts at the threshold, so the output begins high; the
        # next rising crossings land at 1, 2 and 3 us.
        assert len(design.probes["dig"].edges("rise")) == 3
