"""Elaboration coverage for every registered component type."""

import pytest

from repro.core import L0, L1
from repro.netlist import Netlist, elaborate, known_types


def elaborate_dict(data):
    return elaborate(Netlist.from_dict(data))


class TestGateBuilders:
    @pytest.mark.parametrize("gate_type,expected", [
        ("AndGate", "0"), ("OrGate", "1"), ("XorGate", "1"),
        ("NandGate", "1"), ("NorGate", "0"),
    ])
    def test_two_input_gates(self, gate_type, expected):
        design = elaborate_dict({
            "name": "g",
            "signals": [
                {"name": "a", "init": "1"},
                {"name": "b", "init": "0"},
                {"name": "y"},
            ],
            "instances": [
                {"type": gate_type, "name": "gate",
                 "ports": {"in0": "a", "in1": "b", "y": "y"}},
            ],
            "probes": ["y"],
        })
        design.sim.run(1e-9)
        assert str(design.extras["y"].value) == expected

    def test_not_and_buf(self):
        design = elaborate_dict({
            "name": "g",
            "signals": [{"name": "a", "init": "0"},
                        {"name": "n"}, {"name": "b"}],
            "instances": [
                {"type": "NotGate", "name": "inv",
                 "ports": {"a": "a", "y": "n"}},
                {"type": "BufGate", "name": "buf",
                 "ports": {"a": "n", "y": "b"}},
            ],
        })
        design.sim.run(1e-9)
        assert design.extras["b"].value is L1

    def test_mux2(self):
        design = elaborate_dict({
            "name": "g",
            "signals": [{"name": "a", "init": "1"}, {"name": "b", "init": "0"},
                        {"name": "sel", "init": "1"}, {"name": "y"}],
            "instances": [
                {"type": "Mux2", "name": "mux",
                 "ports": {"a": "a", "b": "b", "sel": "sel", "y": "y"}},
            ],
        })
        design.sim.run(1e-9)
        assert design.extras["y"].value is L0

    def test_gate_without_inputs_rejected(self):
        from repro.core.errors import NetlistError

        with pytest.raises(NetlistError):
            elaborate_dict({
                "name": "g",
                "signals": [{"name": "y"}],
                "instances": [
                    {"type": "AndGate", "name": "gate", "ports": {"y": "y"}},
                ],
            })


class TestWordBuilders:
    def test_adder(self):
        design = elaborate_dict({
            "name": "w",
            "buses": [
                {"name": "a", "width": 4, "init": 3},
                {"name": "b", "width": 4, "init": 4},
                {"name": "s", "width": 4},
            ],
            "instances": [
                {"type": "Adder", "name": "add",
                 "ports": {"a": "a", "b": "b", "s": "s"}},
            ],
        })
        design.sim.run(1e-9)
        assert design.extras["s"].to_int() == 7

    def test_comparator(self):
        design = elaborate_dict({
            "name": "w",
            "signals": [{"name": "eq"}],
            "buses": [
                {"name": "a", "width": 4, "init": 5},
                {"name": "b", "width": 4, "init": 5},
            ],
            "instances": [
                {"type": "Comparator", "name": "cmp",
                 "ports": {"a": "a", "b": "b", "eq": "eq"}},
            ],
        })
        design.sim.run(1e-9)
        assert design.extras["eq"].value is L1

    def test_dff_register_shiftreg_lfsr(self):
        design = elaborate_dict({
            "name": "w",
            "signals": [
                {"name": "clk", "init": "0"},
                {"name": "d", "init": "1"},
                {"name": "q"},
                {"name": "sin", "init": "1"},
            ],
            "buses": [
                {"name": "rd", "width": 2, "init": 2},
                {"name": "rq", "width": 2},
                {"name": "sq", "width": 4},
                {"name": "lq", "width": 8},
            ],
            "instances": [
                {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
                 "params": {"period": 1e-8}},
                {"type": "DFF", "name": "ff",
                 "ports": {"d": "d", "clk": "clk", "q": "q"}},
                {"type": "Register", "name": "reg",
                 "ports": {"d": "rd", "clk": "clk", "q": "rq"}},
                {"type": "ShiftRegister", "name": "sr",
                 "ports": {"clk": "clk", "serial_in": "sin", "q": "sq"}},
                {"type": "LFSR", "name": "lfsr",
                 "ports": {"clk": "clk", "q": "lq"}},
            ],
        })
        design.sim.run(25e-9)
        assert design.extras["q"].value is L1
        assert design.extras["rq"].to_int() == 2
        assert design.extras["sq"].to_int() == 7
        assert design.extras["lq"].to_int() != 1


class TestAnalogAndAmsBuilders:
    def test_sources_and_digitizer(self):
        design = elaborate_dict({
            "name": "a",
            "signals": [{"name": "dig"}],
            "nodes": [{"name": "vs"}, {"name": "vp"},
                      {"name": "ic", "kind": "current"}],
            "instances": [
                {"type": "SineVoltage", "name": "sine",
                 "ports": {"node": "vs"},
                 "params": {"amplitude": 2.5, "freq": 1e6, "offset": 2.5}},
                {"type": "PulseVoltage", "name": "pulse",
                 "ports": {"node": "vp"},
                 "params": {"v1": 0.0, "v2": 5.0, "delay": 1e-7,
                            "rise": 1e-9, "fall": 1e-9, "width": 1e-7}},
                {"type": "DCCurrent", "name": "idc",
                 "ports": {"node": "ic"}, "params": {"amps": 1e-3}},
                {"type": "Digitizer", "name": "dig0",
                 "ports": {"inp": "vs", "out": "dig"}},
            ],
            "probes": ["dig"],
        })
        design.sim.run(2e-6)
        assert len(design.probes["dig"].edges("rise")) >= 1

    def test_analog_comparator(self):
        design = elaborate_dict({
            "name": "a",
            "nodes": [{"name": "p"}, {"name": "m"}, {"name": "o"}],
            "instances": [
                {"type": "DCVoltage", "name": "sp", "ports": {"node": "p"},
                 "params": {"volts": 3.0}},
                {"type": "DCVoltage", "name": "sm", "ports": {"node": "m"},
                 "params": {"volts": 2.0}},
                {"type": "AnalogComparator", "name": "cmp",
                 "ports": {"plus": "p", "minus": "m", "out": "o"}},
            ],
        })
        design.sim.run(5e-9)
        assert design.extras["o"].v == 5.0

    def test_adcs_and_load(self):
        design = elaborate_dict({
            "name": "a",
            "dt": 1e-8,
            "signals": [{"name": "clk", "init": "0"}],
            "nodes": [{"name": "vin"}],
            "instances": [
                {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
                 "params": {"period": 1e-6}},
                {"type": "DCVoltage", "name": "src", "ports": {"node": "vin"},
                 "params": {"volts": 2.0}},
                {"type": "FlashADC", "name": "flash",
                 "ports": {"clk": "clk", "vin": "vin"},
                 "params": {"bits": 4}},
                {"type": "SARADC", "name": "sar",
                 "ports": {"clk": "clk", "vin": "vin"},
                 "params": {"bits": 4}},
                {"type": "DigitalLoad", "name": "load",
                 "ports": {"clk": "clk"}},
            ],
        })
        design.sim.run(12e-6)
        flash = design.extras["flash"]
        sar = design.extras["sar"]
        assert flash.output.to_int() == flash.ideal_code(2.0)
        assert sar.output.to_int() == sar.ideal_code(2.0)

    def test_gencur_saboteur(self):
        design = elaborate_dict({
            "name": "a",
            "signals": [{"name": "inj", "init": "0"}],
            "nodes": [{"name": "ic", "kind": "current"}],
            "instances": [
                {"type": "PulseGen", "name": "ctl", "ports": {"out": "inj"},
                 "params": {"start": 1e-8, "width": 1e-8}},
                {"type": "ControlledCurrentSaboteur", "name": "gencur",
                 "ports": {"inj": "inj", "out_cur": "ic"},
                 "params": {"rt": 1e-9, "ft": 1e-9, "pa": 0.01}},
            ],
        })
        trace = design.sim.probe_current(design.extras["ic"])
        design.sim.run(5e-8)
        assert trace.maximum() == pytest.approx(0.01, rel=0.05)


class TestHardenedBuilders:
    def test_tmr_register_from_netlist(self):
        design = elaborate_dict({
            "name": "h",
            "signals": [{"name": "clk", "init": "0"}],
            "buses": [
                {"name": "d", "width": 4, "init": 9},
                {"name": "q", "width": 4},
            ],
            "instances": [
                {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
                 "params": {"period": 1e-8}},
                {"type": "TMRRegister", "name": "reg",
                 "ports": {"d": "d", "clk": "clk", "q": "q"}},
            ],
        })
        design.sim.run(3e-9)
        assert design.extras["q"].to_int() == 9

    def test_hamming_register_from_netlist(self):
        design = elaborate_dict({
            "name": "h",
            "signals": [{"name": "clk", "init": "0"},
                        {"name": "corr"}],
            "buses": [
                {"name": "d", "width": 8, "init": 0x5A},
                {"name": "q", "width": 8},
            ],
            "instances": [
                {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
                 "params": {"period": 1e-8}},
                {"type": "HammingProtectedRegister", "name": "reg",
                 "ports": {"d": "d", "clk": "clk", "q": "q",
                           "corrected": "corr"}},
            ],
        })
        design.sim.run(3e-9)
        assert design.extras["q"].to_int() == 0x5A

    def test_all_registered_types_have_directions(self):
        from repro.netlist import lookup

        for type_name in known_types():
            entry = lookup(type_name)
            assert isinstance(entry.inputs, tuple)
            assert isinstance(entry.outputs, tuple)
