"""Tests for netlist schema, elaboration and instrumentation transforms."""

import pytest

from repro.core.errors import NetlistError
from repro.netlist import (
    Netlist,
    attach_current_saboteur,
    dumps,
    elaborate,
    insert_digital_saboteur,
    instrument_all_current_nodes,
    instrument_all_digital_nets,
    known_types,
    loads,
    lookup,
)


def counter_netlist():
    return Netlist.from_dict({
        "name": "demo",
        "dt": "1ns",
        "signals": [
            {"name": "clk", "init": "0"},
            {"name": "div", "init": "0"},
        ],
        "nodes": [{"name": "icp", "kind": "current"}],
        "buses": [{"name": "cnt", "width": 4, "init": 0}],
        "instances": [
            {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
             "params": {"period": 1e-8}},
            {"type": "Counter", "name": "counter",
             "ports": {"clk": "clk", "q": "cnt"}},
            {"type": "ClockDivider", "name": "div2",
             "ports": {"clk_in": "clk", "clk_out": "div"},
             "params": {"n": 2}},
        ],
        "probes": ["cnt", "div"],
        "outputs": ["div"],
    })


class TestSchema:
    def test_valid_netlist(self):
        nl = counter_netlist()
        assert nl.name == "demo"
        assert set(nl.net_names()) == {"clk", "div", "icp", "cnt"}

    def test_duplicate_net_rejected(self):
        data = counter_netlist().to_dict()
        data["signals"].append({"name": "clk"})
        with pytest.raises(NetlistError):
            Netlist.from_dict(data)

    def test_unknown_port_net_rejected(self):
        data = counter_netlist().to_dict()
        data["instances"][0]["ports"]["out"] = "ghost"
        with pytest.raises(NetlistError):
            Netlist.from_dict(data)

    def test_undeclared_probe_caught_at_elaboration(self):
        # Probes may name nets that assemblies create during
        # elaboration, so the schema admits them; a name that never
        # materialises is rejected when the design goes live.
        data = counter_netlist().to_dict()
        data["probes"].append("ghost")
        netlist = Netlist.from_dict(data)  # accepted at schema level
        with pytest.raises(NetlistError):
            elaborate(netlist)

    def test_output_must_be_probed(self):
        data = counter_netlist().to_dict()
        data["outputs"] = ["clk"]
        with pytest.raises(NetlistError):
            Netlist.from_dict(data)

    def test_bad_node_kind(self):
        data = counter_netlist().to_dict()
        data["nodes"][0]["kind"] = "fluid"
        with pytest.raises(NetlistError):
            Netlist.from_dict(data)

    def test_roundtrip_json(self):
        nl = counter_netlist()
        again = loads(dumps(nl))
        assert again.to_dict() == nl.to_dict()

    def test_copy_is_independent(self):
        nl = counter_netlist()
        clone = nl.copy()
        clone.signals[0].name = "other"
        assert nl.signals[0].name == "clk"

    def test_malformed_json(self):
        with pytest.raises(NetlistError):
            loads("{not json")

    def test_find_helpers(self):
        nl = counter_netlist()
        assert nl.find_instance("counter").type == "Counter"
        with pytest.raises(NetlistError):
            nl.find_instance("ghost")
        with pytest.raises(NetlistError):
            nl.find_signal("icp")  # a node, not a signal


class TestRegistry:
    def test_known_types_nonempty(self):
        types = known_types()
        assert "PLL" in types and "Counter" in types

    def test_unknown_type(self):
        with pytest.raises(NetlistError):
            lookup("FluxCapacitor")

    def test_port_directions_recorded(self):
        entry = lookup("Counter")
        assert "clk" in entry.inputs
        assert "q" in entry.outputs


class TestElaboration:
    def test_simulates(self):
        design = elaborate(counter_netlist())
        design.sim.run(105e-9)
        assert design.extras["cnt"].to_int() == 11

    def test_bus_probes_expand_per_bit(self):
        design = elaborate(counter_netlist())
        assert "cnt[0]" in design.probes
        assert "div" in design.probes

    def test_bad_params_reported(self):
        data = counter_netlist().to_dict()
        data["instances"][0]["params"] = {"bogus_param": 1}
        with pytest.raises(NetlistError):
            elaborate(Netlist.from_dict(data))

    def test_dt_override(self):
        design = elaborate(counter_netlist(), dt="5ns")
        assert design.sim.analog.dt_nominal == pytest.approx(5e-9)


class TestTransforms:
    def test_insert_digital_saboteur(self):
        nl, sab_name, new_net = insert_digital_saboteur(
            counter_netlist(), "clk")
        assert new_net == "clk__sab"
        # readers rewired, driver untouched
        assert nl.find_instance("counter").ports["clk"] == new_net
        assert nl.find_instance("ck").ports["out"] == "clk"
        assert nl.find_instance(sab_name).type == "DigitalSaboteur"

    def test_original_netlist_untouched(self):
        nl = counter_netlist()
        insert_digital_saboteur(nl, "clk")
        assert "clk__sab" not in nl.net_names()

    def test_saboteur_gates_readers(self):
        nl, sab_name, _net = insert_digital_saboteur(counter_netlist(), "clk")
        design = elaborate(nl)
        design.extras[sab_name].stick("0", 0.0, None)
        design.sim.run(100e-9)
        assert design.extras["cnt"].to_int() == 0

    def test_net_without_readers_rejected(self):
        nl = counter_netlist()
        with pytest.raises(NetlistError):
            insert_digital_saboteur(nl, "div")  # div has no reader ports

    def test_attach_current_saboteur(self):
        nl, sab_name = attach_current_saboteur(counter_netlist(), "icp")
        design = elaborate(nl)
        assert sab_name in design.extras

    def test_attach_to_voltage_node_rejected(self):
        data = counter_netlist().to_dict()
        data["nodes"].append({"name": "vx", "kind": "voltage"})
        nl = Netlist.from_dict(data)
        with pytest.raises(NetlistError):
            attach_current_saboteur(nl, "vx")

    def test_instrument_all_digital(self):
        nl, placed = instrument_all_digital_nets(counter_netlist())
        assert "clk" in placed
        assert "div" not in placed  # no readers
        elaborate(nl)  # still elaborates

    def test_instrument_all_current(self):
        nl, placed = instrument_all_current_nodes(counter_netlist())
        assert list(placed) == ["icp"]

    def test_double_insertion_gets_unique_names(self):
        nl, _s, _n = insert_digital_saboteur(counter_netlist(), "clk")
        with pytest.raises(NetlistError):
            insert_digital_saboteur(nl, "clk")  # clk__sab exists now


class TestInternalNetProbes:
    def test_assembly_internal_node_probed(self):
        """Probes can name nets assemblies create at elaboration —
        e.g. the PLL's charge-pump node, the paper's injection target."""
        nl = Netlist.from_dict({
            "name": "top",
            "dt": "1ns",
            "instances": [
                {"type": "PLL", "name": "pll",
                 "params": {"f_ref": "5MHz", "n_div": 10, "c1": "162pF",
                            "c2": "16pF", "preset_locked": True}},
            ],
            "probes": ["top/pll.vctrl", "top/pll.fout"],
            "outputs": ["top/pll.fout"],
        })
        design = elaborate(nl)
        design.sim.run(2e-6)
        assert "top/pll.vctrl" in design.probes
        assert len(design.probes["top/pll.fout"]) > 10
