"""Figure 5: the behavioural PLL model and its operating point.

Reproduced series: the hierarchy of Figure 5, lock acquisition from a
cold start, and the paper's numbers — 500 kHz input frequency and a
20 ns (50 MHz) generated clock period.
"""

import numpy as np
import pytest

from repro import Simulator
from repro.analysis import clock_periods, is_locked, lock_time, mean_frequency

from conftest import banner, fast_pll, once, paper_pll


def acquire_fast():
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=False)
    vco = sim.probe(pll.vco_out)
    sim.run(60e-6)
    return pll, vco


def hold_paper_scale():
    sim = Simulator(dt=1e-9)
    pll = paper_pll(sim, preset_locked=True)
    vco = sim.probe(pll.vco_out)
    sim.run(60e-6)
    return pll, vco


def test_fig5_lock_acquisition(benchmark):
    pll, vco = once(benchmark, acquire_fast)
    t_lock = lock_time(vco, pll.t_out_nominal, tol_frac=0.01,
                       consecutive=20)
    f_final = mean_frequency(vco, 2.5, t0=50e-6)

    banner("Figure 5 reproduction — lock acquisition (fast-scaled loop)")
    print(f"hierarchy: {', '.join(c.name for c in pll.children)}")
    print(f"lock acquired at        : {t_lock * 1e6:.2f} us")
    print(f"final output frequency  : {f_final / 1e6:.3f} MHz "
          f"(target {pll.f_out_nominal / 1e6:.0f} MHz)")

    assert is_locked(vco.segment(45e-6, None), pll.t_out_nominal,
                     tol_frac=0.01)
    assert f_final == pytest.approx(pll.f_out_nominal, rel=5e-3)


def test_fig5_paper_operating_point(benchmark):
    pll, vco = once(benchmark, hold_paper_scale)
    seg = vco.segment(20e-6, None)
    _edges, periods = clock_periods(seg, 2.5)

    banner("Figure 5 reproduction — the paper's operating point")
    print(f"input frequency  : {pll.f_ref / 1e3:.0f} kHz (paper: 500 kHz)")
    print(f"divider          : /{pll.n_div} (paper: /100)")
    print(f"clock period     : {np.mean(periods) * 1e9:.3f} ns "
          "(paper: 20 ns)")
    print(f"period jitter    : {np.std(periods) * 1e12:.1f} ps rms "
          "(solver quantisation)")

    assert pll.f_ref == pytest.approx(500e3)
    assert np.mean(periods) == pytest.approx(20e-9, rel=2e-3)
