"""Figure 7: double-exponential vs proposed model, same injection.

The paper injects the same charge at the same instant with (a) the
double-exponential model and (b) the proposed trapezoid, and finds the
VCO-input responses "very similar, although the numeric values are
slightly different".

Reproduced series: peak control-voltage deviation, recovery time and
the RMS difference between the two responses.
"""

import numpy as np
import pytest

from repro import CurrentPulseSaboteur, Simulator
from repro.analysis import peak_deviation, settling_time
from repro.faults import DoubleExponentialPulse, fit_trapezoid

from conftest import banner, fast_pll, once

T_INJ = 20e-6
T_END = 45e-6


def run_pair():
    dexp = DoubleExponentialPulse.from_peak("10mA", "50ps", "300ps")
    trap = fit_trapezoid(dexp, method="charge")
    traces = {}
    for label, transient in (("double-exp", dexp), ("trapezoid", trap)):
        sim = Simulator(dt=1e-9)
        pll = fast_pll(sim, preset_locked=True)
        saboteur = CurrentPulseSaboteur(sim, "sab", pll.icp)
        saboteur.schedule(transient, T_INJ)
        vctrl = sim.probe(pll.vctrl)
        sim.run(T_END)
        traces[label] = (pll, vctrl)
    return dexp, trap, traces


def test_fig7_model_comparison(benchmark):
    dexp, trap, traces = once(benchmark, run_pair)

    banner("Figure 7 reproduction — same injection, two pulse models")
    rows = {}
    for label, (pll, vctrl) in traces.items():
        peak = peak_deviation(vctrl, pll.vctrl_locked, t0=T_INJ,
                              t1=T_INJ + 3e-6)
        settle = settling_time(vctrl, pll.vctrl_locked, tol=0.01,
                               t_from=T_INJ)
        rows[label] = (peak, settle)
        print(f"{label:10s}: peak deviation {peak * 1e3:7.2f} mV, "
              f"recovery to ±10 mV in {settle * 1e6:6.2f} us")

    grid = np.linspace(T_INJ, T_END - 1e-6, 4000)
    va = traces["double-exp"][1].resample(grid)
    vb = traces["trapezoid"][1].resample(grid)
    rms = float(np.sqrt(np.mean((va - vb) ** 2)))
    amplitude = rows["double-exp"][0]
    print(f"RMS response difference: {rms * 1e3:.3f} mV "
          f"({rms / amplitude:.1%} of the disturbance)")

    # "Very similar": peaks within 10%, recovery within 20%, waveform
    # RMS difference a few percent of the disturbance amplitude.
    peak_a, settle_a = rows["double-exp"]
    peak_b, settle_b = rows["trapezoid"]
    assert peak_b == pytest.approx(peak_a, rel=0.10)
    assert settle_b == pytest.approx(settle_a, rel=0.20)
    assert rms / amplitude < 0.05
    # "Slightly different numeric values": not bit-identical.
    assert rms > 0.0
