"""Cold-start versus warm-start campaign execution.

The paper's flow re-simulates the whole design for every fault; for
the PLL that means replaying an identical locked preamble hundreds of
times.  Warm start checkpoints the single golden run just before each
injection time and restores, so each faulty run only simulates its own
suffix.  This bench runs the same after-lock injection campaign both
ways and reports wall-clock, kernel events and the (required)
bit-identical classifications, emitting the measurements as JSON for
machine consumption.

Reproduced claim: warm start executes >= 2x fewer kernel events than
cold start on an after-lock PLL campaign, with identical results.
"""

import json
import time

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    analog_injections,
    run_campaign,
    to_csv,
)
from repro.faults import TrapezoidPulse

from conftest import banner, fast_pll, once, write_bench_json

T_END = 8e-6
#: Injection times after the (preset) lock point, spread over the
#: second half of the window — the paper's Figure 6 scenario, swept.
INJECTION_TIMES = [6.0e-6, 6.4e-6, 6.8e-6, 7.2e-6]
AMPLITUDES = [2e-3, 10e-3]


def pll_factory():
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=True)
    probes = {
        "vctrl": sim.probe(pll.vctrl),
        "fout": sim.probe(pll.vco_out, min_interval=0.0),
    }
    return Design(sim=sim, root=pll, probes=probes)


def make_spec():
    pulses = [
        TrapezoidPulse(rt=100e-12, ft=300e-12, pw=500e-12, pa=pa)
        for pa in AMPLITUDES
    ]
    return CampaignSpec(
        name="pll-checkpoint",
        faults=analog_injections(["pll.icp"], INJECTION_TIMES, pulses),
        t_end=T_END,
        outputs=["vctrl"],
        analog_tolerance=0.02,
    )


def run_both():
    spec = make_spec()
    t0 = time.perf_counter()
    cold = run_campaign(pll_factory, spec)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_campaign(pll_factory, spec, warm_start=True)
    t_warm = time.perf_counter() - t0
    return cold, t_cold, warm, t_warm


def test_checkpoint_campaign(benchmark):
    cold, t_cold, warm, t_warm = once(benchmark, run_both)

    event_ratio = (
        cold.execution["kernel_events"] / warm.execution["kernel_events"]
    )
    measurements = {
        "faults": len(cold),
        "t_end_s": T_END,
        "cold": {
            "wall_s": round(t_cold, 4),
            "kernel_events": cold.execution["kernel_events"],
            "golden_events": cold.execution["golden_events"],
            "fault_events": cold.execution["fault_events"],
        },
        "warm": {
            "wall_s": round(t_warm, 4),
            "kernel_events": warm.execution["kernel_events"],
            "golden_events": warm.execution["golden_events"],
            "fault_events": warm.execution["fault_events"],
            "checkpoints": warm.execution["checkpoints"],
        },
        "event_ratio": round(event_ratio, 3),
        "speedup": round(t_cold / t_warm, 3),
        "classifications": {
            "cold": [run.label for run in cold],
            "warm": [run.label for run in warm],
        },
    }

    banner("Checkpoint/warm-start campaign — after-lock PLL injections")
    print(json.dumps(measurements, indent=2))
    write_bench_json("BENCH_campaign_checkpoint.json", measurements)

    # Identical results: same CSV (fault, class, divergence times) and
    # bit-identical golden traces.
    assert to_csv(cold) == to_csv(warm)
    for name, golden in cold.golden_probes.items():
        assert golden._times == warm.golden_probes[name]._times
        assert golden._values == warm.golden_probes[name]._values
    # Not vacuous: the pulses really disturb the loop.
    assert any(run.label != "silent" for run in cold)
    # The headline claim: >= 2x fewer kernel events end to end.
    assert event_ratio >= 2.0
