"""Future work, Section 6: behavioural vs. structural model comparison.

"Comparisons between results obtained on behavioral models and results
obtained on lower level descriptions are also planned."

This bench runs the comparison on the PLL's feedback divider, modelled
two ways at the same ÷8 function:

* behavioural — the word-level :class:`ClockDivider` (one counter
  process, the abstraction used inside the Figure 5 PLL);
* structural — a ripple chain of three toggle flip-flops (the gate-
  level implementation a synthesiser would produce).

The same exhaustive SEU campaign (every state bit × several cycles)
runs against both, and the per-level classification tables are
compared: the behavioural model must neither hide errors the
structural model shows nor invent ones it doesn't — the refinement
property that lets the analysis start early and stay valid.
"""

import pytest

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    classification_summary,
    cycle_times,
    exhaustive_bitflips,
    run_campaign,
)
from repro.core import Component, L0
from repro.core.hierarchy import collect_state_signals
from repro.digital import ClockDivider, ClockGen, TFF

from conftest import banner, once

PERIOD = 10e-9
T_END = 640e-9


def behavioural_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    out = sim.signal("div_out", init=L0)
    ClockDivider(sim, "div", clk, out, n=8, parent=top)
    probes = {"div_out": sim.probe(out)}
    return Design(sim=sim, root=top, probes=probes)


def structural_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    q0 = sim.signal("q0")
    q1 = sim.signal("q1")
    out = sim.signal("div_out")
    TFF(sim, "t0", clk, q0, parent=top)
    TFF(sim, "t1", q0, q1, parent=top)
    TFF(sim, "t2", q1, out, parent=top)
    probes = {"div_out": sim.probe(out)}
    return Design(sim=sim, root=top, probes=probes)


def run_both():
    times = cycle_times(165e-9, PERIOD, 4, phase=0.5)
    results = {}
    for label, factory in (("behavioural", behavioural_factory),
                           ("structural", structural_factory)):
        targets = [n for n, _s in collect_state_signals(factory().root)]
        spec = CampaignSpec(
            name=f"divider-{label}",
            faults=exhaustive_bitflips(targets, times),
            t_end=T_END,
            outputs=["div_out"],
        )
        results[label] = run_campaign(factory, spec)
    return results


def test_multilevel_divider(benchmark):
    results = once(benchmark, run_both)

    banner("Future-work reproduction — behavioural vs structural ÷8 "
           "divider, same SEU campaign")
    for label, result in results.items():
        targets = len({r.fault.target for r in result})
        print(f"--- {label} model ({targets} state bits, "
              f"{len(result)} faults) ---")
        print(classification_summary(result))
        print()

    behavioural = results["behavioural"]
    structural = results["structural"]
    # Refinement property: both abstraction levels agree that every
    # state upset in the divider disturbs the divided clock (a phase
    # slip, observable as a shifted edge pattern), with a comparable
    # share of permanent phase shifts ("failure": the output never
    # re-aligns with the golden run).  The behavioural analysis made
    # early therefore predicts the structural-level outcome.
    assert behavioural.error_rate() == 1.0
    assert structural.error_rate() == 1.0
    assert behavioural.counts()["failure"] > 0
    assert structural.counts()["failure"] > 0
    frac_b = behavioural.counts()["failure"] / len(behavioural)
    frac_s = structural.counts()["failure"] / len(structural)
    assert frac_b == pytest.approx(frac_s, abs=0.25)
