"""Critical charge per node — the particle-sensitivity map.

Quantifies the Figure 8 discussion ("identify the type of particles
the circuit will be sensitive to"): for each analog injection node the
bisection of :mod:`repro.analysis.qcrit` finds the smallest deposited
charge that produces an observable error.  Nodes are then directly
comparable in the units the radiation environment is specified in.
"""

import pytest

from repro import Simulator
from repro.ams import FlashADC
from repro.ams.dll import DLL
from repro.analog import DCVoltage
from repro.analysis import analyze_perturbation, find_critical_charge
from repro.core import L0
from repro.digital import ClockGen
from repro.faults import TrapezoidPulse
from repro.injection import CurrentPulseSaboteur

from conftest import banner, fast_pll, once

REF_PULSE = TrapezoidPulse("1mA", "100ps", "300ps", "500ps")
T_INJ = 12e-6


def pll_errored(pulse):
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=True)
    sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
    sab.schedule(pulse, T_INJ)
    vco = sim.probe(pll.vco_out)
    sim.run(18e-6)
    report = analyze_perturbation(
        vco.segment(8e-6, None), T_INJ, pulse.pw, pll.t_out_nominal,
        tol_frac=0.003,
    )
    return report.perturbed_cycles > 2


def dll_errored(pulse):
    sim = Simulator(dt=1e-9)
    dll = DLL(sim, "dll")
    sab = CurrentPulseSaboteur(sim, "sab", dll.icp)
    sim.run(T_INJ)  # acquire first-order lock
    sab.schedule(pulse, T_INJ + 1e-6)
    delayed = sim.probe(dll.delayed)
    sim.run(T_INJ + 6e-6)
    report = analyze_perturbation(
        delayed, T_INJ + 1e-6, pulse.pw, dll.t_ref,
        tol_frac=0.05, threshold=0.5,
    )
    return report.perturbed_cycles >= 1


def adc_errored(pulse):
    sim = Simulator(dt=10e-9)
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=1e-6)
    vin = sim.node("vin")
    DCVoltage(sim, "src", vin, 2.34)  # mid-code DC input
    adc = FlashADC(sim, "adc", clk, vin, bits=4)
    sab = CurrentPulseSaboteur(sim, "sab", adc.held)
    sab.schedule(pulse, 5.6e-6)  # hold phase
    sim.run(7e-6)
    return adc.output.to_int() != adc.ideal_code(2.34)


def run_search():
    results = {}
    for label, errored, q_hi in (
        ("pll.icp", pll_errored, 6e-12),
        ("dll.icp", dll_errored, 6e-12),
        ("adc.held (4-bit flash)", adc_errored, 6e-13),
    ):
        results[label] = find_critical_charge(
            errored, REF_PULSE, q_lo=2e-16, q_hi=q_hi,
            rel_tol=0.2, max_evaluations=14,
        )
    return results


def test_qcrit_per_node(benchmark):
    results = once(benchmark, run_search)

    banner("Critical charge per injection node")
    for label, result in results.items():
        print(f"{label:24s}: {result.summary()}")

    # Close the loop: what do these thresholds mean at sea level?
    from repro.analysis import SERModel, compare_nodes, format_ser_table

    model = SERModel()
    rows = compare_nodes(
        model, [(label, r.q_crit) for label, r in results.items()],
        area_cm2=1e-6,
    )
    print()
    print("sea-level soft-error rates (exponential spectrum, equal "
          "1e-6 cm^2 area):")
    print(format_ser_table(rows))

    # Every node has a finite, bracketed threshold inside the searched
    # decade range...
    for result in results.values():
        assert result.q_pass < result.q_crit <= result.q_fail
        assert result.evaluations <= 14
    # ...and the sensitivity ordering is physical: the tiny ADC hold
    # capacitor (1 pF, half-LSB margin) upsets with far less charge
    # than the PLL loop filter.
    assert results["adc.held (4-bit flash)"].q_crit < \
        0.5 * results["pll.icp"].q_crit
