"""Global-flow generality: the same injection against two loop types.

The paper's pitch is a *global* flow: the same saboteur, pulse model
and analysis pipeline must apply to any analog block.  This benchmark
injects the identical Figure 6 pulse into the charge-pump node of two
different clock-generation loops —

* the **PLL** (second order, frequency-integrating): the charge turns
  into a *frequency* excursion that corrupts the period of ~100
  consecutive cycles;
* the **DLL** (first order, phase-only): the same charge turns into a
  *phase step* — essentially one corrupted period, then a geometric
  realignment with the period back on target immediately.

Same campaign code, radically different failure modes: exactly the
information the early analysis exists to surface.
"""

import pytest

from repro import CurrentPulseSaboteur, Simulator
from repro.ams.dll import DLL
from repro.analysis import analyze_perturbation
from repro.faults import FIGURE6_PULSE

from conftest import banner, fast_pll, once

T_INJ = 32e-6
T_END = 60e-6


def run_pll():
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=True)
    sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
    sab.schedule(FIGURE6_PULSE, T_INJ)
    vco = sim.probe(pll.vco_out)
    sim.run(T_END)
    return analyze_perturbation(
        vco.segment(T_INJ - 5e-6, None), T_INJ, FIGURE6_PULSE.pw,
        pll.t_out_nominal, tol_frac=0.003,
    )


def run_dll():
    sim = Simulator(dt=1e-9)
    dll = DLL(sim, "dll")
    sab = CurrentPulseSaboteur(sim, "sab", dll.icp)
    sab.schedule(FIGURE6_PULSE, T_INJ)
    delayed = sim.probe(dll.delayed)
    sim.run(T_END)
    # The DLL output is a digital trace (0/1 levels): threshold 0.5.
    return analyze_perturbation(
        delayed.segment(T_INJ - 5e-6, None), T_INJ, FIGURE6_PULSE.pw,
        dll.t_ref, tol_frac=0.003, threshold=0.5,
    )


def run_pair():
    return run_pll(), run_dll()


def test_dll_vs_pll(benchmark):
    pll_report, dll_report = once(benchmark, run_pair)

    banner("Global-flow generality — identical pulse, PLL vs DLL")
    print(f"{'loop':6s} {'perturbed cycles':>17s} {'max period dev':>15s} "
          f"{'span (us)':>10s}")
    for label, report in (("PLL", pll_report), ("DLL", dll_report)):
        print(f"{label:6s} {report.perturbed_cycles:17d} "
              f"{report.max_period_deviation * 1e12:12.1f} ps "
              f"{report.perturbed_span * 1e6:10.3f}")

    # Both loops register the fault...
    assert pll_report.perturbed_cycles >= 1
    assert dll_report.perturbed_cycles >= 1
    # ...but the second-order PLL smears it over many more cycles and
    # a much longer span than the first-order DLL's phase step with
    # geometric realignment.
    assert pll_report.perturbed_cycles > 5 * dll_report.perturbed_cycles
    assert pll_report.perturbed_span > 3 * dll_report.perturbed_span
    # The DLL's worst single period carries the whole phase step at
    # once: delta = kdl * Q / C = 20 ns/V * 6 pC / 64 pF ~ 1.88 ns.
    phase_step = 20e-9 * FIGURE6_PULSE.charge() / 64e-12
    assert dll_report.max_period_deviation == pytest.approx(
        phase_step, rel=0.25
    )
