"""Scalar warm-start versus batched (ensemble) parameter sweep.

The Figure 8 experiment sweeps pulse amplitude and width over the same
injection site — exactly the workload the ensemble execution mode
targets: every variant shares the circuit topology, the checkpoint and
the digital trajectory, and differs only in its analog pulse columns.
This bench runs a 64-variant PA x PW grid on the locked PLL both ways
(scalar warm-start, then batched) and reports wall-clock, peel-off
counts and the (required) identical classifications, emitting the
measurements as JSON for machine consumption.

Reproduced claim: batched execution is >= 4x faster than scalar
warm-start on a 64-variant after-lock sweep, with identical results.
"""

import json
import time

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    analog_injections,
    run_campaign,
    to_csv,
)
from repro.core import kernels
from repro.faults import TrapezoidPulse

from conftest import banner, fast_pll, once, write_bench_json

T_END = 8e-6
INJECTION_TIME = 4.0e-6
#: Sub-threshold grid: none of these pulses moves a step-quantised
#: digitizer edge, so the whole batch shares one digital trajectory
#: and no variant peels — the ensemble's best case, and the paper's
#: most common one (the vast majority of swept SEU pulses are benign).
AMPLITUDES = [10e-9 * (1 + i) for i in range(8)]
WIDTHS = [100e-12 * (1 + j) for j in range(8)]


def pll_factory():
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=True)
    probes = {
        "vctrl": sim.probe(pll.vctrl),
        "fout": sim.probe(pll.vco_out, min_interval=0.0),
    }
    return Design(sim=sim, root=pll, probes=probes)


def make_spec():
    pulses = [
        TrapezoidPulse(rt=100e-12, ft=300e-12, pw=pw, pa=pa)
        for pa in AMPLITUDES
        for pw in WIDTHS
    ]
    return CampaignSpec(
        name="pll-batched-sweep",
        faults=analog_injections(["pll.icp"], [INJECTION_TIME], pulses),
        t_end=T_END,
        outputs=["vctrl"],
        analog_tolerance=0.02,
    )


def run_both():
    spec = make_spec()
    t0 = time.perf_counter()
    scalar = run_campaign(pll_factory, spec, warm_start=True)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = run_campaign(pll_factory, spec, batch=True)
    t_batched = time.perf_counter() - t0
    return scalar, t_scalar, batched, t_batched


def test_batched_sweep(benchmark):
    scalar, t_scalar, batched, t_batched = once(benchmark, run_both)

    stats = batched.execution["batch"]
    measurements = {
        "faults": len(scalar),
        "t_end_s": T_END,
        "numba": kernels.USE_NUMBA,
        "scalar_warm": {
            "wall_s": round(t_scalar, 4),
            "kernel_events": scalar.execution["kernel_events"],
        },
        "batched": {
            "wall_s": round(t_batched, 4),
            "kernel_events": batched.execution["kernel_events"],
            "batches": stats["batches"],
            "batched_runs": stats["batched_runs"],
            "peeled": stats["peeled"],
            "fallbacks": stats["fallbacks"],
            "scalar_runs": stats["scalar_runs"],
        },
        "speedup": round(t_scalar / t_batched, 3),
        "classifications": {
            "scalar_warm": [run.label for run in scalar],
            "batched": [run.label for run in batched],
        },
    }

    banner("Batched ensemble sweep — 64-variant PA x PW grid on the PLL")
    print(json.dumps(measurements, indent=2))
    write_bench_json("BENCH_batched_sweep.json", measurements)

    # Identical results: same CSV (fault, class, divergence times).
    assert to_csv(scalar) == to_csv(batched)
    # The grid is sub-threshold by construction: everything batches.
    assert stats["batched_runs"] == len(scalar)
    assert stats["peeled"] == 0 and stats["fallbacks"] == 0
    # The headline claim: >= 4x faster than scalar warm-start — and
    # >= 6x when the compiled ensemble kernels are active.
    assert t_scalar / t_batched >= (6.0 if kernels.USE_NUMBA else 4.0)
