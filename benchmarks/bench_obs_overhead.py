"""Observability instrumentation overhead.

The obs subsystem's design constraint is the *disabled* cost: kernel
and campaign hot paths guard on one boolean and take the original code
path when no instrument is enabled.  This bench measures

* the kernel event throughput with instrumentation disabled against
  the uninstrumented loop body itself (``Simulator._run_loop``), which
  is exactly the code that ran before obs existed — the guard and the
  dispatch are the only difference; and
* the full-campaign wall cost of *enabled* tracing + metrics, which
  may legitimately cost a few percent but must stay bounded and must
  actually produce the per-fault spans and counters; and
* the event-journal cost on the same campaign: disabled journalling
  (the default) must stay within 2% of the plain run, and enabled
  journalling — a flushed write per event — must stay bounded while
  actually producing the full event stream.

Reproduced claim: enabling-by-default costs nothing — disabled
instrumentation keeps kernel event throughput within 3% of the
uninstrumented loop, and the disabled journal keeps campaign wall
time within 2%.
"""

import json
import os
import tempfile
import time

from repro import Simulator, obs
from repro.obs.journal import close_journal, open_journal, read_journal
from repro.campaign import (
    CampaignSpec,
    Design,
    exhaustive_bitflips,
    run_campaign,
)
from repro.core import Component, L0
from repro.digital import Bus, ClockGen, Counter, ParityGen

from conftest import banner, once, write_bench_json

T_END = 40e-6          # ~8000 clock edges per measured run
TRIALS = 7
JOURNAL_TRIALS = 3


def build_sim():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9, parent=top)
    q = Bus(sim, "cnt", 8)
    Counter(sim, "counter", clk, q, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "par", q, par, parent=top)
    probes = {"parity": sim.probe(par)}
    return sim, top, probes


def factory():
    sim, top, probes = build_sim()
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    faults = exhaustive_bitflips(
        [f"top/counter.q[{i}]" for i in range(4)], [3e-6, 11e-6]
    )
    return CampaignSpec(name="obs-overhead", faults=faults, t_end=20e-6,
                        outputs=["parity"])


def _best_throughput(run_call):
    """Best events/second over TRIALS fresh simulations.

    Min-time (max-throughput) of several trials cancels scheduler
    noise, which at the 3% level would otherwise dominate.
    """
    best = 0.0
    for _ in range(TRIALS):
        sim, _top, _probes = build_sim()
        t0 = time.perf_counter()
        run_call(sim)
        elapsed = time.perf_counter() - t0
        best = max(best, sim.events_executed / elapsed)
    return best


def measure():
    obs.disable()
    obs.reset()

    # Interleaved within _best_throughput's trial loop structure:
    # public run() with obs disabled vs the raw pre-obs loop.
    baseline = _best_throughput(
        lambda sim: sim._run_loop(T_END, inclusive=True)
    )
    disabled = _best_throughput(lambda sim: sim.run(T_END))

    # Enabled end-to-end campaign cost vs the identical disabled one.
    spec = make_spec()
    t0 = time.perf_counter()
    run_campaign(factory, spec)
    wall_disabled = time.perf_counter() - t0

    obs.enable()
    t0 = time.perf_counter()
    result = run_campaign(factory, make_spec())
    wall_enabled = time.perf_counter() - t0
    snapshot = obs.metrics.snapshot()
    spans = obs.tracer.TRACER.to_dicts()
    obs.disable()
    obs.reset()

    journal = _measure_journal()

    return (baseline, disabled, wall_disabled, wall_enabled,
            result, snapshot, spans, journal)


def _campaign_wall():
    t0 = time.perf_counter()
    run_campaign(factory, make_spec())
    return time.perf_counter() - t0


def _measure_journal():
    """Campaign wall time with the journal disabled vs streaming.

    The disabled journal is the default code path (every emit site is
    a no-op or guarded on one boolean), so the disabled/plain ratio
    quantifies pure noise plus the guard cost — the claim is that it
    stays within 2%.  Min-of-trials on both sides cancels scheduler
    noise at that resolution.
    """
    plain = min(_campaign_wall() for _ in range(JOURNAL_TRIALS))
    disabled = min(_campaign_wall() for _ in range(JOURNAL_TRIALS))

    events = 0
    enabled = float("inf")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.jsonl")
        for _ in range(JOURNAL_TRIALS):
            open_journal(path)
            try:
                enabled = min(enabled, _campaign_wall())
            finally:
                close_journal()
        events = sum(1 for _ in read_journal(path))
    return {
        "campaign_wall_plain_s": round(plain, 4),
        "campaign_wall_disabled_s": round(disabled, 4),
        "campaign_wall_enabled_s": round(enabled, 4),
        "disabled_ratio": round(disabled / plain, 3),
        "enabled_ratio": round(enabled / plain, 3),
        "events_per_campaign": events,
    }


def test_obs_overhead(benchmark):
    (baseline, disabled, wall_disabled, wall_enabled,
     result, snapshot, spans, journal) = once(benchmark, measure)

    disabled_ratio = disabled / baseline
    enabled_ratio = wall_enabled / wall_disabled
    fault_spans = [s for s in spans if s["name"] == "campaign.fault_run"]

    measurements = {
        "kernel_events_per_s": {
            "uninstrumented_loop": round(baseline),
            "obs_disabled": round(disabled),
            "ratio": round(disabled_ratio, 4),
        },
        "campaign_wall_s": {
            "obs_disabled": round(wall_disabled, 4),
            "obs_enabled": round(wall_enabled, 4),
            "ratio": round(enabled_ratio, 3),
        },
        "enabled_counters": snapshot["counters"],
        "fault_spans": len(fault_spans),
        "journal": journal,
    }

    banner("Observability overhead — disabled hot path vs baseline")
    print(json.dumps(measurements, indent=2))
    write_bench_json("BENCH_obs_overhead.json", measurements)

    # The headline claim: disabled instrumentation costs < 3% kernel
    # event throughput.
    assert disabled_ratio >= 0.97
    # Enabled instrumentation is allowed to cost, but boundedly so on
    # this span-per-run workload.
    assert enabled_ratio <= 1.5
    # And it must actually observe the campaign: one span per faulty
    # run, counters matching the result.
    assert len(fault_spans) == len(result)
    assert snapshot["counters"]["campaign.runs"] == len(result)
    assert snapshot["histograms"]["campaign.run_wall_s"]["count"] == \
        len(result)
    # The disabled journal stays within 2% of the identical plain run,
    # and streaming one flushed line per event stays bounded while
    # covering the whole campaign (start/finish plus one started +
    # finished pair per fault).
    assert journal["disabled_ratio"] <= 1.02
    assert journal["enabled_ratio"] <= 1.5
    assert journal["events_per_campaign"] >= 2 + 2 * len(result)
