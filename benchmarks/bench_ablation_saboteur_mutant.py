"""Ablation A: saboteur vs mutant injection (Section 3.2).

The paper contrasts the two digital instrumentation mechanisms:
saboteurs are "conceptually quite easy" but "can only inject faults on
these interconnections", while mutants can corrupt memorised state.

Reproduced series: (1) where both mechanisms can express a fault —
corrupting the value a reader samples at a clock edge — their campaign
verdicts agree; (2) the target-count comparison quantifying how much
of the fault space only mutants can reach.
"""

import pytest

from repro import Simulator
from repro.campaign import CampaignSpec, Design, run_campaign
from repro.core import Component, L0
from repro.core.hierarchy import collect_state_signals
from repro.digital import Bus, ClockGen, Counter, ParityGen
from repro.faults import BitFlip, SETPulse
from repro.netlist import (
    Netlist,
    design_factory,
    insert_digital_saboteur,
)

from conftest import banner, once

PERIOD = 10e-9
T_END = 300e-9


def dut_netlist():
    return Netlist.from_dict({
        "name": "top",
        "dt": "1ns",
        "signals": [
            {"name": "clk", "init": "0"},
            {"name": "serin", "init": "1"},
            {"name": "parity", "init": "U"},
        ],
        "buses": [{"name": "sr", "width": 4, "init": 0}],
        "instances": [
            {"type": "ClockGen", "name": "ck", "ports": {"out": "clk"},
             "params": {"period": PERIOD}},
            {"type": "ShiftRegister", "name": "shreg",
             "ports": {"clk": "clk", "serial_in": "serin", "q": "sr"}},
            {"type": "ParityGen", "name": "par",
             "ports": {"a": "sr", "parity": "parity"}},
        ],
        "probes": ["sr", "parity"],
        "outputs": ["parity"],
    })


def run_comparison():
    """Inject 'serin reads wrong at the edge at 105 ns' both ways."""
    # Mutant route: flip the bit *after* it was captured -- equivalent
    # to the reader having sampled the inverted serial input.
    mutant_factory = design_factory(dut_netlist())
    mutant_spec = CampaignSpec(
        name="mutant",
        faults=[BitFlip("top/shreg.q[0]", 101e-9)],
        t_end=T_END,
        outputs=["parity"],
    )
    mutant_result = run_campaign(mutant_factory, mutant_spec)

    # Saboteur route: a SET on the serial input spanning the edge.
    sab_netlist, _sab, new_net = insert_digital_saboteur(
        dut_netlist(), "serin")
    sab_factory = design_factory(sab_netlist)
    sab_spec = CampaignSpec(
        name="saboteur",
        faults=[SETPulse(new_net, 98e-9, 4e-9)],
        t_end=T_END,
        outputs=["parity"],
    )
    sab_result = run_campaign(sab_factory, sab_spec)
    return mutant_result, sab_result


def test_ablation_saboteur_vs_mutant(benchmark):
    mutant_result, sab_result = once(benchmark, run_comparison)

    banner("Ablation A — saboteur vs mutant (Section 3.2)")
    m = mutant_result.runs[0]
    s = sab_result.runs[0]
    print(f"mutant   bit-flip verdict : {m.label}")
    print(f"saboteur SET verdict      : {s.label}")

    # Where both mechanisms express the same fault, verdicts agree.
    assert m.label == s.label
    assert m.classification.is_error()

    # Reach comparison: every state bit is a mutant target, while the
    # saboteur can only see the declared interconnections.
    design = design_factory(dut_netlist())()
    mutant_targets = [n for n, _s in collect_state_signals(design.root)]
    saboteur_nets = [
        decl.name for decl in dut_netlist().signals
    ]
    print(f"mutant targets   : {len(mutant_targets)} "
          f"(state bits: {', '.join(mutant_targets)})")
    print(f"saboteur targets : {len(saboteur_nets)} "
          f"(interconnect nets: {', '.join(saboteur_nets)})")
    assert len(mutant_targets) >= 4  # all shift-register bits
