"""Ablation C: loop-filter sizing vs SEU sensitivity.

The design-guidance use of the flow (paper introduction: "identify the
significant nodes that should be protected ... so that overheads are
kept to a minimum with respect to the actual protection needs").  For
the PLL's dominant sensitivity — charge dumped on the loop-filter
node — the natural analog hardening is a bigger shunt capacitor C2:
the immediate voltage step is Q/C2.  The trade-off is loop stability
margin (the pole at ~1/(2*pi*R*C2) moves down towards the crossover).

Reproduced series: peak frequency excursion and perturbed cycles for
the Figure 6 pulse as C2 scales.  The result is a genuine trade-off,
not a monotone win: peak excursion falls ~1/C2, but the slower R*C2
recovery stretches the (smaller) disturbance over *more* clock cycles
— the flow quantifies which metric the protected system actually cares
about instead of worst-case guessing.
"""

import pytest

from repro import CurrentPulseSaboteur, Simulator
from repro.analysis import analyze_perturbation, is_locked
from repro.faults import FIGURE6_PULSE

from conftest import banner, fast_pll, once

T_INJ = 15e-6
T_END = 35e-6
C2_SCALES = (1.0, 2.0, 4.0)


def run_at(c2_scale):
    sim = Simulator(dt=1e-9)
    c2 = 16e-12 * c2_scale
    pll = fast_pll(sim, preset_locked=True, c2=c2)
    sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
    sab.schedule(FIGURE6_PULSE, T_INJ)
    vco = sim.probe(pll.vco_out)
    vctrl = sim.probe(pll.vctrl)
    sim.run(T_END)
    report = analyze_perturbation(
        vco.segment(T_INJ - 5e-6, None), T_INJ, FIGURE6_PULSE.pw,
        pll.t_out_nominal, tol_frac=0.003,
        vctrl_trace=vctrl, vctrl_nominal=pll.vctrl_locked,
    )
    locked_after = is_locked(
        vco.segment(T_END - 5e-6, None), pll.t_out_nominal,
        tol_frac=0.005, consecutive=10,
    )
    return report, locked_after


def run_sweep():
    return {scale: run_at(scale) for scale in C2_SCALES}


def test_ablation_filter_sizing(benchmark):
    results = once(benchmark, run_sweep)

    banner("Ablation C — loop-filter C2 sizing vs SEU sensitivity")
    print(f"{'C2 scale':>8s} {'peak vctrl (mV)':>16s} "
          f"{'perturbed cycles':>17s} {'re-locked':>10s}")
    for scale, (report, locked) in sorted(results.items()):
        print(f"{scale:8.1f} {report.max_vctrl_deviation * 1e3:16.1f} "
              f"{report.perturbed_cycles:17d} {str(locked):>10s}")

    base = results[1.0][0]
    hard = results[4.0][0]
    # Bigger C2 absorbs the same charge with a ~1/C2 smaller voltage
    # (and frequency) excursion...
    assert hard.max_vctrl_deviation == pytest.approx(
        base.max_vctrl_deviation / 4.0, rel=0.15
    )
    # ... but the R*C2 recovery gets slower, so the (smaller)
    # disturbance lasts *longer*: the flow exposes a real trade-off —
    # peak frequency error vs exposure duration — that worst-case
    # guessing would miss entirely.
    assert hard.perturbed_cycles > base.perturbed_cycles
    assert hard.max_period_deviation < base.max_period_deviation
    # The loop still locks for every evaluated size (the sizing stays
    # inside the stability margin).
    for _scale, (_report, locked) in results.items():
        assert locked
