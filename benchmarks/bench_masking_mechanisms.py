"""The three SET masking mechanisms of Section 2, quantified.

"When occurring in the combinatorial parts of a digital block, this
current pulse creates a voltage variation (called SET) that may
propagate through the gates until it is eventually captured (or not)
in a flip-flop."  Three independent mechanisms stand between the
strike and the stored error, and this bench measures each:

* **logical masking** — a controlling value on another gate input
  blocks the glitch (AND with a 0);
* **electrical masking** — the glitch is narrower than a gate's
  inertial delay and is attenuated away;
* **temporal (latch-window) masking** — the surviving glitch misses
  the flip-flop's capture edge.

The product of the three survival probabilities is the classical SET
derating factor; campaigns that skip any mechanism over-estimate the
soft-error rate.
"""

import pytest

from repro import Simulator
from repro.core import Component, L0, L1
from repro.digital import AndGate, BufGate, ClockGen, DFF
from repro.faults import SETPulse
from repro.injection import InjectionController

from conftest import banner, once

PERIOD = 20e-9
PULSE_WIDTH = 2e-9
N_TRIALS = 24


def run_trial(offset_fraction, gating_value, inertial):
    """One SET through gate chain into a DFF; returns captured?"""
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    victim = sim.signal("victim", init=L0)
    victim.drive(L0)
    gate_en = sim.signal("gate_en", init=gating_value)
    anded = sim.signal("anded")
    AndGate(sim, "mask", [victim, gate_en], anded, parent=top)
    shaped = sim.signal("shaped")
    BufGate(sim, "drv", anded, shaped, delay=3e-9, inertial=inertial,
            parent=top)
    q = sim.signal("q")
    DFF(sim, "ff", shaped, clk, q, parent=top)
    controller = InjectionController(sim, top)
    t_inj = 5 * PERIOD + offset_fraction * PERIOD
    controller.apply(SETPulse("victim", t_inj, PULSE_WIDTH))
    sim.run(8 * PERIOD)
    return q.value is L1 or q.prev is L1


def sweep(gating_value, inertial):
    captured = sum(
        run_trial((k + 0.5) / N_TRIALS, gating_value, inertial)
        for k in range(N_TRIALS)
    )
    return captured / N_TRIALS


def run_all():
    return {
        "baseline (no masking)": sweep(L1, inertial=False),
        "logical (AND gated low)": sweep(L0, inertial=False),
        "electrical (inertial 3ns > 2ns pulse)": sweep(L1, inertial=True),
    }


def test_masking_mechanisms(benchmark):
    rates = once(benchmark, run_all)

    banner("Section 2 — the three SET masking mechanisms")
    print(f"{'configuration':40s} {'capture probability':>20s}")
    for label, rate in rates.items():
        print(f"{label:40s} {rate:20.1%}")
    print()
    print("temporal masking is the baseline itself: even unmasked, the "
          f"{PULSE_WIDTH * 1e9:.0f} ns glitch only latches when it "
          f"overlaps the capture edge (~{PULSE_WIDTH / PERIOD:.0%} "
          "of injection instants).")

    baseline = rates["baseline (no masking)"]
    # Temporal: the unmasked capture probability tracks pulse/period.
    assert baseline == pytest.approx(PULSE_WIDTH / PERIOD, abs=0.08)
    assert 0 < baseline < 0.5
    # Logical: a controlling 0 on the AND blocks every glitch.
    assert rates["logical (AND gated low)"] == 0.0
    # Electrical: a 3 ns inertial stage swallows every 2 ns glitch.
    assert rates["electrical (inertial 3ns > 2ns pulse)"] == 0.0
