"""Validating protection mechanisms — the flow's second purpose.

The paper's introduction motivates early fault injection with two
goals: "(1) identify the significant nodes that should be protected
... (2) validate the efficiency of the implemented mechanisms".  This
benchmark performs (2): the *same* exhaustive SEU campaign runs against
an unprotected register file, a TMR version and a Hamming-SEC version,
and the classification tables quantify each mechanism's coverage —
including TMR's residual double-upset failures.
"""

import itertools

import pytest

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    exhaustive_bitflips,
    run_campaign,
)
from repro.core import Component, L0
from repro.core.hierarchy import collect_state_signals
from repro.digital import Bus, BusSequencePlayer, ClockGen, Register
from repro.faults import MultipleBitUpset
from repro.harden import HammingProtectedRegister, TMRRegister

from conftest import banner, once

PERIOD = 20e-9
T_END = 400e-9
#: Data words written into the register, one per clock cycle.
SCRIPT = [(k * PERIOD + 1e-9, value) for k, value in
          enumerate([0xA5, 0xA5, 0xA5, 0xA5, 0x3C, 0x3C, 0x3C, 0x3C,
                     0x5A, 0x5A, 0x5A, 0x5A, 0xC3, 0xC3, 0xC3, 0xC3])]


def make_factory(style):
    def factory():
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
        d = Bus(sim, "d", 8, init=0xA5)
        BusSequencePlayer(sim, "stim", d, SCRIPT, parent=top)
        q = Bus(sim, "q", 8)
        if style == "plain":
            Register(sim, "reg", d, clk, q, parent=top)
        elif style == "tmr":
            TMRRegister(sim, "reg", d, clk, q, parent=top)
        elif style == "hamming":
            corrected = sim.signal("corrected")
            HammingProtectedRegister(sim, "reg", d, clk, q,
                                     corrected=corrected, parent=top)
        probes = {f"q[{i}]": sim.probe(q.bits[i]) for i in range(8)}
        return Design(sim=sim, root=top, probes=probes)

    return factory


def campaign_for(style, mbu=False):
    factory = make_factory(style)
    targets = [n for n, _s in collect_state_signals(factory().root)]
    if mbu:
        # double upsets: all target pairs at one instant (sampled)
        pairs = list(itertools.combinations(targets, 2))[::7][:24]
        faults = [MultipleBitUpset(pair, 130e-9) for pair in pairs]
    else:
        faults = exhaustive_bitflips(targets, [130e-9])
    spec = CampaignSpec(
        name=f"{style}{'-mbu' if mbu else ''}",
        faults=faults,
        t_end=T_END,
        outputs=[f"q[{i}]" for i in range(8)],
    )
    return run_campaign(factory, spec)


def run_validation():
    results = {}
    for style in ("plain", "tmr", "hamming"):
        results[style] = campaign_for(style)
    results["tmr-mbu"] = campaign_for("tmr", mbu=True)
    return results


def test_protection_validation(benchmark):
    results = once(benchmark, run_validation)

    banner("Protection-mechanism validation — same SEU campaign, three "
           "register styles")
    print(f"{'style':10s} {'targets':>8s} {'error rate':>11s}")
    for style in ("plain", "tmr", "hamming"):
        res = results[style]
        print(f"{style:10s} {len(res):8d} {res.error_rate():11.1%}")
    mbu = results["tmr-mbu"]
    print(f"{'tmr (x2)':10s} {len(mbu):8d} {mbu.error_rate():11.1%}   "
          "<- residual double-upset rate")

    # Claims: every unprotected stored-bit upset is an error; TMR and
    # Hamming mask every *single* upset; TMR still fails under some
    # double upsets (the residual the campaign is there to measure).
    assert results["plain"].error_rate() == 1.0
    assert results["tmr"].error_rate() == 0.0
    assert results["hamming"].error_rate() == 0.0
    assert 0.0 < results["tmr-mbu"].error_rate() < 1.0
