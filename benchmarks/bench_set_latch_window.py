"""Section 2: SET capture — "eventually captured (or not)".

"When occurring in the combinatorial parts of a digital block, this
current pulse creates a voltage variation (called SET) that may
propagate through the gates until it is eventually captured (or not)
in a flip-flop, potentially leading to one or more erroneous bits."

Reproduced series: a SET pulse of fixed width swept across one clock
cycle on a flip-flop's data input; the capture map shows the latching
window — the pulse is only captured when it overlaps the active edge,
and the capture probability equals (pulse width + setup window) /
period, the classical derating argument.
"""

import pytest

from repro import Simulator
from repro.core import Component, L0, L1
from repro.digital import ClockGen, DFF
from repro.faults import SETPulse
from repro.injection import InjectionController

from conftest import banner, once

PERIOD = 20e-9
WIDTH = 2e-9
N_POINTS = 40


def run_sweep():
    """One run per intra-cycle offset; returns [(offset, captured)]."""
    capture_map = []
    for k in range(N_POINTS):
        offset = PERIOD * k / N_POINTS
        sim = Simulator(dt=1e-9)
        top = Component(sim, "top")
        clk = sim.signal("clk", init=L0)
        ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
        d = sim.signal("d", init=L0)
        d.drive(L0)
        q = sim.signal("q")
        DFF(sim, "ff", d, clk, q, parent=top)
        controller = InjectionController(sim, top)
        # Pulse in cycle 5 at the swept offset.
        controller.apply(SETPulse("d", 5 * PERIOD + offset, WIDTH))
        sim.run(7 * PERIOD)
        # Captured iff q went high at the edge following the pulse.
        captured = q.value is L1 or q.prev is L1
        capture_map.append((offset, captured))
    return capture_map


def test_set_latch_window(benchmark):
    capture_map = once(benchmark, run_sweep)

    banner("Section 2 reproduction — SET latching window "
           f"({WIDTH * 1e9:.0f} ns pulse on a {PERIOD * 1e9:.0f} ns cycle)")
    line = "".join("X" if captured else "." for _o, captured in capture_map)
    print(f"capture map across the cycle (X = captured): {line}")
    captured_count = sum(1 for _o, c in capture_map if c)
    probability = captured_count / len(capture_map)
    print(f"capture probability: {probability:.1%} "
          f"(pulse/period = {WIDTH / PERIOD:.1%})")

    # Shape claims: the SET is captured only when overlapping the
    # rising edge — a contiguous window whose width is the pulse width
    # (within the sweep resolution), i.e. most SETs are NOT captured.
    assert 0 < captured_count < len(capture_map)
    assert probability == pytest.approx(WIDTH / PERIOD, abs=0.08)
    # Window contiguity (allowing wraparound at the cycle boundary).
    flags = [c for _o, c in capture_map]
    transitions = sum(
        1 for i in range(len(flags)) if flags[i] != flags[i - 1]
    )
    assert transitions == 2
