"""Ablation B: solver timestep refinement around the injection.

The kernel resolves the paper's 100 ps pulse edges by locally refining
the analog timestep inside a window around each injection (Section 4.2
needs the current spike "accurately taken into account").  This
ablation sweeps the refinement factor and reports accuracy (delivered
charge, peak control-voltage deviation) against cost (solver steps):
disabling refinement visibly under-delivers the pulse; past ~8 points
per edge the answer stops changing while the cost keeps growing.
"""

import numpy as np
import pytest

from repro import Simulator
from repro.analysis import peak_deviation
from repro.faults import FIGURE6_PULSE
from repro.injection import CurrentPulseSaboteur

from conftest import banner, fast_pll, once

T_INJ = 15e-6
T_END = 25e-6


def run_at(points_per_edge):
    """points_per_edge = 0 disables refinement (coarse 1 ns grid)."""
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=True)
    sab = CurrentPulseSaboteur(
        sim, "sab", pll.icp,
        refine_points_per_edge=max(points_per_edge, 1),
    )
    sab.schedule(FIGURE6_PULSE, T_INJ)
    if points_per_edge == 0:
        sim.analog.windows.clear()
    vctrl = sim.probe(pll.vctrl)
    icp = sim.probe_current(pll.icp)
    sim.run(T_END)
    window = icp.segment(T_INJ - 1e-9, T_INJ + FIGURE6_PULSE.duration + 1e-9)
    delivered = float(np.trapezoid(window.values, window.times))
    peak = peak_deviation(vctrl, pll.vctrl_locked, t0=T_INJ, t1=T_INJ + 2e-6)
    return delivered, peak, sim.analog_steps


def run_sweep():
    return {ppe: run_at(ppe) for ppe in (0, 1, 2, 4, 8, 16)}


def test_ablation_timestep(benchmark):
    results = once(benchmark, run_sweep)
    q_true = FIGURE6_PULSE.charge()

    banner("Ablation B — refinement points per pulse edge "
           "(0 = no refinement, coarse 1 ns grid)")
    print(f"{'pts/edge':>8s} {'charge err':>11s} {'peak mV':>9s} "
          f"{'steps':>9s}")
    for ppe, (delivered, peak, steps) in sorted(results.items()):
        err = abs(delivered - q_true) / q_true
        print(f"{ppe:8d} {err:11.2%} {peak * 1e3:9.2f} {steps:9d}")

    unrefined = results[0]
    default = results[8]
    fine = results[16]
    # Without refinement the 800 ps pulse is sampled at most once on
    # the 1 ns grid: the delivered charge is badly wrong.
    assert abs(unrefined[0] - q_true) / q_true > 0.10
    # Accuracy claim: the default refinement delivers the modelled
    # charge within a few percent, and doubling it again changes the
    # observable response by well under a percent.
    assert abs(default[0] - q_true) / q_true < 0.05
    assert abs(fine[1] - default[1]) / default[1] < 0.01
    # Cost claim: refinement is local — even 16 points per 100 ps edge
    # costs only a bounded number of extra steps on a 25 us run.
    assert fine[2] - unrefined[2] < 2000
