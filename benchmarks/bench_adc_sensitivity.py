"""Section 6 / reference [9]: ADC sensitivity, analog vs digital part.

The paper's future-work target, quantified with its own flow: current
pulses on the flash ADC's hold capacitor (analog part) versus SEU
bit-flips in the output register (digital part).

Reproduced series: error rate and mean output-error duration per part;
the [9]-shaped claim is that the analog part's errors are at least as
frequent and last at least as long as the digital part's.
"""

import pytest

from repro import Simulator, TrapezoidPulse
from repro.ams import FlashADC
from repro.analog import SineVoltage
from repro.campaign import (
    CampaignSpec,
    Design,
    analog_injections,
    exhaustive_bitflips,
    run_campaign,
)
from repro.core import Component, L0
from repro.digital import ClockGen

from conftest import banner, once

T_END = 40e-6
SAMPLE_PERIOD = 1e-6
HIT_TIMES = [10.6e-6, 20.6e-6, 30.6e-6]


def adc_factory():
    sim = Simulator(dt=10e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=SAMPLE_PERIOD, parent=top)
    vin = sim.node("vin")
    SineVoltage(sim, "src", vin, amplitude=2.0, freq=50e3, offset=2.5,
                parent=top)
    adc = FlashADC(sim, "adc", clk, vin, bits=4, parent=top)
    probes = {f"out[{i}]": sim.probe(adc.output.bits[i]) for i in range(4)}
    return Design(sim=sim, root=top, probes=probes, extras={"adc": adc})


def run_the_campaign():
    pulses = [
        TrapezoidPulse(pa, "50ps", "100ps", "400ps")
        for pa in ("500uA", "2mA", "5mA")
    ]
    analog_faults = analog_injections(["top/adc.held"], HIT_TIMES, pulses)
    digital_faults = exhaustive_bitflips(
        [f"top/adc/register.q[{i}]" for i in range(4)], HIT_TIMES
    )[: len(analog_faults)]
    spec = CampaignSpec(
        name="adc-sensitivity",
        faults=analog_faults + digital_faults,
        t_end=T_END,
        outputs=[f"out[{i}]" for i in range(4)],
        compare_from=2e-6,
    )
    result = run_campaign(adc_factory, spec)
    return result, len(analog_faults)


def _stats(runs):
    errors = [r for r in runs if r.classification.is_error()]
    mean_duration = (
        sum(r.classification.output_mismatch_time for r in errors)
        / len(errors)
        if errors
        else 0.0
    )
    return len(errors) / len(runs), mean_duration


def test_adc_sensitivity(benchmark):
    result, n_analog = once(benchmark, run_the_campaign)
    analog_rate, analog_duration = _stats(result.runs[:n_analog])
    digital_rate, digital_duration = _stats(result.runs[n_analog:])

    banner("ADC sensitivity — analog part (hold cap) vs digital part "
           "(output register)")
    print(f"analog  strikes: error rate {analog_rate:6.1%}, mean output-"
          f"error time {analog_duration * 1e6:.3f} us")
    print(f"digital strikes: error rate {digital_rate:6.1%}, mean output-"
          f"error time {digital_duration * 1e6:.3f} us")

    # [9]-shaped claim: analog-part errors dominate in *duration* — a
    # register flip lasts one sample period, a corrupted held voltage
    # poisons the code until the next track phase.  (Rates are charge-
    # dependent: a sub-LSB analog strike is legitimately silent, which
    # is exactly the sensitivity information the campaign surfaces.)
    assert analog_duration >= 2.0 * digital_duration
    assert analog_rate > 0.5
    assert digital_rate > 0.5
