"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or claim of the paper's
evaluation (see DESIGN.md's experiment index) and prints the series it
reproduces, while pytest-benchmark records the runtime.  Heavy
mixed-signal simulations run once (``pedantic`` with a single round);
cheap numeric kernels use normal benchmark rounds.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import PLL, Simulator


def fast_pll(sim, preset_locked=True, **overrides):
    """The test-scaled PLL: 5 MHz reference, /10, same 50 MHz output.

    10x the paper's reference and loop bandwidth, so lock and recovery
    dynamics compress from hundreds to tens of microseconds; the
    response *shape* is identical (same topology, same relative
    design point).
    """
    params = dict(
        f_ref="5MHz",
        n_div=10,
        kvco="10MHz",
        i_pump="100uA",
        r="15.7kOhm",
        c1="162pF",
        c2="16pF",
        preset_locked=preset_locked,
    )
    params.update(overrides)
    return PLL(sim, "pll", **params)


def paper_pll(sim, preset_locked=True, **overrides):
    """The paper's exact operating point: 500 kHz reference, /100."""
    params = dict(preset_locked=preset_locked)
    params.update(overrides)
    return PLL(sim, "pll", **params)


def once(benchmark, fn):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title):
    """Print a section banner for the reproduced series."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def write_bench_json(default_name, measurements):
    """Emit a machine-readable ``BENCH_*.json`` measurement record.

    ``measurements`` is the benchmark's own dict (wall times, speedup,
    run counts...); the written record adds a ``bench`` name key so CI
    artifact consumers can aggregate files without parsing filenames.
    The output path defaults to ``default_name`` (conventionally
    ``BENCH_<bench>.json`` in the working directory) and can be
    redirected with the ``REPRO_BENCH_JSON`` environment variable.
    Returns the path written.
    """
    record = {"bench": default_name.removeprefix("BENCH_").removesuffix(".json")}
    record.update(measurements)
    out_path = os.environ.get("REPRO_BENCH_JSON", default_name)
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"wrote {out_path}")
    return out_path
