"""Processor-based architecture campaign (paper reference [2]).

"Bit-flip injection in processor-based architectures: a case study" is
the digital-flow lineage the paper builds on.  This bench runs the flow
on the library's accumulator CPU executing a countdown program:
exhaustive SEU injection over every architectural register bit (PC,
ACC, Z) across the program's execution, with the per-register
sensitivity map showing the distinct failure signatures — control-flow
registers versus datapath registers.
"""

import pytest

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    cycle_times,
    exhaustive_bitflips,
    run_campaign,
)
from repro.campaign.report import classification_summary, sensitivity_matrix
from repro.core import Component, L0
from repro.core.hierarchy import collect_state_signals
from repro.digital import Accumulator8, ClockGen, assemble

from conftest import banner, once

PERIOD = 10e-9
T_END = 700e-9

PROGRAM = assemble([
    ("LDI", 5),
    ("OUT",),
    ("SUB", 1),
    ("JNZ", 1),
    ("OUT",),
    ("HALT",),
])


def cpu_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    cpu = Accumulator8(sim, "cpu", clk, PROGRAM, parent=top)
    probes = {
        "out[0]": sim.probe(cpu.out.bits[0]),
        "out[7]": sim.probe(cpu.out.bits[7]),
        "out_valid": sim.probe(cpu.out_valid),
        "halted": sim.probe(cpu.halted),
        "pc[0]": sim.probe(cpu.pc.bits[0]),
        "acc[0]": sim.probe(cpu.acc.bits[0]),
    }
    return Design(sim=sim, root=top, probes=probes, extras={"cpu": cpu})


def run_the_campaign():
    targets = [n for n, _s in collect_state_signals(cpu_factory().root)]
    times = cycle_times(15e-9, PERIOD, 8, phase=0.5)
    spec = CampaignSpec(
        name="cpu-seu",
        faults=exhaustive_bitflips(targets, times),
        t_end=T_END,
        outputs=["out[0]", "out[7]", "out_valid", "halted"],
    )
    return run_campaign(cpu_factory, spec)


def _rate(result, prefix):
    runs = [r for r in result if prefix in r.fault.target]
    errors = sum(1 for r in runs if r.classification.is_error())
    return errors / len(runs)


def test_cpu_campaign(benchmark):
    result = once(benchmark, run_the_campaign)

    banner("Reference [2] reproduction — SEU campaign on a processor "
           "datapath (countdown program)")
    print(classification_summary(result))
    print()
    print(sensitivity_matrix(result))
    print()
    pc_rate = _rate(result, ".pc[")
    acc_rate = _rate(result, ".acc[")
    z_rate = _rate(result, ".z")
    print(f"error rate by register: PC {pc_rate:.0%}, "
          f"ACC {acc_rate:.0%}, Z {z_rate:.0%}")

    # Shape claims: the campaign covers 13 bits x 8 cycles.  In this
    # tight countdown loop PC and ACC are live every cycle (100% error
    # rate), while the Z flag is only live in the shadow of a branch —
    # most Z upsets are masked.  That per-register spread is exactly
    # why early analysis "keeps overheads to a minimum with respect to
    # the actual protection needs": protect PC/ACC, skip the flag.
    assert len(result) == 13 * 8
    assert pc_rate == 1.0
    assert acc_rate == 1.0
    assert z_rate < 0.6
    assert result.counts()["silent"] > 0
    assert result.counts()["failure"] > 0
