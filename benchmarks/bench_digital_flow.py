"""Section 3: the digital analysis flow (mutant bit-flip campaign).

Reproduced series: the classification table (silent / latent /
transient-error / failure) of an exhaustive SEU campaign over a digital
block's memory elements, plus the error-propagation model generated
from the traces — the two exploitation paths of Figure 2.
"""

import pytest

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    build_propagation_graph,
    classification_summary,
    cycle_times,
    exhaustive_bitflips,
    format_propagation_report,
    per_target_table,
    run_campaign,
)
from repro.core import Component, L0, L1
from repro.core.hierarchy import collect_state_signals
from repro.digital import Bus, ClockGen, Counter, LFSR, MooreFSM, ParityGen

from conftest import banner, once

PERIOD = 10e-9
T_END = 600e-9


def dut_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)

    cycle = Bus(sim, "cycle", 4)
    Counter(sim, "cyclecnt", clk, cycle, parent=top)

    payload_en = sim.signal("payload_en")
    frame_valid = sim.signal("frame_valid")

    def transition(state, fsm):
        c = cycle.to_int_or_none()
        if c is None:
            return state
        if state == "IDLE":
            return "SYNC" if c % 16 == 2 else "IDLE"
        if state == "SYNC":
            return "PAYLOAD"
        if state == "PAYLOAD":
            return "CRC" if c % 16 == 11 else "PAYLOAD"
        return "IDLE"

    MooreFSM(
        sim, "fsm", clk, ["IDLE", "SYNC", "PAYLOAD", "CRC"], transition,
        moore_outputs={
            payload_en: {"IDLE": L0, "SYNC": L0, "PAYLOAD": L1, "CRC": L0},
            frame_valid: {"IDLE": L0, "SYNC": L1, "PAYLOAD": L1, "CRC": L1},
        },
        parent=top,
    )
    payload = Bus(sim, "payload", 8, init=1)
    LFSR(sim, "lfsr", clk, payload, en=payload_en, parent=top)
    parity = sim.signal("parity")
    ParityGen(sim, "par", payload, parity, parent=top)

    probes = {
        "frame_valid": sim.probe(frame_valid),
        "parity": sim.probe(parity),
        "payload[0]": sim.probe(payload.bits[0]),
        "payload[7]": sim.probe(payload.bits[7]),
        "fsm.state[0]": sim.probe(sim.signals["top/fsm.state[0]"]),
    }
    return Design(sim=sim, root=top, probes=probes)


def run_the_campaign():
    probe = dut_factory()
    targets = [n for n, _s in collect_state_signals(probe.root)]
    faults = exhaustive_bitflips(targets, cycle_times(105e-9, PERIOD, 3,
                                                      phase=0.45))
    spec = CampaignSpec(
        name="digital-flow",
        faults=faults,
        t_end=T_END,
        outputs=["frame_valid", "parity"],
    )
    return run_campaign(dut_factory, spec)


def test_digital_flow(benchmark):
    result = once(benchmark, run_the_campaign)

    banner("Section 3 reproduction — digital mutant SEU campaign")
    print(classification_summary(result))
    print()
    print(per_target_table(result))
    print()
    graph = build_propagation_graph(result)
    print(format_propagation_report(graph))

    # Shape claims: an exhaustive campaign over state x cycles finds a
    # mixture of outcome classes and a non-trivial propagation model.
    counts = result.counts()
    assert sum(counts.values()) == len(result)
    assert counts["failure"] + counts["transient-error"] > 0
    assert graph.number_of_edges() >= 2
    # the LFSR/parity chain must appear in the propagation model
    assert any("payload" in str(n) or "parity" in str(n)
               for n in graph.nodes)
