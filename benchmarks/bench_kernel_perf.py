"""Kernel throughput: the cost side of the paper's argument.

The trapezoid model exists "to simplify the simulations and reduce the
fault injection experiment duration"; these benchmarks measure the
engine itself: digital event rate, analog step rate, and full
mixed-signal PLL simulation rate, so campaign costs can be budgeted.
"""

import pytest

from repro import Simulator
from repro.core import L0
from repro.digital import Bus, ClockGen, Counter, LFSR

from conftest import fast_pll


def digital_events(duration=20e-6):
    sim = Simulator(dt=1e-9)
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=10e-9)
    q = Bus(sim, "q", 8)
    Counter(sim, "cnt", clk, q)
    p = Bus(sim, "p", 8)
    LFSR(sim, "lfsr", clk, p)
    sim.run(duration)
    return sim.events_executed


def analog_steps(duration=50e-6):
    from repro.analog import DCVoltage, VCO

    sim = Simulator(dt=1e-9)
    vc = sim.node("vc", init=2.5)
    out = sim.node("out")
    DCVoltage(sim, "src", vc, 2.5)
    VCO(sim, "vco", vc, out, f0=50e6, kvco=10e6)
    sim.run(duration)
    return sim.analog_steps


def pll_simulation(duration=10e-6):
    sim = Simulator(dt=1e-9)
    fast_pll(sim, preset_locked=True)
    sim.run(duration)
    return sim.analog_steps + sim.events_executed


def test_perf_digital_events(benchmark):
    events = benchmark(digital_events)
    assert events > 1000


def test_perf_analog_steps(benchmark):
    steps = benchmark(analog_steps)
    assert steps >= 49000


def test_perf_mixed_pll(benchmark):
    work = benchmark(pll_simulation)
    assert work > 10000
