"""Figure 1b: deriving trapezoid parameters from the double exponential.

Reproduced series: for a family of Messenger strikes, the fitted
(PA, RT, FT, PW) parameters, the charge-conservation error and the L2
waveform distance — the quantitative content of the paper's "possible
fit with the double exponential model" illustration.
"""

import pytest

from repro.faults import (
    DoubleExponentialPulse,
    fit_trapezoid,
    waveform_distance,
)

from conftest import banner

#: (peak, tau_r, tau_f) families covering fast/slow collection.
STRIKES = [
    ("10mA", "50ps", "300ps"),
    ("10mA", "20ps", "150ps"),
    ("2mA", "50ps", "500ps"),
    ("25mA", "100ps", "400ps"),
]


def fit_all(method):
    rows = []
    for peak, tau_r, tau_f in STRIKES:
        dexp = DoubleExponentialPulse.from_peak(peak, tau_r, tau_f)
        fit = fit_trapezoid(dexp, method=method)
        charge_err = abs(fit.charge() - dexp.charge()) / abs(dexp.charge())
        rows.append((dexp, fit, charge_err, waveform_distance(dexp, fit)))
    return rows


@pytest.mark.parametrize("method", ["charge", "lsq"])
def test_fig1b_fit(benchmark, method):
    rows = benchmark(fit_all, method)

    banner(f"Figure 1b reproduction — {method} fit")
    print(f"{'reference':44s} {'fitted trapezoid':52s} {'Qerr':>6s} {'L2':>6s}")
    for dexp, fit, charge_err, distance in rows:
        print(f"{dexp.describe():44s} {fit.describe():52s} "
              f"{charge_err:6.2%} {distance:6.3f}")

    for dexp, fit, charge_err, distance in rows:
        # Shape claims: peak preserved, charge (near-)conserved, and
        # the waveforms similar (L2 well below 1).
        assert fit.peak() == pytest.approx(dexp.peak(), rel=1e-2)
        assert charge_err < 0.02
        assert distance < 0.4
