"""Figure 8: VCO input response for several current-pulse definitions.

The paper sweeps (PA, RT, FT, PW) over
(2 mA, 100 ps, 100 ps, 300 ps), (8 mA, 100 ps, 100 ps, 300 ps),
(10 mA, 40 ps, 40 ps, 120 ps), (10 mA, 180 ps, 180 ps, 540 ps)
and observes that "the amplitude and length of the pulse have clearly a
cumulative effect" — such results identify the particle types the
circuit is sensitive to.

Reproduced series: peak VCO-input deviation, disturbance duration and
perturbed clock cycles per pulse definition, plus the monotone-in-
charge check that *is* the cumulative-effect claim.
"""

import pytest

from repro import CurrentPulseSaboteur, Simulator
from repro.analysis import SensitivitySweep, analyze_perturbation
from repro.faults import FIGURE8_PULSES

from conftest import banner, fast_pll, once

T_INJ = 15e-6
T_END = 35e-6


def evaluate(pulse):
    sim = Simulator(dt=1e-9)
    pll = fast_pll(sim, preset_locked=True)
    saboteur = CurrentPulseSaboteur(sim, "sab", pll.icp)
    saboteur.schedule(pulse, T_INJ)
    vco = sim.probe(pll.vco_out)
    vctrl = sim.probe(pll.vctrl)
    sim.run(T_END)
    report = analyze_perturbation(
        vco.segment(T_INJ - 5e-6, None), T_INJ, pulse.pw,
        pll.t_out_nominal, tol_frac=0.003,
        vctrl_trace=vctrl, vctrl_nominal=pll.vctrl_locked,
    )
    return {
        "peak_mV": report.max_vctrl_deviation * 1e3,
        "disturb_us": report.vctrl_disturbance_duration * 1e6,
        "cycles": report.perturbed_cycles,
    }


def run_sweep():
    sweep = SensitivitySweep()
    sweep.run(FIGURE8_PULSES, evaluate)
    return sweep


def test_fig8_parameter_sweep(benchmark):
    sweep = once(benchmark, run_sweep)

    banner("Figure 8 reproduction — pulse-definition sweep "
           "(PA, RT, FT, PW)")
    print(sweep.table(["peak_mV", "disturb_us", "cycles"]))
    print()
    rho = sweep.spearman("peak_mV")
    print(f"Spearman(charge, peak deviation) = {rho:+.3f}")

    # Cumulative effect: every disturbance metric grows with injected
    # charge across the paper's four pulse definitions.
    assert sweep.is_monotonic_in_charge("peak_mV")
    assert sweep.is_monotonic_in_charge("cycles")
    assert rho == pytest.approx(1.0)

    # Amplitude effect at fixed shape: 8 mA beats 2 mA.
    p2, p8 = sweep.points[0], sweep.points[1]
    assert p8.metric("peak_mV") > 3.0 * p2.metric("peak_mV")
    # Duration effect at fixed amplitude: the long 10 mA pulse beats
    # the short 10 mA pulse.
    p_short, p_long = sweep.points[2], sweep.points[3]
    assert p_long.metric("peak_mV") > 2.0 * p_short.metric("peak_mV")
