"""Scalar warm-start versus batched digital bit-flip campaign.

Section 2 models digital SEUs as bit-flips in memory elements; an
exhaustive target x time campaign multiplies quickly (16 flip-flops x
16 injection cycles = 256 mutants here).  Most such mutants are
*self-healing*: a flipped shift-register bit marches to the serial
output and falls off, after which the mutant state is exactly the
golden state again — yet the scalar flow still re-simulates the whole
remaining window for every one of them.

The digital batch mode (``batch="digital"``) walks the golden
trajectory once per injection-time group, snapshotting branch points,
then runs each mutant only until its state re-converges with a golden
branch snapshot and splices the golden trace tail — bit-identical by
determinism.  This bench runs the same 256-mutant campaign both ways
and checks the classifications byte-for-byte.

Reproduced claim: copy-on-divergence digital batching is >= 5x faster
than per-fault scalar warm starts on a 256-mutant bit-flip campaign,
with byte-identical classifications.
"""

import json
import time

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    exhaustive_bitflips,
    run_campaign,
    to_csv,
)
from repro.core import Component, L0
from repro.digital import Bus, ClockGen, LFSR, ParityGen, ShiftRegister

from conftest import banner, once, write_bench_json

T_END = 8e-6
CLK_PERIOD = 10e-9
#: 16 state bits: two chained 8-bit shift registers.
TARGETS = [f"top/sr1.q[{i}]" for i in range(8)] + [
    f"top/sr2.q[{i}]" for i in range(8)
]
#: 16 injection times, 4 clock cycles apart, mid-cycle.
TIMES = [1.0e-6 + 3e-9 + k * 4 * CLK_PERIOD for k in range(16)]


def shiftreg_factory():
    """LFSR stimulus -> two chained shift registers -> parity monitor.

    Every flip-flop in the chain self-heals: a corrupted bit shifts
    toward the serial output and drops off within 16 clock cycles,
    while the parity output makes the corruption observable in the
    meantime.
    """
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=CLK_PERIOD, parent=top)
    stim = Bus(sim, "stim", 8)
    LFSR(sim, "lfsr", clk, stim, parent=top)
    q1 = Bus(sim, "q1", 8)
    sr1 = ShiftRegister(sim, "sr1", clk, stim.bits[0], q1, parent=top)
    q2 = Bus(sim, "q2", 8)
    ShiftRegister(sim, "sr2", clk, q1.bits[7], q2, parent=top)
    par = sim.signal("parity")
    ParityGen(sim, "pargen", q2, par, parent=top)
    probes = {
        "parity": sim.probe(par),
        "q2[7]": sim.probe(q2.bits[7]),
    }
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    return CampaignSpec(
        name="digital-bitflip-batch",
        faults=exhaustive_bitflips(TARGETS, TIMES),
        t_end=T_END,
        outputs=["parity"],
    )


def run_both():
    spec = make_spec()
    t0 = time.perf_counter()
    scalar = run_campaign(shiftreg_factory, spec, warm_start=True)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = run_campaign(shiftreg_factory, spec, batch="digital")
    t_batched = time.perf_counter() - t0
    return scalar, t_scalar, batched, t_batched


def test_digital_bitflip_batch(benchmark):
    scalar, t_scalar, batched, t_batched = once(benchmark, run_both)

    stats = batched.execution["batch"]
    labels = {}
    for run in batched:
        labels[run.label] = labels.get(run.label, 0) + 1
    measurements = {
        "faults": len(scalar),
        "t_end_s": T_END,
        "scalar_warm": {
            "wall_s": round(t_scalar, 4),
            "kernel_events": scalar.execution["kernel_events"],
        },
        "batched": {
            "wall_s": round(t_batched, 4),
            "kernel_events": batched.execution["kernel_events"],
            "batches": stats["batches"],
            "batched_runs": stats["batched_runs"],
            "converged": stats["converged"],
            "branch_snapshots": stats["branch_snapshots"],
            "peeled": stats["peeled"],
            "fallbacks": stats["fallbacks"],
            "scalar_runs": stats["scalar_runs"],
        },
        "speedup": round(t_scalar / t_batched, 3),
        "classification_histogram": labels,
    }

    banner("Digital bit-flip batch — 256 shift-register mutants")
    print(json.dumps(measurements, indent=2))
    write_bench_json("BENCH_digital_bitflip_batch.json", measurements)

    # Byte-identical classifications (the non-negotiable contract).
    assert to_csv(scalar) == to_csv(batched)
    # Everything batches and every shift-register mutant re-converges.
    assert stats["batched_runs"] == len(scalar)
    assert stats["converged"] == len(scalar)
    assert stats["peeled"] == 0 and stats["fallbacks"] == 0
    # The corruption must actually be observable (no vacuous equality).
    assert any(run.label != "silent" for run in scalar)
    # The headline claim: >= 5x faster than per-fault scalar warm starts.
    assert t_scalar / t_batched >= 5.0
