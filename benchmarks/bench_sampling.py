"""Confidence-bounded sampling versus exhaustive enumeration.

The cost argument for ``sample=True``: a campaign that only needs the
error *rate* should stop simulating when the answer is known.  This
bench builds a >= 20k-fault SEU grid over a DUT with a rare (~1%)
observable-error population — 96 self-healing shift-register bits
nobody watches plus one monitored flag flip-flop — and runs it both
ways:

* exhaustively, with digital bit-flip batching (the fastest exact
  flow this library has for the workload);
* sampled, stratified site x phase, stopping when the pooled Wilson
  interval half-width reaches ±0.5% at 95% confidence.

Reproduced claim: the sampled campaign simulates <= 10% of the fault
space and its interval covers the exhaustive ground truth.  The run
counts and the coverage check are deterministic (seeded sampler); the
wall-clock ratio is hardware-dependent and reported, not gated.
"""

import time

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    exhaustive_bitflips,
    run_campaign,
    sampling_headline,
)
from repro.core import Component, L0
from repro.core.logic import Logic
from repro.digital import Bus, ClockGen, DFF, LFSR, ShiftRegister

from conftest import banner, once, write_bench_json

PERIOD = 4e-9
N_SHIFTREGS = 12
#: 211 injection cycles x 97 targets = 20,467 faults.
N_TIMES = 211
TIMES = [PERIOD * (3 + k) + 1e-9 for k in range(N_TIMES)]
T_END = TIMES[-1] + 12 * PERIOD
MARGIN = 0.005
CONFIDENCE = 0.95
#: Draws per convergence check.  Larger chunks amortize the batched
#: engine's per-group golden branch walk over more mutants; 100 keeps
#: the worst-case convergence overshoot well inside the 10% gate.
CHUNK = 100


def rare_error_factory():
    """96 unobserved self-healing bits + 1 observed flag bit.

    An LFSR churns every shift register (activity is what lets healed
    mutants re-join the golden trajectory, and what the batched
    exhaustive flow exploits); only the flag flip-flop is probed, so
    upsets there are the only observable errors — a 1.03% error
    population, the regime where sampling pays.
    """
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    pattern = Bus(sim, "pattern", 8, init=1)
    LFSR(sim, "lfsr", clk, pattern, parent=top)
    for n in range(N_SHIFTREGS):
        q = Bus(sim, f"q{n}", 8)
        ShiftRegister(sim, f"sr{n}", clk, pattern.bits[n % 8], q,
                      parent=top)
    flag = sim.signal("flag")
    DFF(sim, "flag", pattern.bits[0], clk, flag, init=Logic.L0,
        parent=top)
    return Design(sim=sim, root=top, probes={"flag": sim.probe(flag)})


def make_spec():
    targets = [
        f"top/sr{n}.q[{i}]"
        for n in range(N_SHIFTREGS) for i in range(8)
    ]
    targets.append("top/flag.q")
    faults = exhaustive_bitflips(targets, TIMES)
    assert len(faults) >= 20_000, len(faults)
    return CampaignSpec(name="sampling-vs-exhaustive", faults=faults,
                        t_end=T_END, outputs=["flag"])


def run_both():
    spec = make_spec()
    t0 = time.perf_counter()
    exhaustive = run_campaign(rare_error_factory, spec, batch="digital")
    t_exhaustive = time.perf_counter() - t0
    t0 = time.perf_counter()
    sampled = run_campaign(
        rare_error_factory, spec, sample=True, margin=MARGIN,
        confidence=CONFIDENCE, chunk=CHUNK, batch="digital",
    )
    t_sampled = time.perf_counter() - t0
    return spec, exhaustive, t_exhaustive, sampled, t_sampled


def test_sampling_vs_exhaustive(benchmark):
    spec, exhaustive, t_exhaustive, sampled, t_sampled = once(
        benchmark, run_both
    )

    population = len(spec.faults)
    truth_errors = sum(
        1 for run in exhaustive if run.classification.is_error()
    )
    truth = truth_errors / population
    sampling = sampled.execution["sampling"]

    banner("confidence-bounded sampling vs exhaustive enumeration")
    print(f"fault space     : {population} faults, "
          f"true error rate {truth:.4%} ({truth_errors} errors)")
    print(f"exhaustive      : {population} runs in {t_exhaustive:.1f}s "
          f"(digital batch)")
    print(f"sampled         : {sampling['simulated']} runs in "
          f"{t_sampled:.1f}s -> {sampling_headline(sampling)}")
    print(f"stopped         : {sampling['reason']} after "
          f"{sampling['rounds']} rounds / {sampling['chunks']} chunks")
    ratio = sampling["simulated"] / population
    speedup = t_exhaustive / t_sampled if t_sampled > 0 else 0.0
    print(f"run-count ratio : {ratio:.1%} of exhaustive "
          f"(wall-clock {speedup:.1f}x, not gated)")

    write_bench_json("BENCH_sampling.json", {
        "faults": population,
        "true_error_rate": truth,
        "margin": MARGIN,
        "confidence": CONFIDENCE,
        "exhaustive": {
            "wall_s": round(t_exhaustive, 4),
            "runs": population,
            "batch": exhaustive.execution["batch"],
        },
        "sampled": {
            "wall_s": round(t_sampled, 4),
            "runs": sampling["simulated"],
            "trials": sampling["trials"],
            "chunk": CHUNK,
            "chunks": sampling["chunks"],
            "estimate": sampling["estimate"],
            "low": sampling["low"],
            "high": sampling["high"],
            "reason": sampling["reason"],
            "batch": sampled.execution["batch"],
        },
        "run_count_ratio": round(ratio, 6),
        "wall_speedup": round(speedup, 3),
    })

    # The reproduced claims.
    assert sampling["reason"] == "converged"
    assert sampling["simulated"] <= 0.10 * population, (
        f"sampled {sampling['simulated']} runs, exhaustive {population}"
    )
    assert sampling["low"] <= truth <= sampling["high"], (
        f"truth {truth:.5f} outside "
        f"[{sampling['low']:.5f}, {sampling['high']:.5f}]"
    )
    assert sampling["half_width"] <= MARGIN
