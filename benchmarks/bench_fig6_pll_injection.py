"""Figure 6: the headline injection experiment, at the paper's scale.

The paper injects RT=100 ps, FT=300 ps, PW=500 ps, PA=10 mA at the
low-pass-filter input at 0.17 ms, after the VCO locks, and observes
that a pulse lasting 2.5% of one clock period disturbs the filter
output "during a much larger time" and the clock "during a large
number of cycles and not only during one cycle".

Reproduced series: injection at exactly 0.17 ms into the exact
500 kHz / /100 / 50 MHz loop; disturbance duration on the VCO input
(filter output) and the perturbed-cycle count on F_out.
"""

import pytest

from repro import CurrentPulseSaboteur, Simulator
from repro.analysis import analyze_perturbation
from repro.faults import FIGURE6_PULSE

from conftest import banner, once, paper_pll

T_INJ = 170e-6  # the paper's 0.17 ms
T_END = 200e-6


def run_experiment():
    sim = Simulator(dt=1e-9)
    pll = paper_pll(sim, preset_locked=True)
    saboteur = CurrentPulseSaboteur(sim, "sab", pll.icp)
    saboteur.schedule(FIGURE6_PULSE, T_INJ)
    vco = sim.probe(pll.vco_out, min_interval=0.0)
    vctrl = sim.probe(pll.vctrl)
    sim.run(T_END)
    return pll, vco, vctrl


def test_fig6_injection(benchmark):
    pll, vco, vctrl = once(benchmark, run_experiment)
    report = analyze_perturbation(
        vco.segment(T_INJ - 20e-6, None),
        injection_time=T_INJ,
        fault_duration=FIGURE6_PULSE.pw,
        nominal_period=pll.t_out_nominal,
        tol_frac=0.003,
        vctrl_trace=vctrl,
        vctrl_nominal=pll.vctrl_locked,
    )

    banner("Figure 6 reproduction — 10 mA / 500 ps pulse at the filter "
           "input, 0.17 ms")
    print(report.summary())

    # Paper claims (shape, not absolute numbers):
    # 1. the fault is 2.5% of the generated clock period;
    assert report.fault_to_period_ratio == pytest.approx(0.025)
    # 2. the filter output is disturbed much longer than the pulse;
    assert report.vctrl_disturbance_duration > 100 * FIGURE6_PULSE.duration
    # 3. the clock is perturbed during a large number of cycles,
    #    not only one;
    assert report.perturbed_cycles > 10
    assert report.multi_cycle()
    # 4. and the effect amplification is orders of magnitude.
    assert report.amplification > 100
