"""Section 5.2: single analog fault, multiple digital errors.

"Identifying the number of consecutive cycles during which the single
fault can generate errors is an important result, since it allows the
designer to refine the dependability analysis in the digital part,
taking into account multiple errors when necessary."

Reproduced series: for the PLL clocking a digital block, the perturbed
cycle count seen by the digital part and the transient drift of its
cycle counter against the golden run.
"""

import pytest

from repro import CurrentPulseSaboteur, Simulator
from repro.ams import DigitalLoad
from repro.analysis import analyze_perturbation
from repro.faults import FIGURE6_PULSE

from conftest import banner, fast_pll, once

T_INJ = 20e-6
T_END = 45e-6
SNAP_EVERY = 1e-6


def run_pair():
    def build(inject):
        sim = Simulator(dt=1e-9)
        pll = fast_pll(sim, preset_locked=True)
        load = DigitalLoad(sim, "load", pll.fout)
        if inject:
            sab = CurrentPulseSaboteur(sim, "sab", pll.icp)
            sab.schedule(FIGURE6_PULSE, T_INJ)
        else:
            t0, t1, dt = CurrentPulseSaboteur.window_for(FIGURE6_PULSE, T_INJ)
            sim.analog.add_refinement_window(t0, t1, dt)
        snaps = []
        sim.every(SNAP_EVERY, lambda: snaps.append(load.snapshot()[0]))
        probes = {"vco": sim.probe(pll.vco_out)}
        return sim, pll, snaps, probes

    sim_g, _pll, snaps_g, _probes = build(False)
    sim_g.run(T_END)
    sim_f, pll, snaps_f, probes = build(True)
    sim_f.run(T_END)
    return pll, snaps_g, snaps_f, probes


def test_mixed_feedthrough(benchmark):
    pll, snaps_g, snaps_f, probes = once(benchmark, run_pair)

    report = analyze_perturbation(
        probes["vco"].segment(T_INJ - 5e-6, None), T_INJ,
        FIGURE6_PULSE.pw, pll.t_out_nominal, tol_frac=0.003,
    )
    drifts = [
        (f - g) % 256 if (f is not None and g is not None) else None
        for g, f in zip(snaps_g, snaps_f)
    ]
    drifts = [d - 256 if d is not None and d > 128 else d for d in drifts]

    banner("Section 5.2 reproduction — analog fault feed-through")
    print(f"perturbed clock cycles : {report.perturbed_cycles}")
    print(f"digital counter drift per us (0 = agree with golden run):")
    print("  " + " ".join(
        "." if d == 0 else ("?" if d is None else f"{d:+d}")
        for d in drifts
    ))
    worst = max(abs(d) for d in drifts if d is not None)
    print(f"worst transient drift  : {worst} cycle(s)")

    # Shape claims: many perturbed cycles; the digital part sees a
    # bounded, transient counting error that eventually re-converges.
    assert report.perturbed_cycles > 5
    assert worst >= 1
    assert drifts[-1] == 0  # re-converged by the end of the run
