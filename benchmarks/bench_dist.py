"""Distributed campaign throughput: 4 loopback workers vs one process.

The distribution claim of the ``repro.dist`` subsystem: sharding a
campaign across local workers (coordinator + forked worker processes
over the loopback wire protocol, exactly the multi-host deployment
minus the network) beats a single-process warm-start run by >= 2x on
four cores, while the merged store stays **row-identical** to the
serial result — distribution buys wall-clock, never answers.

The workload is the processor-architecture campaign of reference [2]
scaled up (a countdown program, exhaustive SEU injection over every
architectural register bit across 32 execution cycles, 416 faults):
each run is an independent event-driven simulation, so fault-level
sharding is embarrassingly parallel and the bench measures the real
overhead — per-shard goldens, row streaming, SQLite merge.

The speedup assertion is gated on the machine actually having >= 4
usable cores (CI runners do); on smaller boxes the bench still runs,
checks result identity and reports the measured ratio.
"""

import json
import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    cycle_times,
    exhaustive_bitflips,
    run_campaign,
    to_csv,
)
from repro.core import Component, L0
from repro.core.hierarchy import collect_state_signals
from repro.digital import Accumulator8, ClockGen, assemble
from repro.dist import Coordinator, read_ledger, spawn_local_workers
from repro.dist import run_distributed
from repro.dist.local import _worker_main
from repro.store import CampaignStore

from conftest import banner, once, write_bench_json

needs_fork = pytest.mark.skipif(
    sys.platform == "win32"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="loopback workers need the fork start method",
)

PERIOD = 10e-9
#: The countdown program loops 15 times (~48 instruction cycles); the
#: long tail of clocked-but-halted simulation makes every run heavy
#: enough that the per-run work, not campaign plumbing, dominates.
T_END = 4000e-9
WORKERS = 4
#: 8 shards of 52: two leases per worker, so a slow shard rebalances.
SHARD_SIZE = 52

PROGRAM = assemble([
    ("LDI", 15),
    ("OUT",),
    ("SUB", 1),
    ("JNZ", 1),
    ("OUT",),
    ("HALT",),
])


def cpu_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    cpu = Accumulator8(sim, "cpu", clk, PROGRAM, parent=top)
    probes = {
        "out[0]": sim.probe(cpu.out.bits[0]),
        "out[7]": sim.probe(cpu.out.bits[7]),
        "out_valid": sim.probe(cpu.out_valid),
        "halted": sim.probe(cpu.halted),
    }
    return Design(sim=sim, root=top, probes=probes)


def make_spec():
    targets = [n for n, _s in collect_state_signals(cpu_factory().root)]
    times = cycle_times(15e-9, PERIOD, 32, phase=0.5)
    return CampaignSpec(
        name="cpu-dist",
        faults=exhaustive_bitflips(targets, times),
        t_end=T_END,
        outputs=["out[0]", "out[7]", "out_valid", "halted"],
    )


def usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def run_both(tmp_path):
    spec = make_spec()
    t0 = time.perf_counter()
    serial = run_campaign(cpu_factory, spec, warm_start=True)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    distributed = run_distributed(
        cpu_factory, spec, workers=WORKERS, shard_size=SHARD_SIZE,
        store_path=tmp_path / "dist.db",
        config={"warm_start": True}, timeout=600,
    )
    t_dist = time.perf_counter() - t0
    return serial, t_serial, distributed, t_dist


@needs_fork
def test_distributed_speedup(benchmark, tmp_path):
    serial, t_serial, distributed, t_dist = once(
        benchmark, lambda: run_both(tmp_path)
    )
    cores = usable_cores()

    measurements = {
        "faults": len(serial),
        "t_end_s": T_END,
        "workers": WORKERS,
        "shard_size": SHARD_SIZE,
        "cores": cores,
        "serial_warm": {
            "wall_s": round(t_serial, 4),
            "kernel_events": serial.execution["kernel_events"],
        },
        "distributed": {
            "wall_s": round(t_dist, 4),
            "shards": distributed.execution["shards"],
            "shards_merged": distributed.execution["shards_merged"],
            "workers_used": distributed.execution["workers"],
        },
        "speedup": round(t_serial / t_dist, 3),
    }

    banner(f"Distributed campaign — {len(serial)} faults, "
           f"{WORKERS} loopback workers on {cores} cores")
    print(json.dumps(measurements, indent=2))
    _merge_bench_json(measurements)

    # Identical results first: same CSV (fault, class, divergences).
    assert to_csv(serial) == to_csv(distributed)
    assert distributed.execution["mode"] == "distributed"
    assert distributed.execution["shards_merged"] \
        == distributed.execution["shards"]
    # The headline claim needs the cores to exist; single-core boxes
    # (and starved containers) report the ratio without asserting it.
    if cores >= WORKERS:
        assert t_serial / t_dist >= 2.0
    else:
        print(f"[skip] speedup gate needs >= {WORKERS} cores, "
              f"have {cores}; measured {t_serial / t_dist:.2f}x")


def _merge_bench_json(updates):
    """Fold one leg's measurements into the shared ``BENCH_dist.json``.

    ``write_bench_json`` overwrites its output file, and this module
    has two legs (speedup, reconnect storm): read whatever the other
    leg already recorded, apply ``updates``, write the union back.
    """
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_dist.json")
    record = {}
    if os.path.exists(out_path):
        try:
            with open(out_path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            record = {}
    record.pop("bench", None)
    record.update(updates)
    write_bench_json("BENCH_dist.json", record)


def run_storm(tmp_path):
    """One distributed campaign surviving a mid-run worker massacre.

    Starts the usual 4-worker fleet, waits for real progress (two
    shards merged), SIGKILLs half the fleet, forks replacements under
    fresh names, and times the kill-to-complete recovery window.  The
    ledger counts how many leases the storm cost.
    """
    spec = make_spec()
    store_path = tmp_path / "storm.db"
    ledger_path = tmp_path / "storm.ledger.jsonl"
    context = multiprocessing.get_context("fork")
    coordinator = Coordinator(
        store_path, shard_size=SHARD_SIZE, ledger_path=ledger_path,
        reconnect_grace_s=1.0,
    )
    coordinator.drain_when_idle(True)
    processes = []
    try:
        job_id = coordinator.submit(spec, config={"warm_start": True})
        coordinator.start()
        processes = spawn_local_workers(
            coordinator.address, WORKERS, cpu_factory, context=context,
        )
        deadline = time.monotonic() + 300.0
        while (coordinator.job_status(job_id)["merged"] < 2
               and time.monotonic() < deadline):
            time.sleep(0.05)
        killed_at_merged = coordinator.job_status(job_id)["merged"]
        victims = processes[: WORKERS // 2]
        t0 = time.perf_counter()
        for victim in victims:
            os.kill(victim.pid, signal.SIGKILL)
        for rank in range(len(victims)):
            replacement = context.Process(
                target=_worker_main,
                args=(coordinator.address, cpu_factory,
                      f"storm-{rank}", {}),
                daemon=True,
            )
            replacement.start()
            processes.append(replacement)
        status = coordinator.wait(job_id, timeout=600)
        t_recovery = time.perf_counter() - t0
    finally:
        coordinator.stop()
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    grants = sum(
        1 for record in read_ledger(ledger_path)
        if record.get("rec") == "lease_granted"
    )
    with CampaignStore(store_path) as store:
        rows = store.run_rows(store.campaign_id(spec.name))
    return status, t_recovery, killed_at_merged, grants, rows


@needs_fork
def test_reconnect_storm_recovery(benchmark, tmp_path):
    status, t_recovery, killed_at_merged, grants, rows = once(
        benchmark, lambda: run_storm(tmp_path)
    )
    spec = make_spec()

    measurements = {
        "workers": WORKERS,
        "killed": WORKERS // 2,
        "killed_at_merged_shards": killed_at_merged,
        "recovery_wall_s": round(t_recovery, 4),
        "lease_grants": grants,
        "reassigned_leases": grants - status["shards"],
    }

    banner(f"Reconnect storm — {WORKERS // 2}/{WORKERS} workers "
           f"SIGKILLed mid-campaign, recovered in {t_recovery:.2f}s")
    print(json.dumps(measurements, indent=2))
    _merge_bench_json({"reconnect_storm": measurements})

    # Recovery must be *correct* before it is fast: the job finishes,
    # and the merged store holds every fault exactly once despite the
    # killed workers' half-streamed shards being re-run elsewhere.
    assert status["state"] == "complete"
    assert not status["failed"]
    assert [row["idx"] for row in rows] == list(range(len(spec.faults)))
    # The storm had teeth: at least one shard needed a second lease.
    assert grants > status["shards"]
