#!/usr/bin/env python
"""Quickstart: inject one SEU-like current pulse into the PLL.

Reproduces the paper's headline experiment (Figure 6) in a few lines:
build the Figure 5 PLL, attach a saboteur at the charge-pump output /
loop-filter input, fire the 10 mA / 500 ps pulse after lock, and
measure how many output-clock cycles one sub-nanosecond fault corrupts.

Run:  python examples/quickstart.py
"""

from repro import PLL, CurrentPulseSaboteur, Simulator, TrapezoidPulse
from repro.analysis import analyze_perturbation

# The paper's pulse: PA=10 mA, RT=100 ps, FT=300 ps, PW=500 ps.
PULSE = TrapezoidPulse(pa="10mA", rt="100ps", ft="300ps", pw="500ps")
T_INJECT = 170e-6  # the paper injects at 0.17 ms, after the VCO locks


def main():
    sim = Simulator(dt=1e-9)

    # Figure 5 hierarchy: PFD, charge pump, low-pass filter, VCO,
    # digitizer (2.5 V comparator), /100 divider; 500 kHz reference,
    # 50 MHz output clock.  preset_locked=True starts at the locked
    # operating point (set it False to watch the ~60 us acquisition).
    pll = PLL(sim, "pll", preset_locked=True)

    # The saboteur superposes its current on the filter-input node --
    # the library block of the paper's Figure 4.
    saboteur = CurrentPulseSaboteur(sim, "saboteur", pll.icp)
    saboteur.schedule(PULSE, T_INJECT)

    vco_out = sim.probe(pll.vco_out)
    vctrl = sim.probe(pll.vctrl)

    print(f"simulating {T_INJECT * 1e6 + 30:.0f} us of PLL operation ...")
    sim.run(T_INJECT + 30e-6)

    report = analyze_perturbation(
        vco_out.segment(T_INJECT - 10e-6, None),
        injection_time=T_INJECT,
        fault_duration=PULSE.pw,           # the paper's 2.5%-of-period figure
        nominal_period=pll.t_out_nominal,  # 20 ns
        tol_frac=0.003,
        vctrl_trace=vctrl,
        vctrl_nominal=pll.vctrl_locked,
    )
    print()
    print("=== Figure 6 reproduction ===")
    print(report.summary())
    print()
    if report.multi_cycle():
        print(
            f"-> a single {PULSE.pw * 1e12:.0f} ps fault corrupted "
            f"{report.perturbed_cycles} clock cycles: the dependability "
            "analysis of the digital part must account for multiple "
            "consecutive errors (Section 5.2)."
        )


if __name__ == "__main__":
    main()
