#!/usr/bin/env python
"""The paper's complete test case: a PLL clocking a digital block.

Section 5.1: "The circuit used as test case included a PLL (phase-
locked loop) analog block generating the clock signal of a digital
block."  This example builds that whole mixed-signal system, injects
the Figure 6 pulse into the analog part, and watches the consequences
ripple into the digital part: the clock is perturbed for many cycles
and the digital block's cycle count drifts against a golden run.

Run:  python examples/mixed_signal_system.py
"""

from repro import PLL, CurrentPulseSaboteur, Simulator
from repro.ams import DigitalLoad
from repro.analysis import analyze_perturbation
from repro.faults import FIGURE6_PULSE
from repro.injection import CurrentPulseSaboteur as Saboteur

T_INJ = 40e-6
T_END = 70e-6


def build(inject):
    sim = Simulator(dt=1e-9)
    pll = PLL(sim, "pll", f_ref="5MHz", n_div=10, c1="162pF", c2="16pF",
              preset_locked=True)
    load = DigitalLoad(sim, "load", pll.fout)
    if inject:
        saboteur = Saboteur(sim, "sab", pll.icp)
        saboteur.schedule(FIGURE6_PULSE, T_INJ)
    else:
        # Keep the golden run on the same solver grid (see
        # CampaignRunner for the methodology note).
        t0, t1, dt = CurrentPulseSaboteur.window_for(FIGURE6_PULSE, T_INJ)
        sim.analog.add_refinement_window(t0, t1, dt)
    return sim, pll, load


def main():
    print("golden run (no fault) ...")
    sim_g, _pll_g, load_g = build(inject=False)
    snapshots_g = []
    sim_g.every(5e-6, lambda: snapshots_g.append(load_g.snapshot()))
    sim_g.run(T_END)

    print("faulty run (Figure 6 pulse at the loop-filter input) ...")
    sim_f, pll, load_f = build(inject=True)
    vco = sim_f.probe(pll.vco_out)
    vctrl = sim_f.probe(pll.vctrl)
    snapshots_f = []
    sim_f.every(5e-6, lambda: snapshots_f.append(load_f.snapshot()))
    sim_f.run(T_END)

    report = analyze_perturbation(
        vco.segment(T_INJ - 10e-6, None), T_INJ, FIGURE6_PULSE.pw,
        pll.t_out_nominal, tol_frac=0.003,
        vctrl_trace=vctrl, vctrl_nominal=pll.vctrl_locked,
    )
    print()
    print("=== analog part: clock perturbation ===")
    print(report.summary())

    print()
    print("=== digital part: cycle-count drift vs golden run ===")
    print(f"{'time (us)':>10s} {'golden count':>13s} {'faulty count':>13s} "
          f"{'drift':>6s}")
    for k, ((gc, _gp), (fc, _fp)) in enumerate(zip(snapshots_g, snapshots_f)):
        t = (k + 1) * 5e-6
        drift = "-" if gc is None or fc is None else str((fc - gc) % 256)
        print(f"{t * 1e6:10.1f} {str(gc):>13s} {str(fc):>13s} {drift:>6s}")
    print()
    print("The single analog fault shifts the digital block's notion of")
    print("time by whole clock cycles while the loop recovers -- multiple")
    print("consecutive errors from one event, exactly the multiplicity the")
    print("paper says the digital dependability analysis must model.")


if __name__ == "__main__":
    main()
