#!/usr/bin/env python
"""Future-work experiment: SEU sensitivity of an ADC, analog vs digital.

The paper's conclusion targets "functional blocks including both analog
and digital circuitry, e.g. analog to digital converters", and its
reference [9] found the analog part of a converter can be *more*
sensitive than the digital part.  This example runs the unified flow on
the flash ADC: current pulses on the hold-capacitor node (analog part)
versus bit-flips in the output register (digital part), at matched
injection times, and compares the resulting error magnitudes.

Run:  python examples/adc_sensitivity.py
"""

from repro import Simulator, TrapezoidPulse
from repro.ams import FlashADC
from repro.analog import SineVoltage
from repro.campaign import (
    CampaignSpec,
    Design,
    analog_injections,
    exhaustive_bitflips,
    full_report,
    run_campaign,
)
from repro.core import Component, L0
from repro.digital import ClockGen

T_END = 40e-6
SAMPLE_PERIOD = 1e-6


def adc_factory():
    sim = Simulator(dt=10e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=SAMPLE_PERIOD, parent=top)
    vin = sim.node("vin")
    SineVoltage(sim, "src", vin, amplitude=2.0, freq=50e3, offset=2.5,
                parent=top)
    adc = FlashADC(sim, "adc", clk, vin, bits=4, parent=top)
    probes = {f"out[{i}]": sim.probe(adc.output.bits[i]) for i in range(4)}
    probes["held"] = sim.probe(adc.held, min_interval=50e-9)
    return Design(sim=sim, root=top, probes=probes, extras={"adc": adc})


def main():
    outputs = [f"out[{i}]" for i in range(4)]
    # Analog strikes: a particle hit on the hold capacitor during the
    # hold phase, for three deposited-charge levels.
    hit_times = [10.6e-6, 20.6e-6, 30.6e-6]  # hold phases (clk low)
    pulses = [
        TrapezoidPulse(pa, "50ps", "100ps", "400ps")
        for pa in ("200uA", "1mA", "5mA")
    ]
    analog_faults = analog_injections(["top/adc.held"], hit_times, pulses)

    # Digital strikes: bit-flips in the output register at the same
    # times (one per bit position at the first hit time, then the MSB
    # at the remaining times for symmetry of the fault count).
    digital_faults = exhaustive_bitflips(
        [f"top/adc/register.q[{i}]" for i in range(4)],
        [10.6e-6],
    ) + exhaustive_bitflips(
        ["top/adc/register.q[3]"], [20.6e-6, 30.6e-6]
    )

    spec = CampaignSpec(
        name="flash-adc-sensitivity",
        faults=analog_faults + digital_faults,
        t_end=T_END,
        outputs=outputs,
        tolerances={"held": 0.05},
        compare_from=2e-6,
    )
    print(spec.describe())
    result = run_campaign(adc_factory, spec)
    print()
    print(full_report(result, listing_limit=len(spec.faults)))

    # Sensitivity comparison: how long do output errors persist?
    analog_runs = result.runs[: len(analog_faults)]
    digital_runs = result.runs[len(analog_faults):]

    def mean_error_time(runs):
        times = [r.classification.output_mismatch_time for r in runs
                 if r.classification.is_error()]
        return sum(times) / len(times) if times else 0.0

    print()
    print("=== analog vs digital sensitivity ===")
    print(f"analog strikes : {sum(r.classification.is_error() for r in analog_runs)}"
          f"/{len(analog_runs)} errors, mean output-error time "
          f"{mean_error_time(analog_runs) * 1e6:.3f} us")
    print(f"digital strikes: {sum(r.classification.is_error() for r in digital_runs)}"
          f"/{len(digital_runs)} errors, mean output-error time "
          f"{mean_error_time(digital_runs) * 1e6:.3f} us")
    print()
    print("A register bit-flip lasts exactly one sample period before the")
    print("next conversion overwrites it; a hold-capacitor strike corrupts")
    print("the code until the next *track* phase and can exceed one LSB by")
    print("orders of magnitude -- the [9] observation that the analog part")
    print("can dominate the converter's soft-error sensitivity.")


if __name__ == "__main__":
    main()
