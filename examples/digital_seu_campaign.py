#!/usr/bin/env python
"""The Section 3 digital analysis flow on an FSM + datapath block.

Builds a small serial-protocol-like digital block (FSM controller, a
byte counter, an LFSR payload generator and a parity output), then runs
an exhaustive mutant bit-flip campaign over every memory element and
several injection cycles, classifies the outcomes, and derives the
error-propagation model.

Run:  python examples/digital_seu_campaign.py
"""

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    build_propagation_graph,
    cycle_times,
    exhaustive_bitflips,
    format_propagation_report,
    full_report,
    run_campaign,
)
from repro.core import Component, L0, L1
from repro.core.hierarchy import collect_state_signals
from repro.digital import (
    Bus,
    ClockGen,
    Counter,
    LFSR,
    MooreFSM,
    ParityGen,
)

PERIOD = 10e-9
T_END = 800e-9


def dut_factory():
    """A 'frame transmitter': FSM sequences IDLE -> SYNC -> PAYLOAD ->
    CRC -> IDLE; the payload LFSR only advances during PAYLOAD."""
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)

    cycle = Bus(sim, "cycle", 4)
    Counter(sim, "cyclecnt", clk, cycle, parent=top)

    payload_en = sim.signal("payload_en")
    frame_valid = sim.signal("frame_valid")

    def transition(state, fsm):
        c = cycle.to_int_or_none()
        if c is None:
            return state
        if state == "IDLE":
            return "SYNC" if c % 16 == 2 else "IDLE"
        if state == "SYNC":
            return "PAYLOAD"
        if state == "PAYLOAD":
            return "CRC" if c % 16 == 11 else "PAYLOAD"
        return "IDLE"

    MooreFSM(
        sim, "fsm", clk, ["IDLE", "SYNC", "PAYLOAD", "CRC"], transition,
        moore_outputs={
            payload_en: {"IDLE": L0, "SYNC": L0, "PAYLOAD": L1, "CRC": L0},
            frame_valid: {"IDLE": L0, "SYNC": L1, "PAYLOAD": L1, "CRC": L1},
        },
        parent=top,
    )

    payload = Bus(sim, "payload", 8, init=1)
    LFSR(sim, "lfsr", clk, payload, en=payload_en, parent=top)

    parity = sim.signal("parity")
    ParityGen(sim, "par", payload, parity, parent=top)

    probes = {
        "frame_valid": sim.probe(frame_valid),
        "parity": sim.probe(parity),
        "payload[0]": sim.probe(payload.bits[0]),
        "payload[7]": sim.probe(payload.bits[7]),
        "fsm.state[0]": sim.probe(sim.signals["top/fsm.state[0]"]),
        "fsm.state[1]": sim.probe(sim.signals["top/fsm.state[1]"]),
    }
    return Design(sim=sim, root=top, probes=probes)


def main():
    # Enumerate every injectable memory element -- the mutant targets.
    probe_design = dut_factory()
    targets = [name for name, _sig in collect_state_signals(probe_design.root)]
    print(f"mutant targets ({len(targets)}):")
    for t in targets:
        print(f"  {t}")

    # Exhaustive: every target x one injection per cycle for 4 cycles,
    # injected mid-cycle (between clock edges).
    times = cycle_times(105e-9, PERIOD, 4, phase=0.45)
    faults = exhaustive_bitflips(targets, times)

    spec = CampaignSpec(
        name="frame-tx-seu",
        faults=faults,
        t_end=T_END,
        outputs=["frame_valid", "parity"],
    )
    print()
    print(spec.describe())
    result = run_campaign(dut_factory, spec)

    print()
    print(full_report(result, listing_limit=12))
    print()
    print(format_propagation_report(build_propagation_graph(result)))


if __name__ == "__main__":
    main()
