#!/usr/bin/env python
"""Figure 1b and Figure 7: trapezoid vs double-exponential pulses.

Part 1 derives trapezoid parameters (PA, RT, FT, PW) from a Messenger
double-exponential strike, both analytically (peak + charge matching)
and by least squares — the paper's Figure 1b.

Part 2 injects *both* models into the PLL at the same instant (in two
separate runs) and compares the VCO control-voltage responses — the
paper's Figure 7, which found them "very similar, although the numeric
values are slightly different".

Run:  python examples/pulse_model_fit.py
"""

import numpy as np

from repro import (
    DoubleExponentialPulse,
    PLL,
    CurrentPulseSaboteur,
    Simulator,
    fit_trapezoid,
)
from repro.analysis import peak_deviation, settling_time
from repro.faults import waveform_distance

T_INJ = 30e-6


def part1_fit():
    print("=== Part 1: Figure 1b — deriving trapezoid parameters ===")
    dexp = DoubleExponentialPulse.from_peak("10mA", "50ps", "300ps")
    print(f"reference : {dexp.describe()}")
    print(f"  peak   = {dexp.peak() * 1e3:.3f} mA")
    print(f"  charge = {dexp.charge() * 1e12:.3f} pC")
    print(f"  t_peak = {dexp.t_peak * 1e12:.1f} ps")
    print()
    for method in ("charge", "lsq"):
        fit = fit_trapezoid(dexp, method=method)
        distance = waveform_distance(dexp, fit)
        print(f"{method:6s} fit: {fit.describe()}")
        print(f"  charge = {fit.charge() * 1e12:.3f} pC "
              f"(error {abs(fit.charge() - dexp.charge()) / dexp.charge():.2%})")
        print(f"  L2 distance to reference waveform: {distance:.3f}")
    print()
    return dexp


def run_injection(transient):
    sim = Simulator(dt=1e-9)
    pll = PLL(sim, "pll", f_ref="5MHz", n_div=10, c1="162pF", c2="16pF",
              preset_locked=True)
    saboteur = CurrentPulseSaboteur(sim, "sab", pll.icp)
    saboteur.schedule(transient, T_INJ)
    vctrl = sim.probe(pll.vctrl)
    sim.run(T_INJ + 15e-6)
    return pll, vctrl


def part2_compare(dexp):
    print("=== Part 2: Figure 7 — same injection, two pulse models ===")
    trap = fit_trapezoid(dexp, method="charge")

    results = {}
    for label, transient in (("double-exp", dexp), ("trapezoid", trap)):
        pll, vctrl = run_injection(transient)
        peak = peak_deviation(vctrl, pll.vctrl_locked, t0=T_INJ,
                              t1=T_INJ + 3e-6)
        settle = settling_time(vctrl, pll.vctrl_locked, tol=0.005,
                               t_from=T_INJ)
        results[label] = (peak, settle, vctrl)
        print(f"{label:10s}: peak vctrl deviation {peak * 1e3:7.2f} mV, "
              f"recovery (to ±5 mV) {settle * 1e6:6.2f} us")

    # Waveform-level agreement on a shared grid after injection.
    grid = np.linspace(T_INJ, T_INJ + 10e-6, 2000)
    va = results["double-exp"][2].resample(grid)
    vb = results["trapezoid"][2].resample(grid)
    rms = float(np.sqrt(np.mean((va - vb) ** 2)))
    span = float(np.max(np.abs(va - np.mean(va[:10]))))
    print()
    print(f"RMS difference between the two responses: {rms * 1e3:.3f} mV "
          f"({rms / span:.1%} of the disturbance amplitude)")
    print("-> the cheap trapezoid model reproduces the double-exponential")
    print("   response shape; numeric values differ slightly (Figure 7).")


def main():
    dexp = part1_fit()
    part2_compare(dexp)


if __name__ == "__main__":
    main()
