#!/usr/bin/env python
"""Statistical campaigns: sampling the fault space with error bars.

Exhaustive injection over every (element x cycle x pulse) combination
explodes quickly — the cost problem the paper's references [3] attack.
This example shows the statistical alternative the library supports:
size the sample for a target precision, draw a seeded random fault
list, and report the error rate with a Wilson confidence interval,
comparing against the exhaustive ground truth on a space small enough
to enumerate.

Run:  python examples/statistical_campaign.py
"""

from repro import Simulator
from repro.campaign import (
    CampaignSpec,
    Design,
    estimate_error_rate,
    exhaustive_bitflips,
    required_sample_size,
    run_campaign,
    sample,
)
from repro.core import Component, L0
from repro.core.hierarchy import collect_state_signals
from repro.digital import Bus, ClockGen, Counter, LFSR, ParityGen

PERIOD = 10e-9
T_END = 500e-9


def dut_factory():
    sim = Simulator(dt=1e-9)
    top = Component(sim, "top")
    clk = sim.signal("clk", init=L0)
    ClockGen(sim, "ck", clk, period=PERIOD, parent=top)
    count = Bus(sim, "count", 4)
    Counter(sim, "counter", clk, count, parent=top)
    pattern = Bus(sim, "pattern", 8, init=1)
    LFSR(sim, "lfsr", clk, pattern, parent=top)
    parity = sim.signal("parity")
    ParityGen(sim, "par", pattern, parity, parent=top)
    # Only the LFSR parity is monitored: upsets in the (unobserved)
    # counter are genuinely silent, giving the campaign a mixed
    # outcome distribution worth estimating.
    probes = {"parity": sim.probe(parity)}
    return Design(sim=sim, root=top, probes=probes)


def main():
    targets = [n for n, _s in collect_state_signals(dut_factory().root)]
    times = [15e-9 + k * PERIOD for k in range(20)]
    population = exhaustive_bitflips(targets, times)
    print(f"fault space: {len(targets)} elements x {len(times)} cycles = "
          f"{len(population)} faults")

    # How many runs buy +/-10% at 95% confidence?
    n_needed = required_sample_size(margin=0.10, confidence=0.95)
    n_used = min(n_needed, 100)
    print(f"sample size for ±10% @95%: {n_needed} "
          f"(using {n_used} to keep the demo quick)")

    def spec_for(name, faults):
        return CampaignSpec(
            name=name,
            faults=faults,
            t_end=T_END,
            outputs=["parity"],
        )

    print("\nrunning sampled campaign ...")
    sampled_faults = sample(population, n_used, seed=2004)
    sampled = run_campaign(dut_factory, spec_for("sampled", sampled_faults))
    rate, (low, high) = estimate_error_rate(sampled)
    print(f"sampled estimate : {rate:.1%}  (95% CI {low:.1%} .. {high:.1%}, "
          f"{n_used} runs)")

    print("running exhaustive campaign for ground truth ...")
    exhaustive = run_campaign(dut_factory, spec_for("exhaustive", population))
    truth = exhaustive.error_rate()
    print(f"exhaustive truth : {truth:.1%}  ({len(population)} runs)")

    inside = low <= truth <= high
    print(f"\nground truth inside the sampled CI: {inside}")
    print("Seeded sampling makes the campaign reproducible; rerun with the")
    print("same seed and you get byte-identical fault lists and results.")


if __name__ == "__main__":
    main()
