#!/usr/bin/env python
"""The full Section 4 AMS analysis flow as a campaign.

Instrument the PLL, sweep injection time *within* a clock cycle and
pulse amplitude across a decade, run golden-vs-faulty comparison with
analog tolerances, and print the classification report plus the
error-propagation model — the complete Figure 3 pipeline.

Run:  python examples/pll_injection_campaign.py
"""

from repro import PLL, Simulator, TrapezoidPulse
from repro.campaign import (
    CampaignSpec,
    Design,
    analog_injections,
    build_propagation_graph,
    format_propagation_report,
    full_report,
    intra_cycle_times,
    run_campaign,
)

T_END = 60e-6
T_CYCLE = 40e-6  # injection cycle, well after lock


def pll_factory():
    """One fresh PLL per run; a fast variant keeps the campaign short.

    (The paper's exact 500 kHz/÷100 loop works identically but locks
    and recovers ~10x slower; see examples/quickstart.py for it.)
    """
    sim = Simulator(dt=1e-9)
    pll = PLL(
        sim, "pll", f_ref="5MHz", n_div=10, c1="162pF", c2="16pF",
        preset_locked=True,
    )
    probes = {
        "vctrl": sim.probe(pll.vctrl, min_interval=5e-9),
        "fout": sim.probe(pll.fout),
        "fb": sim.probe(pll.fb),
    }
    return Design(sim=sim, root=pll, probes=probes)


def main():
    # Campaign definition (the designer's input, Section 4.1):
    # pulse parameter range + injection times.
    pulses = [
        TrapezoidPulse(pa, "100ps", "300ps", "500ps")
        for pa in ("100uA", "1mA", "10mA")
    ]
    # "the exact injection time (and not only the injection cycle) may
    # have a noticeable impact" -> sweep 4 points inside one cycle.
    times = intra_cycle_times(T_CYCLE, 20e-9, 4)
    faults = analog_injections(["pll.icp"], times, pulses)

    spec = CampaignSpec(
        name="pll-icp-sweep",
        faults=faults,
        t_end=T_END,
        outputs=["fout", "fb"],
        tolerances={"vctrl": 0.01},
        time_tolerances={"fout": 2e-9, "fb": 2e-9},
        compare_from=5e-6,
    )
    print(spec.describe())
    print()

    result = run_campaign(
        pll_factory,
        spec,
        progress=lambda i, n, f: print(f"  run {i + 1}/{n}: {f.describe()}"),
    )

    print()
    print(full_report(result, listing_limit=len(faults)))
    print()
    print(format_propagation_report(build_propagation_graph(result)))


if __name__ == "__main__":
    main()
