#!/usr/bin/env python
"""Tour: a second loop topology and the tooling around the flow.

Demonstrates, in one script:

1. the DLL case study — the same saboteur flow against a first-order
   loop, showing a phase-step failure mode instead of the PLL's
   frequency excursion;
2. a parallel campaign (``workers=``) over injection charge;
3. VCD export of the faulty run for a waveform viewer;
4. the fault dictionary built from the campaign, answering "which
   faults could explain this observed signature?".

Run:  python examples/dll_and_tooling.py
"""

import os
import tempfile

from repro import Simulator, TrapezoidPulse
from repro.ams import DLL
from repro.campaign import (
    CampaignSpec,
    Design,
    FaultDictionary,
    analog_injections,
    full_report,
    run_campaign,
)
from repro.core.vcd import save_vcd
from repro.faults import FIGURE6_PULSE
from repro.injection import CurrentPulseSaboteur

T_LOCK = 20e-6
T_INJ = 25e-6
T_END = 45e-6


def dll_factory():
    sim = Simulator(dt=1e-9)
    dll = DLL(sim, "dll")
    probes = {
        "vctrl": sim.probe(dll.vctrl, min_interval=5e-9),
        "delayed": sim.probe(dll.delayed),
        "up": sim.probe(dll.up),
        "down": sim.probe(dll.down),
    }
    return Design(sim=sim, root=dll, probes=probes, extras={"dll": dll})


def part1_single_injection():
    print("=== Part 1: Figure 6 pulse into the DLL ===")
    sim = Simulator(dt=1e-9)
    dll = DLL(sim, "dll")
    sab = CurrentPulseSaboteur(sim, "sab", dll.icp)
    sab.schedule(FIGURE6_PULSE, T_INJ)
    vctrl = sim.probe(dll.vctrl)
    probes = {"vctrl": vctrl, "delayed": sim.probe(dll.delayed)}
    sim.run(T_END)
    step = vctrl.maximum(T_INJ, T_INJ + 1e-6) - vctrl.at(T_INJ - 0.1e-6)
    print(f"control-voltage step : {step * 1e3:.1f} mV "
          f"(Q/C = {FIGURE6_PULSE.charge() / dll.c_loop * 1e3:.1f} mV)")
    print(f"phase step           : {dll.kdl * step * 1e12:.0f} ps on the "
          f"{dll.t_ref * 1e9:.0f} ns output clock")
    print(f"loop gain            : {dll.loop_gain_per_cycle:.3f} of the "
          "error removed per cycle (first-order recovery)")

    vcd_path = os.path.join(tempfile.gettempdir(), "dll_injection.vcd")
    save_vcd(probes, vcd_path)
    print(f"waveforms exported   : {vcd_path}")
    print()


def part2_campaign():
    print("=== Part 2: parallel charge-sweep campaign + fault dictionary ===")
    pulses = [TrapezoidPulse(pa, "100ps", "300ps", "500ps")
              for pa in ("100uA", "1mA", "3mA", "10mA")]
    times = [T_INJ, T_INJ + 3e-6]
    spec = CampaignSpec(
        name="dll-charge-sweep",
        faults=analog_injections(["dll.icp"], times, pulses),
        t_end=T_END,
        outputs=["delayed"],
        tolerances={"vctrl": 0.02},
        time_tolerances={"delayed": 1e-9},
        compare_from=T_LOCK,
    )
    workers = min(4, os.cpu_count() or 1)
    result = run_campaign(dll_factory, spec, workers=workers)
    print(full_report(result, listing_limit=8))
    print()
    dictionary = FaultDictionary(result, time_bucket=2e-6)
    print(dictionary.report())


def main():
    part1_single_injection()
    part2_campaign()


if __name__ == "__main__":
    main()
